"""Packaging for the SynCircuit reproduction.

Kept as a plain ``setup.py`` (no pyproject) so ``pip install -e .``
works on environments whose setuptools lacks PEP 660 editable-wheel
support (no ``wheel`` package).
"""

from setuptools import find_packages, setup

setup(
    name="repro-syncircuit",
    version="0.2.0",
    description=(
        "SynCircuit reproduction: synthetic RTL circuit generation "
        "(DAC 2025)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
)
