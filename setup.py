"""Legacy setup shim: enables `pip install -e .` on environments whose
setuptools lacks PEP 660 editable-wheel support (no `wheel` package)."""

from setuptools import setup

setup()
