"""Runtime invariant auditor for the incremental machinery (``S0xx``).

The search hot loop of :mod:`repro.mcts` runs entirely on memoized /
incrementally-patched structures: :class:`~repro.ir.GraphView` wiring
memos, the :class:`~repro.mcts.actions.SwapIndex` cone-edge cache,
:class:`~repro.incr.DeltaNetlist` patch lineages,
:class:`~repro.incr.IncrementalTiming` overlays and
:class:`~repro.synth.simulate.PatchableSimulator` plans.  Each is
differentially fuzz-tested offline, but nothing could check the
invariants *in situ* when a real run misbehaves.

This module is that check.  A :class:`Sanitizer` re-derives each
structure from scratch at instrumented checkpoints and raises
:class:`InvariantViolation` -- an exception carrying a
:class:`~repro.lint.core.Diagnostic` with the edit provenance of the
offending state -- on any divergence.  Activation is opt-in and scoped:

* ``REPRO_SANITIZE=1`` (environment) audits every optimization run in
  the process; a comma-separated value (``REPRO_SANITIZE=S001,S003``)
  restricts the checkpoints.
* ``MCTSConfig.sanitize`` / ``GenerateRequest.sanitize`` /
  ``repro generate --sanitize`` audit one search / one request.

Internally the active :class:`Sanitizer` rides a :class:`contextvars`
context variable, so concurrent ``generate_batch`` workers sanitize
independently and the default-off cost at each checkpoint is one
context-variable read.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from .core import ERROR, SANITIZER_SCOPE, Diagnostic, Rule, register

if TYPE_CHECKING:  # pragma: no cover - import-cycle-free annotations only
    from ..incr.delta import DeltaNetlist
    from ..incr.timing import IncrementalTiming
    from ..ir.graph import CircuitGraph
    from ..synth.timing import TimingReport

#: Sanitizer rules: listed in the catalog for docs/selection; their
#: checks run from instrumented checkpoints, not from lint_graph().
SANITIZER_RULES = tuple(register(Rule(
    id=rule_id, title=title, severity=ERROR, scope=SANITIZER_SCOPE,
    description=description,
)) for rule_id, title, description in (
    ("S001", "graphview-memo-coherence",
     "edge_list/child_map/parent_rows/filled_rows memos must match the "
     "materialized wiring."),
    ("S002", "swap-index-coherence",
     "SwapIndex's incrementally maintained cone-local edge list must "
     "match a full edge re-scan."),
    ("S003", "delta-netlist-coherence",
     "DeltaNetlist.materialize() must match a fresh elaborate() of the "
     "same graph (ports, gate counts, observed function)."),
    ("S004", "incremental-timing-coherence",
     "IncrementalTiming overlay reports must match analyze_timing on a "
     "fresh elaboration."),
    ("S005", "patchable-simulator-coherence",
     "PatchableSimulator's re-linked plan must produce the packed "
     "output words of a fresh compile."),
    ("S006", "area-memo-coherence",
     "IncrementalReward's (node, operand-widths) area memo must match a "
     "fresh single-node lowering of the candidate wiring."),
    ("S007", "delta-analysis-coherence",
     "RedundancyAnalyzer's dirty-cone delta report must match the full "
     "fixpoint over every node."),
    ("S008", "cross-circuit-queue-isolation",
     "A CrossCircuitQueue signature (shared stimulus pool) must equal a "
     "solo per-circuit re-derivation: no stimulus or state may leak "
     "across circuit boundaries."),
))


class InvariantViolation(RuntimeError):
    """An incremental structure diverged from its from-scratch recompute."""

    def __init__(self, diagnostic: Diagnostic) -> None:
        super().__init__(str(diagnostic))
        self.diagnostic = diagnostic


_ACTIVE: ContextVar["Sanitizer | None"] = ContextVar(
    "repro_sanitizer", default=None
)


def env_sanitize() -> bool:
    """Whether ``REPRO_SANITIZE`` requests auditing (read live)."""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() not in (
        "", "0", "false", "off",
    )


def env_checks() -> frozenset[str] | None:
    """Checkpoint subset named by ``REPRO_SANITIZE`` (``None`` = all)."""
    value = os.environ.get("REPRO_SANITIZE", "")
    ids = frozenset(
        part.strip().upper() for part in value.split(",")
        if part.strip().upper().startswith("S")
    )
    return ids or None


def current_sanitizer() -> "Sanitizer | None":
    """The sanitizer auditing this context, or ``None`` (the fast path)."""
    return _ACTIVE.get()


def is_sanitizing() -> bool:
    return _ACTIVE.get() is not None


@contextmanager
def sanitizing(sanitizer: "Sanitizer | None") -> Iterator["Sanitizer | None"]:
    """Audit everything under this context with ``sanitizer`` (no-op for
    ``None``, so call sites need no branching)."""
    if sanitizer is None:
        yield None
        return
    token = _ACTIVE.set(sanitizer)
    try:
        yield sanitizer
    finally:
        _ACTIVE.reset(token)


def _graph_provenance(graph: "CircuitGraph") -> dict[str, Any]:
    """Edit provenance of a search state, for diagnostics."""
    from ..ir.graph import GraphView

    prov: dict[str, Any] = {
        "graph": graph.name,
        "state": type(graph).__name__,
    }
    if isinstance(graph, GraphView):
        prov["overlay_nodes"] = graph.overlay_nodes()
        prov["pattern_diverged"] = graph._pattern_diverged
    chain: list[list[int]] = []
    node = graph
    for _ in range(32):
        origin = getattr(node, "edit_origin", None)
        if origin is None:
            break
        node, rewired = origin
        chain.append(sorted(rewired))
    if chain:
        prov["edit_chain"] = chain
    return prov


class Sanitizer:
    """Re-derives incremental structures from scratch at checkpoints.

    ``checks`` restricts the audited rule ids (default: all of
    ``S001``-``S005``); ``num_cycles``/``seed`` parameterize the packed
    functional comparisons of S003/S005.  ``self.checks_run`` counts
    performed audits, ``self.violations`` the failures raised.
    """

    def __init__(
        self,
        checks: Iterable[str] | None = None,
        num_cycles: int = 32,
        seed: int = 0,
    ) -> None:
        self.enabled = frozenset(checks) if checks is not None else None
        self.num_cycles = num_cycles
        self.seed = seed
        self.checks_run = 0
        self.violations = 0

    def wants(self, rule_id: str) -> bool:
        return self.enabled is None or rule_id in self.enabled

    def _fail(
        self,
        rule_id: str,
        message: str,
        nodes: Iterable[int] = (),
        **provenance: Any,
    ) -> None:
        self.violations += 1
        diagnostic = Diagnostic(
            rule=rule_id,
            severity=ERROR,
            message=message,
            nodes=list(nodes),
            provenance=provenance,
        )
        raise InvariantViolation(diagnostic)

    # -- S001 ------------------------------------------------------------
    def check_graph_memos(self, graph: "CircuitGraph") -> None:
        """S001: every *cached* wiring memo matches the materialized rows.

        Only memos that are actually populated are compared -- the
        invariant under audit is "no memo serves a stale view", not
        "every memo is populated".
        """
        if not self.wants("S001"):
            return
        self.checks_run += 1
        rows = [list(graph._row(v)) for v in range(len(graph._nodes))]
        prov = _graph_provenance(graph)

        cached_edges = graph._edge_cache
        if cached_edges is not None:
            fresh_edges = [
                (parent, child)
                for child, slots in enumerate(rows)
                for parent in slots
                if parent is not None
            ]
            if cached_edges != fresh_edges:
                bad = sorted({
                    c for (_, c) in
                    set(cached_edges).symmetric_difference(fresh_edges)
                })
                self._fail(
                    "S001",
                    "edge_list memo diverges from the materialized wiring",
                    nodes=bad[:16], memo="edge_list", **prov,
                )

        memo = graph.__dict__.get("_parent_rows_memo")
        if memo is not None:
            fresh = tuple(tuple(row) for row in rows)
            if memo != fresh:
                bad = [v for v, (a, b) in enumerate(zip(memo, fresh)) if a != b]
                self._fail(
                    "S001",
                    "parent_rows memo diverges from the materialized wiring",
                    nodes=bad[:16], memo="parent_rows", **prov,
                )

        memo = graph.__dict__.get("_filled_rows_memo")
        if memo is not None:
            fresh_filled = [
                [p for p in row if p is not None] for row in rows
            ]
            if list(memo) != fresh_filled:
                bad = [
                    v for v, (a, b) in enumerate(zip(memo, fresh_filled))
                    if list(a) != b
                ]
                self._fail(
                    "S001",
                    "filled_rows memo diverges from the materialized wiring",
                    nodes=bad[:16], memo="filled_rows", **prov,
                )

        memo = graph.__dict__.get("_child_map_memo")
        if memo is not None:
            fresh_map: list[list[int]] = [[] for _ in rows]
            for child, slots in enumerate(rows):
                seen = set()
                for parent in slots:
                    if parent is not None and parent not in seen:
                        fresh_map[parent].append(child)
                        seen.add(parent)
            # Incremental patching may append fanout out of child order;
            # consumers treat the lists as sets, so compare them as such.
            bad = [
                v for v in range(len(rows))
                if sorted(memo[v]) != sorted(fresh_map[v])
            ]
            if bad:
                self._fail(
                    "S001",
                    "child_map memo diverges from the materialized wiring",
                    nodes=bad[:16], memo="child_map", **prov,
                )

    # -- S002 ------------------------------------------------------------
    def check_swap_index(
        self,
        graph: "CircuitGraph",
        cone_set: set[int],
        local: list[tuple[int, int]],
        positions: list[int],
    ) -> None:
        """S002: the maintained cone-local edge list matches a full
        re-scan of the materialized wiring."""
        if not self.wants("S002"):
            return
        self.checks_run += 1
        fresh_edges = [
            (parent, child)
            for child in range(len(graph._nodes))
            for parent in graph._row(child)
            if parent is not None
        ]
        expect_local: list[tuple[int, int]] = []
        expect_pos: list[int] = []
        for pos, edge in enumerate(fresh_edges):
            if edge[0] in cone_set or edge[1] in cone_set:
                expect_local.append(edge)
                expect_pos.append(pos)
        if local != expect_local or positions != expect_pos:
            bad = sorted({
                v for edge in set(local).symmetric_difference(expect_local)
                for v in edge
            })
            self._fail(
                "S002",
                "SwapIndex cone-local edge list diverges from a full "
                f"re-scan ({len(local)} maintained vs "
                f"{len(expect_local)} rescanned edges)",
                nodes=bad[:16], **_graph_provenance(graph),
            )

    # -- S003 ------------------------------------------------------------
    def _stimulus(
        self, names: Iterable[str], num_cycles: int
    ) -> dict[str, int]:
        from ..synth.simulate import packed_stimulus_word

        return {
            name: packed_stimulus_word(self.seed, name, num_cycles)
            for name in names
        }

    def check_delta(self, delta: "DeltaNetlist") -> None:
        """S003: ``materialize()`` equals a fresh ``elaborate()`` of the
        delta's graph -- ports, gate counts and observed function."""
        if not self.wants("S003"):
            return
        self.checks_run += 1
        from ..synth.elaborate import elaborate
        from ..synth.simulate import BitParallelSimulator

        materialized = delta.materialize(check=False)
        fresh = elaborate(delta.graph, check=False)
        prov = _graph_provenance(delta.graph)
        prov["patched_nodes"] = sorted(delta.patched)
        pi_names = [name for name, _ in materialized.primary_inputs]
        po_names = [name for name, _ in materialized.primary_outputs]
        if pi_names != [name for name, _ in fresh.primary_inputs]:
            self._fail(
                "S003", "materialized delta's primary inputs diverge "
                "from a fresh elaboration", **prov,
            )
        if po_names != [name for name, _ in fresh.primary_outputs]:
            self._fail(
                "S003", "materialized delta's primary outputs diverge "
                "from a fresh elaboration", **prov,
            )
        if materialized.gate_counts() != fresh.gate_counts():
            self._fail(
                "S003",
                "materialized delta's gate counts "
                f"{materialized.gate_counts()} diverge from a fresh "
                f"elaboration's {fresh.gate_counts()}", **prov,
            )
        words = self._stimulus(pi_names, self.num_cycles)
        outputs = []
        for netlist in (materialized, fresh):
            sim = BitParallelSimulator(netlist)
            inputs = {
                net: words[name] for name, net in netlist.primary_inputs
            }
            outputs.append(sim.run_packed(inputs, self.num_cycles))
        if outputs[0] != outputs[1]:
            bad = sorted(
                name for name in outputs[0]
                if outputs[0][name] != outputs[1].get(name)
            )
            self._fail(
                "S003",
                "materialized delta computes a different function than a "
                f"fresh elaboration (outputs {bad[:8]} differ)", **prov,
            )

    # -- S004 ------------------------------------------------------------
    def check_timing(
        self,
        timing: "IncrementalTiming",
        delta: "DeltaNetlist",
        report: "TimingReport",
    ) -> None:
        """S004: the overlay-assembled report equals ``analyze_timing``
        on a fresh elaboration of the delta's graph."""
        if not self.wants("S004"):
            return
        self.checks_run += 1
        from ..synth.elaborate import elaborate
        from ..synth.timing import analyze_timing

        reference = analyze_timing(
            elaborate(delta.graph, check=False),
            timing.clock_period,
            timing.library,
            timing.strength,
        )
        if (
            report.endpoint_slacks != reference.endpoint_slacks
            or report.wns != reference.wns
            or report.tns != reference.tns
            or report.nvp != reference.nvp
        ):
            prov = _graph_provenance(delta.graph)
            prov["patched_nodes"] = sorted(delta.patched)
            self._fail(
                "S004",
                "incremental timing report "
                f"(wns={report.wns}, tns={report.tns}, nvp={report.nvp}) "
                "diverges from analyze_timing on a fresh elaboration "
                f"(wns={reference.wns}, tns={reference.tns}, "
                f"nvp={reference.nvp})", **prov,
            )

    # -- S005 ------------------------------------------------------------
    def check_simulator(
        self,
        delta: "DeltaNetlist",
        words_by_name: dict[str, int],
        num_cycles: int,
        observed: dict[str, int],
    ) -> None:
        """S005: the patched plan's packed outputs equal a fresh
        compile over the materialized netlist."""
        if not self.wants("S005"):
            return
        self.checks_run += 1
        from ..synth.simulate import BitParallelSimulator

        fresh = BitParallelSimulator(delta.materialize(check=False))
        inputs = {
            net: words_by_name.get(name, 0)
            for name, net in fresh.netlist.primary_inputs
        }
        reference = fresh.run_packed(inputs, num_cycles)
        if observed != reference:
            bad = sorted(
                name for name in observed
                if observed[name] != reference.get(name)
            )
            prov = _graph_provenance(delta.graph)
            prov["patched_nodes"] = sorted(delta.patched)
            self._fail(
                "S005",
                "patched simulator plan computes different packed output "
                f"words than a fresh compile (outputs {bad[:8]} differ)",
                **prov,
            )

    # -- S006 ------------------------------------------------------------
    def check_area_memo(
        self,
        engine: Any,
        graph: "CircuitGraph",
        overrides: dict[int, float],
    ) -> None:
        """S006: memo-served per-node areas equal a fresh single-node
        lowering of the candidate wiring (same float fold)."""
        if not self.wants("S006"):
            return
        self.checks_run += 1
        from ..incr.reward import _AreaScratch
        from ..synth.elaborate import _Elaborator

        widths = engine._node_widths
        library, strength = engine.library, engine.strength
        for v, served in overrides.items():
            scratch = _AreaScratch()
            parents = graph.filled_parents(v)
            bits = {p: list(range(2, 2 + widths[p])) for p in parents}
            _Elaborator(graph, netlist=scratch, bits=bits)._lower_comb(v)
            fresh = sum(
                library.cell(kind, strength).area for kind in scratch.kinds
            )
            if fresh != served:
                self._fail(
                    "S006",
                    f"area memo serves {served!r} for node {v} where a "
                    f"fresh lowering of its candidate wiring folds to "
                    f"{fresh!r}",
                    nodes=[v], **_graph_provenance(graph),
                )

    # -- S007 ------------------------------------------------------------
    def check_analysis(
        self,
        analyzer: Any,
        graph: "CircuitGraph",
        touched: Iterable[int],
        report: Any,
    ) -> None:
        """S007: the dirty-cone delta report equals the full fixpoint."""
        if not self.wants("S007"):
            return
        self.checks_run += 1
        reference = analyzer.full_analyze(graph)
        mismatches: list[str] = []
        if report.refs != reference.refs:
            mismatches.append("refs")
        if report.kept != reference.kept:
            mismatches.append("kept")
        if report.rewired != reference.rewired:
            mismatches.append("rewired")
        if report.live != reference.live:
            mismatches.append("live")
        if mismatches:
            bad = sorted(
                v for v, (a, b) in enumerate(zip(report.refs, reference.refs))
                if a != b
            )
            prov = _graph_provenance(graph)
            prov["touched"] = sorted(touched)
            self._fail(
                "S007",
                "delta-mode redundancy report diverges from the full "
                f"fixpoint in {', '.join(mismatches)}",
                nodes=bad[:16], **prov,
            )


    # -- S008 ------------------------------------------------------------
    def check_cross_circuit(
        self,
        evaluator: Any,
        graph: "CircuitGraph",
        register: int,
        signature: Any,
    ) -> None:
        """S008: a cross-circuit queue signature equals a fresh solo
        evaluator's -- the shared stimulus pool and the per-circuit
        delta/simulator caches must never mix state across circuits."""
        if not self.wants("S008"):
            return
        self.checks_run += 1
        from ..mcts.reward import ConeBatchEvaluator

        solo = ConeBatchEvaluator(
            num_cycles=evaluator.num_cycles, seed=evaluator.seed
        )
        # The reference derivation runs outside the sanitizing context:
        # its own delta/simulator checkpoints are not under audit here
        # and must not re-enter the sanitizer.
        token = _ACTIVE.set(None)
        try:
            reference = solo.signature(graph, register)
        finally:
            _ACTIVE.reset(token)
        if signature.words != reference.words:
            prov = _graph_provenance(graph)
            prov["circuit_key"] = getattr(evaluator, "circuit_key", None)
            self._fail(
                "S008",
                f"cross-circuit signature of register {register} diverges "
                "from a solo re-derivation (stimulus or state leaked "
                "across the circuit boundary)",
                nodes=[register], **prov,
            )


def from_config(active: bool, seed: int = 0) -> Sanitizer | None:
    """The sanitizer an optimization run should use.

    ``active`` is the per-run opt-in (``MCTSConfig.sanitize``); the
    ``REPRO_SANITIZE`` environment switch turns auditing on globally and
    may narrow the checkpoint set.
    """
    if not active and not env_sanitize():
        return None
    return Sanitizer(checks=env_checks(), seed=seed)
