"""Graph-scope lint rules (``L0xx``) over :class:`~repro.ir.CircuitGraph`.

``L001``-``L003`` promote the constraint set ``C`` checks of
:mod:`repro.lint.constraints` into the rule framework; the rest are
hygiene rules over valid graphs.  Severities encode the domain: a
structurally invalid graph is an *error*; an unused primary *port* is a
*warning* (an interface bug, never produced by the generators); and
removable redundancy -- dead or unobserved logic, duplicate structure,
constant-foldable subtrees -- is *info*, because the paper's designs
contain exactly that redundancy by construction and measuring its
removal is the whole point of the optimization phase.
"""

from __future__ import annotations

from ..ir.graph import CircuitGraph
from ..ir.node_types import NodeType, arity_of
from . import constraints
from .core import ERROR, GRAPH_SCOPE, INFO, WARNING, Diagnostic, Rule, rule

#: Binary ops whose operand order does not affect the result; duplicate
#: detection canonicalizes their parent order like the gate-level
#: structural hashing pass (:func:`repro.synth.passes._dedupe`).
_COMMUTATIVE = frozenset((
    NodeType.AND, NodeType.OR, NodeType.XOR, NodeType.ADD, NodeType.MUL,
    NodeType.EQ,
))

#: Types excluded from duplicate detection: ports are identity-bearing,
#: and equal-valued constants are reported by L008's folding instead.
_NO_DUP = frozenset((NodeType.IN, NodeType.OUT, NodeType.CONST))


def _live_set(graph: CircuitGraph) -> set[int]:
    """Nodes backward-reachable from any primary output."""
    rows = graph.filled_rows()
    live: set[int] = set()
    stack = list(graph.outputs())
    while stack:
        v = stack.pop()
        if v in live:
            continue
        live.add(v)
        stack.extend(rows[v])
    return live


@rule(
    "L001", "arity-violation", ERROR, GRAPH_SCOPE,
    "Node's filled parent count differs from its type's arity.",
)
def check_arity(graph: CircuitGraph, r: Rule) -> list[Diagnostic]:
    out = []
    for v in constraints.arity_violations(graph):
        node = graph.node(v)
        out.append(r.diag(
            f"node {v} ({node.type.value}) has "
            f"{len(graph.filled_parents(v))}/{arity_of(node.type)} parents",
            nodes=[v],
        ))
    return out


@rule(
    "L002", "combinational-cycle", ERROR, GRAPH_SCOPE,
    "Register-free cycle (a combinational loop).",
)
def check_combinational_cycles(
    graph: CircuitGraph, r: Rule
) -> list[Diagnostic]:
    return [
        r.diag(
            "combinational cycle through "
            + " -> ".join(str(v) for v in cycle),
            nodes=cycle,
        )
        for cycle in constraints.find_combinational_cycles(graph)
    ]


@rule(
    "L003", "dangling-output", ERROR, GRAPH_SCOPE,
    "OUT node with no driver (cannot be emitted as HDL).",
)
def check_dangling_outputs(graph: CircuitGraph, r: Rule) -> list[Diagnostic]:
    return [
        r.diag(
            f"output node {v}"
            + (f" ({graph.node(v).name})" if graph.node(v).name else "")
            + " has no driver",
            nodes=[v],
        )
        for v in constraints.dangling_outputs(graph)
    ]


@rule(
    "L004", "dead-logic", INFO, GRAPH_SCOPE,
    "Node with fanout but no path to any primary output; "
    "synthesis DCE removes it wholesale.",
)
def check_dead_logic(graph: CircuitGraph, r: Rule) -> list[Diagnostic]:
    live = _live_set(graph)
    fanout = graph.child_map()
    out = []
    for node in graph.nodes():
        v = node.id
        if v in live or node.type in (NodeType.IN, NodeType.OUT):
            continue
        if fanout[v]:
            out.append(r.diag(
                f"node {v} ({node.type.value}) drives "
                f"{len(fanout[v])} consumer(s) but no output observes it",
                nodes=[v],
            ))
    return out


@rule(
    "L005", "fanout-free-node", INFO, GRAPH_SCOPE,
    "Internal (non-port) node that nothing consumes.",
)
def check_fanout_free(graph: CircuitGraph, r: Rule) -> list[Diagnostic]:
    fanout = graph.child_map()
    return [
        r.diag(
            f"node {node.id} ({node.type.value}) has no consumers",
            nodes=[node.id],
        )
        for node in graph.nodes()
        if node.type not in (NodeType.IN, NodeType.OUT)
        and not fanout[node.id]
    ]


@rule(
    "L006", "unused-input", WARNING, GRAPH_SCOPE,
    "Primary input that nothing consumes.",
)
def check_unused_inputs(graph: CircuitGraph, r: Rule) -> list[Diagnostic]:
    fanout = graph.child_map()
    out = []
    for v in graph.inputs():
        if not fanout[v]:
            node = graph.node(v)
            label = f" ({node.name})" if node.name else ""
            out.append(r.diag(
                f"input node {v}{label} is never used", nodes=[v],
            ))
    return out


@rule(
    "L007", "duplicate-node", INFO, GRAPH_SCOPE,
    "Structurally identical nodes (same type, width, params and "
    "canonical parents); synthesis merges them.",
)
def check_duplicate_nodes(graph: CircuitGraph, r: Rule) -> list[Diagnostic]:
    # The per-node projection of the whole-graph key that
    # repro.mcts.reward.structural_fingerprint hashes: (type, width,
    # params) schema plus the ordered parent row, with commutative
    # operand order canonicalized.
    groups: dict[tuple, list[int]] = {}
    rows = graph.parent_rows()
    for node in graph.nodes():
        if node.type in _NO_DUP:
            continue
        row = rows[node.id]
        if None in row:
            continue  # arity violations are L001's finding
        canon = tuple(sorted(row)) if node.type in _COMMUTATIVE else row
        key = (
            node.type.value, node.width,
            tuple(sorted(node.params.items())), canon,
        )
        groups.setdefault(key, []).append(node.id)
    out = []
    for key, members in sorted(groups.items(), key=lambda kv: kv[1]):
        if len(members) > 1:
            out.append(r.diag(
                f"{len(members)} structurally identical "
                f"{key[0]} nodes: {members}",
                nodes=members,
            ))
    return out


@rule(
    "L008", "constant-foldable", INFO, GRAPH_SCOPE,
    "Non-constant nodes whose word value is a compile-time constant "
    "(per the word-level redundancy analysis).",
)
def check_constant_foldable(graph: CircuitGraph, r: Rule) -> list[Diagnostic]:
    # The semantic analysis needs a well-formed graph; structural
    # defects are L001/L002's findings.
    if constraints.arity_violations(graph) or constraints.has_combinational_loop(
        graph
    ):
        return []
    from ..incr.analysis import analyze_redundancy

    report = analyze_redundancy(graph)
    folded = [
        (node.id, report.refs[node.id][1])
        for node in graph.nodes()
        if node.type not in (NodeType.CONST, NodeType.IN, NodeType.OUT)
        and report.refs[node.id][0] == "c"
    ]
    if not folded:
        return []
    return [r.diag(
        f"{len(folded)} node(s) compute compile-time constants",
        nodes=[v for v, _ in folded],
        values=[[v, value] for v, value in folded],
    )]
