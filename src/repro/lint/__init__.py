"""Static analysis and runtime invariant auditing for circuit IR.

Three layers:

* :mod:`repro.lint.core` -- the rule/pass framework: a :class:`Rule`
  registry with stable ids (``L0xx`` graph, ``N0xx`` netlist, ``S0xx``
  sanitizer), severities, and JSON-round-trippable :class:`Diagnostic`
  / :class:`LintReport` dataclasses.
* :mod:`repro.lint.constraints` -- the canonical constraint set ``C``
  (moved here from ``repro.ir.validate``, which is now a shim).
* :mod:`repro.lint.sanitize` -- the opt-in runtime auditor that
  cross-checks every incremental cache against from-scratch
  recomputation and raises :class:`InvariantViolation` on divergence.

Import discipline: this package's eager imports only touch
``repro.ir.graph`` / ``repro.ir.node_types``, so ``repro.ir`` can
lazily re-export the constraint functions without a cycle; the netlist
and sanitizer rule modules (which pull in ``repro.synth``) load on
first use.
"""

from __future__ import annotations

from . import graph_rules  # noqa: F401  (registers L0xx)
from .constraints import (
    ValidationReport,
    arity_violations,
    assert_valid,
    dangling_outputs,
    find_combinational_cycles,
    has_combinational_loop,
    validate,
    would_create_combinational_loop,
)
from .core import (
    ERROR,
    INFO,
    SEVERITIES,
    WARNING,
    Diagnostic,
    LintReport,
    Rule,
    get_rule,
    lint_graph,
    lint_netlist,
    rule_catalog,
    rules_for,
)

#: Names served lazily from modules that transitively import
#: ``repro.synth`` (kept out of the eager import set -- see module
#: docstring).
_LAZY = {
    "InvariantViolation": "sanitize",
    "Sanitizer": "sanitize",
    "current_sanitizer": "sanitize",
    "env_sanitize": "sanitize",
    "is_sanitizing": "sanitize",
    "sanitizing": "sanitize",
}

__all__ = [
    "ERROR",
    "INFO",
    "SEVERITIES",
    "WARNING",
    "Diagnostic",
    "InvariantViolation",
    "LintReport",
    "Rule",
    "Sanitizer",
    "ValidationReport",
    "arity_violations",
    "assert_valid",
    "current_sanitizer",
    "dangling_outputs",
    "env_sanitize",
    "find_combinational_cycles",
    "get_rule",
    "has_combinational_loop",
    "is_sanitizing",
    "lint_graph",
    "lint_netlist",
    "rule_catalog",
    "rules_for",
    "sanitizing",
    "validate",
    "would_create_combinational_loop",
]


def __getattr__(name: str) -> object:
    module_name = _LAZY.get(name)
    if module_name is not None:
        from importlib import import_module

        module = import_module(f".{module_name}", __name__)
        value: object = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
