"""Circuit constraint checking (the paper's constraint set ``C``).

Canonical home of the checks that used to live in ``repro.ir.validate``
(that module is now a deprecation shim over this one; the public names
are still re-exported from :mod:`repro.ir`).  Two families of
constraints make a graph parseable back into HDL:

1. *Arity*: each node's type uniquely determines its number of parents.
2. *No combinational loops*: every cycle must pass through at least one
   register.  A cycle containing no register would be a combinational loop
   and cause timing violations.

The same checks are exposed as lint rules ``L001``-``L003`` in
:mod:`repro.lint.graph_rules`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.graph import CircuitGraph
from ..ir.node_types import arity_of, is_sequential


@dataclass
class ValidationReport:
    """Outcome of validating a circuit graph against ``C``."""

    arity_violations: list[int] = field(default_factory=list)
    combinational_cycles: list[list[int]] = field(default_factory=list)
    dangling_outputs: list[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            not self.arity_violations
            and not self.combinational_cycles
            and not self.dangling_outputs
        )

    def summary(self) -> str:
        if self.ok:
            return "valid"
        parts = []
        if self.arity_violations:
            parts.append(f"{len(self.arity_violations)} arity violations")
        if self.combinational_cycles:
            parts.append(f"{len(self.combinational_cycles)} combinational cycles")
        if self.dangling_outputs:
            parts.append(f"{len(self.dangling_outputs)} dangling outputs")
        return ", ".join(parts)


def arity_violations(graph: CircuitGraph) -> list[int]:
    """Ids of nodes whose filled parent count differs from their arity."""
    bad = []
    for node in graph.nodes():
        if len(graph.filled_parents(node.id)) != arity_of(node.type):
            bad.append(node.id)
    return bad


def find_combinational_cycles(
    graph: CircuitGraph, limit: int = 16
) -> list[list[int]]:
    """Return up to ``limit`` cycles that contain no register node.

    Registers are removed from the graph entirely: any cycle in the
    remainder is by definition register-free, i.e. combinational.
    Cycle enumeration uses iterative DFS over strongly connected node sets.
    """
    comb = [n.id for n in graph.nodes() if not is_sequential(n.type)]
    comb_set = set(comb)
    succ: dict[int, list[int]] = {v: [] for v in comb}
    for parent, child in graph.edges():
        if parent in comb_set and child in comb_set:
            succ[parent].append(child)

    cycles: list[list[int]] = []
    color = {v: 0 for v in comb}  # 0 white, 1 grey, 2 black
    stack_pos: dict[int, int] = {}

    for root in comb:
        if color[root] != 0 or len(cycles) >= limit:
            continue
        path: list[int] = []
        # Iterative DFS frame: (node, iterator index).
        frames: list[tuple[int, int]] = [(root, 0)]
        color[root] = 1
        stack_pos[root] = 0
        path.append(root)
        while frames:
            node, idx = frames[-1]
            if idx < len(succ[node]) and len(cycles) < limit:
                frames[-1] = (node, idx + 1)
                nxt = succ[node][idx]
                if color[nxt] == 1:
                    cycles.append(path[stack_pos[nxt]:] + [nxt])
                elif color[nxt] == 0:
                    color[nxt] = 1
                    stack_pos[nxt] = len(path)
                    path.append(nxt)
                    frames.append((nxt, 0))
            else:
                frames.pop()
                path.pop()
                color[node] = 2
                stack_pos.pop(node, None)
    return cycles


def has_combinational_loop(graph: CircuitGraph) -> bool:
    return bool(find_combinational_cycles(graph, limit=1))


def would_create_combinational_loop(
    graph: CircuitGraph, parent: int, child: int
) -> bool:
    """Would adding edge ``parent -> child`` close a register-free cycle?

    Per the paper's post-processing rule this reduces to a reachability
    query: the new edge closes a combinational loop iff neither endpoint is
    a register and a path from ``child`` back to ``parent`` already exists
    in the subgraph that excludes register-type nodes.
    """
    if is_sequential(graph.node(parent).type) or is_sequential(
        graph.node(child).type
    ):
        return False
    if parent == child:
        return True
    # BFS from child towards parent through combinational nodes only.
    fanout = graph.child_map()
    seen = {child}
    frontier = [child]
    while frontier:
        new_frontier = []
        for v in frontier:
            for w in fanout[v]:
                if is_sequential(graph.node(w).type):
                    continue
                if w == parent:
                    return True
                if w not in seen:
                    seen.add(w)
                    new_frontier.append(w)
        frontier = new_frontier
    return False


def dangling_outputs(graph: CircuitGraph) -> list[int]:
    """OUT nodes that have no driver (cannot be emitted as HDL)."""
    return [
        o for o in graph.outputs() if not graph.filled_parents(o)
    ]


def validate(graph: CircuitGraph) -> ValidationReport:
    """Full constraint check; ``report.ok`` is the paper's "G is valid"."""
    return ValidationReport(
        arity_violations=arity_violations(graph),
        combinational_cycles=find_combinational_cycles(graph),
        dangling_outputs=dangling_outputs(graph),
    )


def assert_valid(graph: CircuitGraph) -> None:
    report = validate(graph)
    if not report.ok:
        raise ValueError(f"invalid circuit graph: {report.summary()}")
