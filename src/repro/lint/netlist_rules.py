"""Netlist-scope lint rules (``N0xx``) over gate-level netlists.

``N001``/``N002`` are the diagnostic (non-raising) form of
:meth:`repro.synth.netlist.Netlist.check`; ``N003`` reports the gates
that dead-code elimination (:func:`repro.synth.passes._dce`) would drop
-- expected in fresh elaborations of redundant designs, hence *info*.
"""

from __future__ import annotations

from ..synth.netlist import Gate, Netlist
from .core import ERROR, INFO, NETLIST_SCOPE, Diagnostic, Rule, rule


def _source_nets(netlist: Netlist) -> set[int]:
    sources = {net for _, net in netlist.primary_inputs}
    if netlist.const0 >= 0:
        sources.add(netlist.const0)
    if netlist.const1 >= 0:
        sources.add(netlist.const1)
    return sources


@rule(
    "N001", "floating-net", ERROR, NETLIST_SCOPE,
    "Net read by a gate or primary output but driven by nothing.",
)
def check_floating_nets(netlist: Netlist, r: Rule) -> list[Diagnostic]:
    known = _source_nets(netlist) | {g.output for g in netlist.gates}
    out = []
    seen: set[int] = set()
    for idx, gate in enumerate(netlist.gates):
        for net in gate.inputs:
            if net not in known and net not in seen:
                seen.add(net)
                out.append(r.diag(
                    f"gate {idx} ({gate.kind} -> net {gate.output}) "
                    f"reads floating net {net}",
                    nodes=[net],
                ))
    for name, net in netlist.primary_outputs:
        if net not in known and net not in seen:
            seen.add(net)
            out.append(r.diag(
                f"primary output {name} reads floating net {net}",
                nodes=[net],
            ))
    return out


@rule(
    "N002", "multiply-driven-net", ERROR, NETLIST_SCOPE,
    "Net driven by more than one gate, or a source net that is "
    "also gate-driven.",
)
def check_multiply_driven(netlist: Netlist, r: Rule) -> list[Diagnostic]:
    drivers: dict[int, list[int]] = {}
    for idx, gate in enumerate(netlist.gates):
        drivers.setdefault(gate.output, []).append(idx)
    sources = _source_nets(netlist)
    out = []
    for net in sorted(drivers):
        who = drivers[net]
        if net in sources:
            out.append(r.diag(
                f"source net {net} is also driven by gate(s) {who}",
                nodes=[net],
            ))
        elif len(who) > 1:
            out.append(r.diag(
                f"net {net} has {len(who)} gate drivers: {who}",
                nodes=[net],
            ))
    return out


@rule(
    "N003", "dead-gate", INFO, NETLIST_SCOPE,
    "Gate not backward-reachable from any primary output; "
    "dead-code elimination removes it.",
)
def check_dead_gates(netlist: Netlist, r: Rule) -> list[Diagnostic]:
    # First-driver map (tolerant of N002 defects, which are reported
    # separately; Netlist.driver_map would raise on them).
    driver: dict[int, Gate] = {}
    for gate in netlist.gates:
        driver.setdefault(gate.output, gate)
    reachable: set[int] = set()
    stack = [net for _, net in netlist.primary_outputs]
    while stack:
        net = stack.pop()
        if net in reachable:
            continue
        reachable.add(net)
        gate = driver.get(net)
        if gate is not None:
            stack.extend(gate.inputs)
    dead = [
        (idx, gate) for idx, gate in enumerate(netlist.gates)
        if gate.output not in reachable
    ]
    if not dead:
        return []
    return [r.diag(
        f"{len(dead)} gate(s) are unreachable from the primary outputs",
        nodes=[gate.output for _, gate in dead],
        gates=[idx for idx, _ in dead],
    )]
