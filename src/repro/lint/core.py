"""Rule/pass framework of :mod:`repro.lint`.

A :class:`Rule` is a named, registered check with a stable id, a default
severity and a scope that says what it runs over:

* ``L0xx`` -- graph scope: word-level :class:`~repro.ir.CircuitGraph`,
* ``N0xx`` -- netlist scope: gate-level :class:`~repro.synth.netlist.Netlist`,
* ``S0xx`` -- sanitizer scope: runtime invariants of the incremental
  machinery (:mod:`repro.lint.sanitize`); these are listed in the
  catalog but run from instrumented checkpoints, not from
  :func:`lint_graph` / :func:`lint_netlist`.

:class:`Diagnostic` and :class:`LintReport` are JSON-round-trippable
dataclasses in the style of the :mod:`repro.api.requests` substrate, so
reports can cross the CLI / session / CI boundaries as plain dicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

ERROR = "error"
WARNING = "warning"
INFO = "info"
SEVERITIES = (ERROR, WARNING, INFO)

GRAPH_SCOPE = "graph"
NETLIST_SCOPE = "netlist"
SANITIZER_SCOPE = "sanitizer"
SCOPES = (GRAPH_SCOPE, NETLIST_SCOPE, SANITIZER_SCOPE)


@dataclass
class Diagnostic:
    """One finding of one rule.

    ``nodes`` holds graph node ids (graph scope) or net/gate indices
    (netlist scope); ``provenance`` carries arbitrary JSON-able context
    -- for sanitizer diagnostics, the edit provenance of the state that
    violated the invariant.
    """

    rule: str
    severity: str
    message: str
    nodes: list[int] = field(default_factory=list)
    provenance: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "nodes": list(self.nodes),
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Diagnostic":
        return cls(
            rule=data["rule"],
            severity=data["severity"],
            message=data["message"],
            nodes=list(data.get("nodes") or []),
            provenance=dict(data.get("provenance") or {}),
        )

    def __str__(self) -> str:
        where = f" [nodes {self.nodes}]" if self.nodes else ""
        return f"{self.rule} {self.severity}: {self.message}{where}"


@dataclass(frozen=True)
class Rule:
    """A registered check with a stable id.

    ``check`` maps its scope's subject (graph or netlist) to a list of
    diagnostics; sanitizer rules have ``check=None`` -- they fire from
    instrumented checkpoints via :class:`repro.lint.sanitize.Sanitizer`.
    """

    id: str
    title: str
    severity: str
    scope: str
    description: str = ""
    check: Callable[..., list[Diagnostic]] | None = None

    def diag(
        self,
        message: str,
        nodes: Iterable[int] = (),
        **provenance: Any,
    ) -> Diagnostic:
        """A diagnostic attributed to this rule at its default severity."""
        return Diagnostic(
            rule=self.id,
            severity=self.severity,
            message=message,
            nodes=list(nodes),
            provenance=provenance,
        )


_RULES: dict[str, Rule] = {}


def register(rule_obj: Rule) -> Rule:
    """Add ``rule_obj`` to the registry (id collisions are a bug)."""
    if rule_obj.severity not in SEVERITIES:
        raise ValueError(f"unknown severity {rule_obj.severity!r}")
    if rule_obj.scope not in SCOPES:
        raise ValueError(f"unknown scope {rule_obj.scope!r}")
    existing = _RULES.get(rule_obj.id)
    if existing is not None and existing is not rule_obj:
        raise ValueError(f"duplicate rule id {rule_obj.id!r}")
    _RULES[rule_obj.id] = rule_obj
    return rule_obj


def rule(
    rule_id: str,
    title: str,
    severity: str,
    scope: str,
    description: str = "",
) -> Callable[[Callable[..., list[Diagnostic]]], Callable[..., list[Diagnostic]]]:
    """Decorator form of :func:`register` for checks defined as functions."""

    def wrap(check: Callable[..., list[Diagnostic]]) -> Callable[..., list[Diagnostic]]:
        register(Rule(
            id=rule_id,
            title=title,
            severity=severity,
            scope=scope,
            description=description or (check.__doc__ or "").strip(),
            check=check,
        ))
        return check

    return wrap


def _load_rule_modules() -> None:
    """Import every rule module so the registry is complete.

    Imports are deferred to first use: the netlist and sanitizer rule
    modules pull in :mod:`repro.synth`, which the :mod:`repro.ir`
    package (a lint consumer) must not transitively import at init time.
    """
    from . import graph_rules, netlist_rules, sanitize  # noqa: F401


def get_rule(rule_id: str) -> Rule:
    _load_rule_modules()
    try:
        return _RULES[rule_id]
    except KeyError:
        raise KeyError(f"unknown lint rule {rule_id!r}") from None


def rules_for(scope: str, select: Iterable[str] | None = None) -> list[Rule]:
    """Registered rules of one scope, sorted by id.

    ``select`` restricts to the given rule ids (ids from other scopes
    are ignored, so one selection can span graph and netlist rules).
    """
    _load_rule_modules()
    wanted = None if select is None else set(select)
    return sorted(
        (
            r for r in _RULES.values()
            if r.scope == scope and (wanted is None or r.id in wanted)
        ),
        key=lambda r: r.id,
    )


def rule_catalog() -> list[Rule]:
    """Every registered rule, sorted by id (docs + CLI listing)."""
    _load_rule_modules()
    return sorted(_RULES.values(), key=lambda r: r.id)


@dataclass
class LintReport:
    """All diagnostics of one lint run over one design.

    ``ok`` mirrors :class:`~repro.lint.constraints.ValidationReport.ok`:
    no *error*-severity findings.  ``clean`` is the stricter CI bar: no
    errors and no warnings (info-severity findings -- expected
    redundancy in this codebase's domain -- do not break it).
    """

    design: str = "design"
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Rule ids that actually ran (a finding's absence is only
    #: meaningful for these).
    checked: list[str] = field(default_factory=list)

    def _of(self, severity: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self._of(ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self._of(WARNING)

    @property
    def infos(self) -> list[Diagnostic]:
        return self._of(INFO)

    @property
    def ok(self) -> bool:
        return not self.errors

    @property
    def clean(self) -> bool:
        return not self.errors and not self.warnings

    def by_rule(self, rule_id: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule_id]

    def extend(self, other: "LintReport") -> "LintReport":
        """Merge ``other``'s findings into this report (in place)."""
        self.diagnostics.extend(other.diagnostics)
        self.checked.extend(
            c for c in other.checked if c not in self.checked
        )
        return self

    def summary(self) -> str:
        if not self.diagnostics:
            return f"{self.design}: clean ({len(self.checked)} rules)"
        parts = []
        for label, found in (
            ("errors", self.errors),
            ("warnings", self.warnings),
            ("infos", self.infos),
        ):
            if found:
                parts.append(f"{len(found)} {label}")
        return f"{self.design}: " + ", ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        return {
            "design": self.design,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "checked": list(self.checked),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LintReport":
        return cls(
            design=data.get("design", "design"),
            diagnostics=[
                Diagnostic.from_dict(d) for d in data.get("diagnostics") or []
            ],
            checked=list(data.get("checked") or []),
        )


def lint_graph(
    graph: Any, rules: Iterable[str] | None = None
) -> LintReport:
    """Run the graph-scope (``L0xx``) rules over ``graph``."""
    selected = rules_for(GRAPH_SCOPE, rules)
    report = LintReport(design=getattr(graph, "name", "design"))
    for r in selected:
        assert r.check is not None
        report.diagnostics.extend(r.check(graph, r))
        report.checked.append(r.id)
    return report


def lint_netlist(
    netlist: Any, rules: Iterable[str] | None = None
) -> LintReport:
    """Run the netlist-scope (``N0xx``) rules over ``netlist``."""
    selected = rules_for(NETLIST_SCOPE, rules)
    report = LintReport(design=getattr(netlist, "name", "design"))
    for r in selected:
        assert r.check is not None
        report.diagnostics.extend(r.check(netlist, r))
        report.checked.append(r.id)
    return report
