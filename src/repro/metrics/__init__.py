"""Evaluation metrics: structural similarity, redundancy, timing, ML."""

from .homophily import (
    class_homophily,
    class_homophily_two_hop,
    two_hop_adjacency,
)
from .orbits import (
    clustering_coefficients,
    orbit_counts,
    triangle_count,
    undirected_simple,
)
from .regression import (
    RegressionScores,
    mape,
    pearson_r,
    rrse,
    score_regression,
)
from .structural import (
    StructuralReport,
    out_degree_sequence,
    ratio_statistic,
    structural_similarity,
    w1_clustering,
    w1_distance,
    w1_orbit,
    w1_out_degree,
)
from .timing_stats import TimingDistribution, collect_timing_distribution

__all__ = [
    "RegressionScores",
    "StructuralReport",
    "TimingDistribution",
    "class_homophily",
    "class_homophily_two_hop",
    "clustering_coefficients",
    "collect_timing_distribution",
    "mape",
    "orbit_counts",
    "out_degree_sequence",
    "pearson_r",
    "ratio_statistic",
    "rrse",
    "score_regression",
    "structural_similarity",
    "triangle_count",
    "two_hop_adjacency",
    "undirected_simple",
    "w1_clustering",
    "w1_distance",
    "w1_orbit",
    "w1_out_degree",
]
