"""Netlist timing statistics across a dataset (Figure 5).

The paper compares the distributions of Critical Path Slack (WNS) and
TNS divided by the number of violating paths across synthetic datasets
versus real benchmarks.  These helpers collect the two statistics for a
list of designs through the synthesis substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ir import CircuitGraph
from ..synth import synthesize


@dataclass
class TimingDistribution:
    """Per-design WNS and TNS/NVP samples for one dataset."""

    label: str
    wns: list[float] = field(default_factory=list)
    tns_per_violation: list[float] = field(default_factory=list)

    def summary(self) -> dict[str, float]:
        wns = np.asarray(self.wns)
        tnv = np.asarray(self.tns_per_violation)
        return {
            "wns_mean": float(wns.mean()) if len(wns) else float("nan"),
            "wns_std": float(wns.std()) if len(wns) else float("nan"),
            "wns_min": float(wns.min()) if len(wns) else float("nan"),
            "tns_nvp_mean": float(tnv.mean()) if len(tnv) else float("nan"),
            "tns_nvp_std": float(tnv.std()) if len(tnv) else float("nan"),
            "tns_nvp_min": float(tnv.min()) if len(tnv) else float("nan"),
        }


def collect_timing_distribution(
    graphs: list[CircuitGraph],
    label: str,
    clock_period: float = 0.5,
) -> TimingDistribution:
    """Synthesize every design at a tight clock and record the two stats.

    A deliberately tight period surfaces negative slack so the TNS/NVP
    statistic is informative, mirroring the violating-path analysis of
    Figure 5.
    """
    dist = TimingDistribution(label=label)
    for graph in graphs:
        result = synthesize(graph, clock_period=clock_period, check=False)
        dist.wns.append(result.wns)
        dist.tns_per_violation.append(result.timing.tns_per_violation)
    return dist
