"""Model-quality metrics for the downstream PPA prediction task.

Table III reports the correlation coefficient R (closer to 1 is better),
Mean Absolute Percentage Error (MAPE) and Root Relative Squared Error
(RRSE), matching MasterRTL / RTL-Timer evaluation practice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def pearson_r(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Pearson correlation; NaN when either side is constant (the paper
    reports NA in that case)."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if len(y_true) < 2:
        return float("nan")
    st, sp = y_true.std(), y_pred.std()
    if st < 1e-12 or sp < 1e-12:
        return float("nan")
    return float(np.corrcoef(y_true, y_pred)[0, 1])


def mape(y_true: np.ndarray, y_pred: np.ndarray,
         floor: float | None = None) -> float:
    """Mean absolute percentage error with a scale-relative floor.

    Labels that are exactly zero (e.g. TNS of designs meeting timing)
    would make the percentage error unbounded; the denominator is
    floored at 5% of the mean absolute label unless an explicit
    ``floor`` is given.
    """
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if floor is None:
        floor = max(1e-9, 0.05 * float(np.mean(np.abs(y_true))))
    denom = np.maximum(np.abs(y_true), floor)
    return float(np.mean(np.abs(y_true - y_pred) / denom))


def rrse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root relative squared error: RMSE normalised by predicting the mean."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    var = np.sum((y_true - y_true.mean()) ** 2)
    if var < 1e-18:
        return float("nan")
    return float(np.sqrt(np.sum((y_true - y_pred) ** 2) / var))


@dataclass
class RegressionScores:
    r: float
    mape: float
    rrse: float

    def as_row(self) -> dict[str, float]:
        return {"R": self.r, "MAPE": self.mape, "RRSE": self.rrse}


def score_regression(y_true: np.ndarray, y_pred: np.ndarray) -> RegressionScores:
    return RegressionScores(
        r=pearson_r(y_true, y_pred),
        mape=mape(y_true, y_pred),
        rrse=rrse(y_true, y_pred),
    )
