"""Class-structure correlation statistic h^(A, X) from Lim et al. 2021.

The paper's Table II reports ``h^(A, Y)`` and the two-hop variant
``h^(A^2, Y)``, measuring how strongly node classes (here: node types)
correlate with graph structure.  Following "Large Scale Learning on
Non-Homophilous Graphs":

    h^ = 1/(C-1) * sum_k max(0, h_k - |C_k| / n)

where ``h_k`` is the fraction of edges incident to class-k nodes whose
other endpoint is also class k.
"""

from __future__ import annotations

import numpy as np

from .orbits import undirected_simple


def class_homophily(adjacency: np.ndarray, labels: np.ndarray) -> float:
    """h^(A, X) on the undirected simple version of ``adjacency``."""
    u = undirected_simple(adjacency)
    labels = np.asarray(labels)
    n = len(labels)
    if u.shape != (n, n):
        raise ValueError("label length must match adjacency size")
    classes = np.unique(labels)
    if len(classes) < 2:
        return 0.0
    src, dst = np.nonzero(u)
    if len(src) == 0:
        return 0.0
    score = 0.0
    for k in classes:
        mask = labels[src] == k
        degree_k = mask.sum()
        if degree_k == 0:
            continue
        same = (labels[dst[mask]] == k).sum()
        h_k = same / degree_k
        score += max(0.0, h_k - (labels == k).sum() / n)
    return score / (len(classes) - 1)


def two_hop_adjacency(adjacency: np.ndarray) -> np.ndarray:
    """Binarised A^2 on the undirected graph, without self-loops."""
    u = undirected_simple(adjacency).astype(np.int64)
    two = (u @ u) > 0
    np.fill_diagonal(two, False)
    return two


def class_homophily_two_hop(adjacency: np.ndarray, labels: np.ndarray) -> float:
    """h^(A^2, X): the same statistic on the two-hop graph."""
    return class_homophily(two_hop_adjacency(adjacency), labels)
