"""Table II metric suite: distributional and scalar structure similarity.

Two families, following GraphRNN / GraphMaker evaluation practice:

* 1-Wasserstein distances between per-node statistic distributions of the
  real and generated graphs (out-degree, clustering coefficient, orbit
  counts) -- lower is better;
* expectation ratios ``E[M(G_hat) / M(G)]`` for scalar statistics
  (triangle count, h^(A, X), h^(A^2, X)) -- closer to 1 is better.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import wasserstein_distance

from ..ir import CircuitGraph
from .homophily import class_homophily, class_homophily_two_hop
from .orbits import clustering_coefficients, orbit_counts, triangle_count


def out_degree_sequence(graph: CircuitGraph) -> np.ndarray:
    a = graph.adjacency()
    return a.sum(axis=1).astype(np.float64)


def w1_distance(real: np.ndarray, generated: np.ndarray) -> float:
    """1-Wasserstein distance between two samples of a node statistic."""
    if len(real) == 0 or len(generated) == 0:
        return float("nan")
    return float(wasserstein_distance(real, generated))


def w1_out_degree(real: CircuitGraph, generated: CircuitGraph) -> float:
    return w1_distance(out_degree_sequence(real), out_degree_sequence(generated))


def w1_clustering(real: CircuitGraph, generated: CircuitGraph) -> float:
    return w1_distance(
        clustering_coefficients(real.adjacency()),
        clustering_coefficients(generated.adjacency()),
    )


def w1_orbit(real: CircuitGraph, generated: CircuitGraph) -> float:
    """Mean W1 over the six per-node orbit-count distributions."""
    real_orbits = orbit_counts(real.adjacency())
    gen_orbits = orbit_counts(generated.adjacency())
    distances = [
        w1_distance(real_orbits[:, k], gen_orbits[:, k])
        for k in range(real_orbits.shape[1])
    ]
    return float(np.mean(distances))


def ratio_statistic(real_value: float, generated_values: list[float]) -> float:
    """E[M(G_hat)/M(G)]; guards the zero-denominator case."""
    if abs(real_value) < 1e-12:
        return float("nan")
    return float(np.mean([g / real_value for g in generated_values]))


@dataclass
class StructuralReport:
    """One Table II cell group: all six metrics for one (model, design)."""

    w1_out_degree: float
    w1_clustering: float
    w1_orbit: float
    ratio_triangle: float
    ratio_homophily: float
    ratio_homophily_two_hop: float

    def as_row(self) -> dict[str, float]:
        return {
            "out_degree": self.w1_out_degree,
            "cluster": self.w1_clustering,
            "orbit": self.w1_orbit,
            "triangle": self.ratio_triangle,
            "h(A,Y)": self.ratio_homophily,
            "h(A2,Y)": self.ratio_homophily_two_hop,
        }


def structural_similarity(
    real: CircuitGraph, generated: list[CircuitGraph]
) -> StructuralReport:
    """Compare a set of generated graphs against one reference design."""
    if not generated:
        raise ValueError("need at least one generated graph")
    real_adj = real.adjacency()
    real_types = real.type_indices()

    w1_deg = float(np.mean([w1_out_degree(real, g) for g in generated]))
    w1_clu = float(np.mean([w1_clustering(real, g) for g in generated]))
    w1_orb = float(np.mean([w1_orbit(real, g) for g in generated]))

    tri_real = triangle_count(real_adj)
    h_real = class_homophily(real_adj, real_types)
    h2_real = class_homophily_two_hop(real_adj, real_types)

    tri_gen = [triangle_count(g.adjacency()) for g in generated]
    h_gen = [
        class_homophily(g.adjacency(), g.type_indices()) for g in generated
    ]
    h2_gen = [
        class_homophily_two_hop(g.adjacency(), g.type_indices())
        for g in generated
    ]
    return StructuralReport(
        w1_out_degree=w1_deg,
        w1_clustering=w1_clu,
        w1_orbit=w1_orb,
        ratio_triangle=ratio_statistic(tri_real, tri_gen),
        ratio_homophily=ratio_statistic(h_real, h_gen),
        ratio_homophily_two_hop=ratio_statistic(h2_real, h2_gen),
    )
