"""Per-node graphlet orbit counts on the underlying undirected graph.

GraphRNN's evaluation protocol (followed by the paper) compares the
distribution of 4-node graphlet orbit counts via ORCA.  ORCA is a C++
tool; this module computes an exact six-orbit profile per node with
closed-form combinatorics instead:

0. degree                      3. triangles through the node
1. induced P3 end              4. 3-star centres (C(d, 3))
2. induced P3 centre           5. 4-cycles through the node

These span the degree-, wedge-, triangle- and cycle-sensitivity of the
full 15-orbit ORCA profile at a fraction of the cost; the substitution is
recorded in DESIGN.md.
"""

from __future__ import annotations

import numpy as np


def undirected_simple(adjacency: np.ndarray) -> np.ndarray:
    """Symmetrise and drop self-loops."""
    a = np.asarray(adjacency, dtype=bool)
    u = a | a.T
    np.fill_diagonal(u, False)
    return u


def orbit_counts(adjacency: np.ndarray) -> np.ndarray:
    """(N, 6) matrix of per-node orbit counts (see module docstring)."""
    u = undirected_simple(adjacency).astype(np.float64)
    n = u.shape[0]
    if n == 0:
        return np.zeros((0, 6))
    deg = u.sum(axis=1)

    a2 = u @ u
    a3 = a2 @ u
    triangles = np.diag(a3) / 2.0

    # Induced P3 centre at v: pairs of neighbours that are not adjacent.
    p3_center = deg * (deg - 1) / 2.0 - triangles
    # Induced P3 end at u: walks u-v-w with w != u, minus triangles (w
    # adjacent to u makes it a triangle, counted once per triangle edge).
    p3_end = u @ (deg - 1) - 2.0 * triangles

    star3_center = deg * (deg - 1) * (deg - 2) / 6.0

    a4_diag = np.einsum("ij,ji->i", a2, a2)
    c4 = (a4_diag - deg ** 2 - u @ (deg - 1)) / 2.0

    counts = np.stack(
        [deg, p3_end, p3_center, triangles, star3_center, c4], axis=1
    )
    return np.maximum(counts, 0.0)


def triangle_count(adjacency: np.ndarray) -> float:
    """Total number of triangles in the undirected simple graph."""
    u = undirected_simple(adjacency).astype(np.float64)
    return float(np.trace(u @ u @ u) / 6.0)


def clustering_coefficients(adjacency: np.ndarray) -> np.ndarray:
    """Per-node local clustering coefficient (undirected)."""
    u = undirected_simple(adjacency).astype(np.float64)
    deg = u.sum(axis=1)
    tri = np.diag(u @ u @ u) / 2.0
    possible = deg * (deg - 1) / 2.0
    with np.errstate(divide="ignore", invalid="ignore"):
        coeff = np.where(possible > 0, tri / possible, 0.0)
    return coeff
