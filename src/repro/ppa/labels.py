"""Label generation through the synthesis substrate.

Reproduces the paper's protocol: every design is synthesised across a
Pareto sweep of target periods / drive strengths ("multiple parameters
within the Design Compiler were adjusted"), and the (area, WNS, TNS)
values along the frontier become ground-truth labels.  Register slack
labels come from the per-register endpoint slacks of the STA.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ir import CircuitGraph
from ..synth import pareto_sweep, synthesize
from .features import design_features, register_features


@dataclass
class DesignSample:
    """One (design, Pareto point) supervised example."""

    design: str
    features: np.ndarray
    area: float
    wns: float
    tns: float
    clock_period: float


def design_samples(
    graphs: list[CircuitGraph],
    periods: list[float] | None = None,
) -> list[DesignSample]:
    """Feature/label rows for the design-level tasks (area, WNS, TNS)."""
    samples: list[DesignSample] = []
    for graph in graphs:
        for result in pareto_sweep(graph, periods=periods):
            samples.append(
                DesignSample(
                    design=graph.name,
                    features=design_features(graph, result.clock_period),
                    area=result.area,
                    wns=result.wns,
                    tns=result.tns,
                    clock_period=result.clock_period,
                )
            )
    return samples


def register_samples(
    graphs: list[CircuitGraph],
    clock_period: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Feature/label rows for the register-slack task (RTL-Timer style).

    Only registers that survive synthesis have a slack endpoint; swept
    registers contribute nothing -- which is how synthetic-data
    redundancy quietly degrades this task, per the paper's Table III
    discussion.
    """
    feats: list[np.ndarray] = []
    slacks: list[float] = []
    for graph in graphs:
        result = synthesize(graph, clock_period=clock_period, check=False)
        for reg, slack in result.register_slacks.items():
            feats.append(register_features(graph, reg, clock_period))
            slacks.append(slack)
    if not feats:
        return np.zeros((0, 1)), np.zeros(0)
    return np.array(feats), np.array(slacks)


def stack_design_samples(
    samples: list[DesignSample],
) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """(X, {"area": y, "wns": y, "tns": y}) matrices from sample rows."""
    if not samples:
        return np.zeros((0, 1)), {
            "area": np.zeros(0), "wns": np.zeros(0), "tns": np.zeros(0)
        }
    x = np.array([s.features for s in samples])
    return x, {
        "area": np.array([s.area for s in samples]),
        "wns": np.array([s.wns for s in samples]),
        "tns": np.array([s.tns for s in samples]),
    }
