"""Regression models for PPA prediction, from scratch on numpy.

MasterRTL uses XGBoost; this module provides the same model family --
gradient-boosted regression trees -- plus a random forest and a ridge
baseline, with the familiar fit/predict interface.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "._Node | None" = None
    right: "._Node | None" = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """CART regression tree with exact variance-reduction splits."""

    def __init__(self, max_depth: int = 3, min_leaf: int = 2,
                 max_features: int | None = None):
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.max_features = max_features
        self._root: _Node | None = None

    def fit(self, x: np.ndarray, y: np.ndarray,
            rng: np.random.Generator | None = None) -> "RegressionTree":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(x) != len(y) or len(x) == 0:
            raise ValueError("x and y must be non-empty and aligned")
        self._rng = rng or np.random.default_rng(0)
        self._root = self._build(x, y, depth=0)
        return self

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        if depth >= self.max_depth or len(y) < 2 * self.min_leaf:
            return node
        best = self._best_split(x, y)
        if best is None:
            return node
        feature, threshold = best
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(x[mask], y[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, x: np.ndarray, y: np.ndarray
                    ) -> tuple[int, float] | None:
        n, d = x.shape
        features = np.arange(d)
        if self.max_features is not None and self.max_features < d:
            features = self._rng.choice(d, self.max_features, replace=False)
        base_sse = ((y - y.mean()) ** 2).sum()
        best_gain, best = 1e-12, None
        for f in features:
            order = np.argsort(x[:, f], kind="stable")
            xs, ys = x[order, f], y[order]
            csum = np.cumsum(ys)
            csq = np.cumsum(ys ** 2)
            total_sum, total_sq = csum[-1], csq[-1]
            for i in range(self.min_leaf, n - self.min_leaf + 1):
                if i < n and xs[i - 1] == xs[i]:
                    continue  # cannot split between equal values
                left_sse = csq[i - 1] - csum[i - 1] ** 2 / i
                right_n = n - i
                right_sum = total_sum - csum[i - 1]
                right_sse = (total_sq - csq[i - 1]) - right_sum ** 2 / right_n
                gain = base_sse - left_sse - right_sse
                if gain > best_gain:
                    best_gain = gain
                    threshold = (
                        xs[i - 1] if i >= n else (xs[i - 1] + xs[i]) / 2.0
                    )
                    best = (int(f), float(threshold))
        return best

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        out = np.empty(len(x))
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out


class GradientBoostedTrees:
    """Least-squares gradient boosting (the XGBoost stand-in)."""

    def __init__(self, n_estimators: int = 60, learning_rate: float = 0.1,
                 max_depth: int = 3, min_leaf: int = 2,
                 subsample: float = 1.0, seed: int = 0):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.subsample = subsample
        self.seed = seed
        self._trees: list[RegressionTree] = []
        self._base: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        self._trees = []
        self._base = float(y.mean())
        residual = y - self._base
        current = np.full(len(y), 0.0)
        for _ in range(self.n_estimators):
            target = residual - current
            idx = np.arange(len(y))
            if self.subsample < 1.0:
                take = max(2 * self.min_leaf, int(len(y) * self.subsample))
                idx = rng.choice(len(y), size=min(take, len(y)), replace=False)
            tree = RegressionTree(self.max_depth, self.min_leaf)
            tree.fit(x[idx], target[idx], rng)
            self._trees.append(tree)
            current = current + self.learning_rate * tree.predict(x)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("model is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        out = np.full(len(x), self._base)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(x)
        return out


class RandomForest:
    """Bagged regression trees with feature subsampling."""

    def __init__(self, n_estimators: int = 40, max_depth: int = 6,
                 min_leaf: int = 2, seed: int = 0):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.seed = seed
        self._trees: list[RegressionTree] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForest":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        max_features = max(1, x.shape[1] // 3)
        self._trees = []
        for _ in range(self.n_estimators):
            idx = rng.integers(0, len(y), size=len(y))
            tree = RegressionTree(self.max_depth, self.min_leaf, max_features)
            tree.fit(x[idx], y[idx], rng)
            self._trees.append(tree)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("model is not fitted")
        preds = np.stack([t.predict(x) for t in self._trees])
        return preds.mean(axis=0)


class Ridge:
    """Closed-form L2-regularised linear regression with normalisation."""

    def __init__(self, alpha: float = 1.0):
        self.alpha = alpha
        self._w: np.ndarray | None = None
        self._mean_x = None
        self._std_x = None
        self._mean_y = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "Ridge":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        self._mean_x = x.mean(axis=0)
        self._std_x = np.maximum(x.std(axis=0), 1e-9)
        self._mean_y = float(y.mean())
        xn = (x - self._mean_x) / self._std_x
        gram = xn.T @ xn + self.alpha * np.eye(x.shape[1])
        self._w = np.linalg.solve(gram, xn.T @ (y - self._mean_y))
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._w is None:
            raise RuntimeError("model is not fitted")
        xn = (np.atleast_2d(x) - self._mean_x) / self._std_x
        return xn @ self._w + self._mean_y
