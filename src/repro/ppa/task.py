"""Table III experiment harness: data augmentation for PPA prediction.

For each augmentation source (none, GraphRNN, DVAE, SynCircuit w/o opt,
SynCircuit w/ opt), the harness trains one model per task on the basic
real-design training set plus the synthetic set, then evaluates on the
held-out real designs with R / MAPE / RRSE.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..ir import CircuitGraph
from ..metrics import RegressionScores, score_regression
from .labels import design_samples, register_samples, stack_design_samples
from .models import GradientBoostedTrees

TASKS = ("reg_slack", "wns", "tns", "area")


@dataclass
class AugmentationRow:
    """One Table III row: scores for the four tasks under one train set."""

    label: str
    scores: dict[str, RegressionScores] = field(default_factory=dict)

    def as_dict(self) -> dict[str, dict[str, float]]:
        return {task: s.as_row() for task, s in self.scores.items()}


def _model() -> GradientBoostedTrees:
    return GradientBoostedTrees(
        n_estimators=80, learning_rate=0.08, max_depth=3, min_leaf=2, seed=0
    )


def evaluate_augmentation(
    base_train: list[CircuitGraph],
    test: list[CircuitGraph],
    synthetic_sets: dict[str, list[CircuitGraph]],
    clock_period: float = 1.0,
    periods: list[float] | None = None,
) -> list[AugmentationRow]:
    """Run the full Table III protocol.

    ``synthetic_sets`` maps a row label to its augmentation circuits; a
    "Basic training data" row with no augmentation is always included
    first.
    """
    test_design = design_samples(test, periods)
    x_test_d, y_test_d = stack_design_samples(test_design)
    x_test_r, y_test_r = register_samples(test, clock_period)

    rows: list[AugmentationRow] = []
    all_sets: dict[str, list[CircuitGraph]] = {
        "Basic training data": [],
        **synthetic_sets,
    }
    for label, extra in all_sets.items():
        train_graphs = list(base_train) + list(extra)
        train_design = design_samples(train_graphs, periods)
        x_train_d, y_train_d = stack_design_samples(train_design)
        x_train_r, y_train_r = register_samples(train_graphs, clock_period)

        row = AugmentationRow(label=label)
        for task in ("area", "wns", "tns"):
            model = _model().fit(x_train_d, y_train_d[task])
            pred = model.predict(x_test_d)
            row.scores[task] = score_regression(y_test_d[task], pred)
        if len(y_train_r) >= 4 and len(y_test_r) > 0:
            model = _model().fit(x_train_r, y_train_r)
            pred = model.predict(x_test_r)
            row.scores["reg_slack"] = score_regression(y_test_r, pred)
        else:
            row.scores["reg_slack"] = RegressionScores(
                float("nan"), float("nan"), float("nan")
            )
        rows.append(row)
    return rows


def format_table(rows: list[AugmentationRow]) -> str:
    """Render rows as the paper's Table III layout."""
    header = (
        f"{'Model':<28s}"
        + "".join(
            f"{t + ' R':>16s}{t + ' MAPE':>16s}{t + ' RRSE':>16s}"
            for t in ("RegSlack", "WNS", "TNS", "Area")
        )
    )
    lines = [header, "-" * len(header)]
    task_order = ("reg_slack", "wns", "tns", "area")
    for row in rows:
        cells = []
        for task in task_order:
            s = row.scores[task]
            r = "NA" if np.isnan(s.r) else f"{s.r:.2f}"
            m = "NA" if np.isnan(s.mape) else f"{s.mape * 100:.0f}%"
            e = "NA" if np.isnan(s.rrse) else f"{s.rrse:.2f}"
            cells.append(f"{r:>16s}{m:>16s}{e:>16s}")
        lines.append(f"{row.label:<28s}" + "".join(cells))
    return "\n".join(lines)
