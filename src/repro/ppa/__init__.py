"""Downstream ML task: RTL-stage PPA prediction with data augmentation."""

from .features import (
    DESIGN_FEATURE_DIM,
    REGISTER_FEATURE_DIM,
    design_features,
    estimated_logic_depth,
    register_features,
)
from .labels import (
    DesignSample,
    design_samples,
    register_samples,
    stack_design_samples,
)
from .models import GradientBoostedTrees, RandomForest, RegressionTree, Ridge
from .task import TASKS, AugmentationRow, evaluate_augmentation, format_table

__all__ = [
    "AugmentationRow",
    "DESIGN_FEATURE_DIM",
    "DesignSample",
    "GradientBoostedTrees",
    "REGISTER_FEATURE_DIM",
    "RandomForest",
    "RegressionTree",
    "Ridge",
    "TASKS",
    "design_features",
    "design_samples",
    "estimated_logic_depth",
    "evaluate_augmentation",
    "format_table",
    "register_features",
    "register_samples",
    "stack_design_samples",
]
