"""RTL-stage feature extraction for PPA prediction.

Design-level features follow the MasterRTL recipe (bit-level "simple
operator graph" statistics: operator mix, bit widths, depth, fanout);
register-level features follow RTL-Timer (per-register driving-cone
statistics).  The synthesis target clock period is appended as a feature
so one model covers the Pareto-frontier label set.
"""

from __future__ import annotations

import numpy as np

from ..ir import CircuitGraph, NUM_TYPES, NodeType, type_index
from ..mcts.cones import driving_cone
from ..mcts.reward import cone_features

#: Rough per-bit gate cost of each operator, used for the depth/area proxies.
_OP_COST = {
    NodeType.ADD: 5.0, NodeType.SUB: 6.0, NodeType.MUL: 20.0,
    NodeType.AND: 1.0, NodeType.OR: 1.0, NodeType.XOR: 1.5,
    NodeType.NOT: 0.5, NodeType.EQ: 2.0, NodeType.LT: 3.0,
    NodeType.SHL: 4.0, NodeType.SHR: 4.0, NodeType.MUX: 2.0,
    NodeType.SLICE: 0.0, NodeType.CONCAT: 0.0, NodeType.REDUCE_OR: 1.0,
    NodeType.REG: 4.0, NodeType.IN: 0.0, NodeType.OUT: 0.0,
    NodeType.CONST: 0.0,
}


def estimated_logic_depth(graph: CircuitGraph) -> float:
    """Longest cost-weighted combinational path (timing proxy).

    Registers and inputs are path sources; operator nodes add their
    per-bit cost.  Computed on the acyclic combinational subgraph.
    """
    depth: dict[int, float] = {}
    sources = (NodeType.IN, NodeType.CONST, NodeType.REG)

    order: list[int] = []
    indeg: dict[int, int] = {}
    comb = [n.id for n in graph.nodes() if n.type not in sources]
    comb_set = set(comb)
    children: dict[int, list[int]] = {v: [] for v in comb}
    for v in comb:
        count = 0
        for p in graph.filled_parents(v):
            if p in comb_set:
                children[p].append(v)
                count += 1
        indeg[v] = count
    frontier = [v for v in comb if indeg[v] == 0]
    while frontier:
        v = frontier.pop()
        order.append(v)
        for c in children[v]:
            indeg[c] -= 1
            if indeg[c] == 0:
                frontier.append(c)

    best = 0.0
    for v in order:
        node = graph.node(v)
        parent_depth = max(
            (depth.get(p, 0.0) for p in graph.filled_parents(v)), default=0.0
        )
        depth[v] = parent_depth + _OP_COST.get(node.type, 1.0)
        best = max(best, depth[v])
    return best


def design_features(graph: CircuitGraph, clock_period: float) -> np.ndarray:
    """MasterRTL-style design-level feature vector."""
    n = graph.num_nodes
    type_counts = np.zeros(NUM_TYPES)
    bit_costs = 0.0
    total_bits = 0
    widths = []
    for node in graph.nodes():
        type_counts[type_index(node.type)] += 1
        bit_costs += _OP_COST.get(node.type, 1.0) * node.width
        total_bits += node.width
        widths.append(node.width)
    a = graph.adjacency()
    out_deg = a.sum(axis=1)
    feats = np.concatenate([
        [n, graph.num_edges, total_bits],
        [graph.total_register_bits()],
        [len(graph.inputs()), len(graph.outputs())],
        [bit_costs],                       # area proxy
        [estimated_logic_depth(graph)],    # timing proxy
        [np.mean(widths), np.max(widths)],
        [out_deg.mean(), out_deg.max()],
        type_counts,
        type_counts / max(n, 1),
        [clock_period],
    ])
    return feats


#: Dimension of :func:`design_features`.
DESIGN_FEATURE_DIM = 12 + 2 * NUM_TYPES + 1


def register_features(
    graph: CircuitGraph, register: int, clock_period: float
) -> np.ndarray:
    """RTL-Timer-style per-register feature vector (cone statistics)."""
    cone = driving_cone(graph, register)
    return np.concatenate([
        cone_features(graph, cone),
        [graph.node(register).width],
        [len(graph.children(register))],
        [clock_period],
    ])


from ..mcts.reward import CONE_FEATURE_DIM  # noqa: E402

#: Dimension of :func:`register_features`.
REGISTER_FEATURE_DIM = CONE_FEATURE_DIM + 3
