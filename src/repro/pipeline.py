"""Deprecated shim: the pipeline moved to :mod:`repro.api`.

``SynCircuit``, ``SynCircuitConfig`` and ``GenerationRecord`` now live in
``repro.api`` (engine: ``repro.api.engine``); the session layer there
adds artifact caching, presets and parallel batch generation.  Importing
them from ``repro.pipeline`` keeps working but emits a
``DeprecationWarning``.  New code should write::

    from repro.api import Session, SynCircuit, SynCircuitConfig
"""

from __future__ import annotations

import warnings

_MOVED = ("SynCircuit", "SynCircuitConfig", "GenerationRecord")

__all__ = list(_MOVED)


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"repro.pipeline.{name} is deprecated; import it from "
            "repro.api instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from . import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
