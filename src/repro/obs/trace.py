"""Low-overhead tracing spans over a preallocated ring buffer.

The recorder follows the sanitizer's activation idiom
(:mod:`repro.lint.sanitize`): the active :class:`TraceRecorder` rides a
:class:`contextvars.ContextVar`, so the default-off cost at every
instrumented call site is one context-variable read returning ``None``
-- no timestamps, no allocation, no branching beyond the guard.  When a
recorder *is* active, :func:`span` stamps two ``perf_counter_ns`` reads
around the instrumented region and writes one fixed-shape record into a
preallocated ring buffer; once the buffer wraps, the oldest spans are
overwritten and counted on :attr:`TraceRecorder.dropped` rather than
growing memory without bound.

Tracing is *observation only*: no instrumented code path reads anything
back from the recorder, no random stream is touched, and every value
recorded is a wall-clock timestamp or an attribute the caller already
computed -- which is why a fully traced run is bit-identical to an
untraced one (asserted in ``tests/test_obs.py``).

Export is the Chrome trace-event JSON format (``"X"`` complete events,
microsecond timestamps), which https://ui.perfetto.dev loads directly::

    from repro.obs import TraceRecorder, tracing

    recorder = TraceRecorder()
    with tracing(recorder):
        session.generate(request)
    path = recorder.write_chrome_trace("trace.json")
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextvars import ContextVar, Token
from typing import Any, Iterator, Mapping

#: Default ring capacity: enough for every span of a paper-scale
#: generate run (~thousands of candidate edits) at ~100 bytes/span.
DEFAULT_CAPACITY = 65536

_ACTIVE: ContextVar["TraceRecorder | None"] = ContextVar(
    "repro_trace", default=None
)


def current_recorder() -> "TraceRecorder | None":
    """The recorder tracing this context, or ``None`` (the fast path)."""
    return _ACTIVE.get()


def is_tracing() -> bool:
    return _ACTIVE.get() is not None


class SpanRecord:
    """One finished span (a view over the ring's fixed-shape tuples)."""

    __slots__ = ("name", "start_ns", "duration_ns", "thread_id", "attrs")

    def __init__(
        self,
        name: str,
        start_ns: int,
        duration_ns: int,
        thread_id: int,
        attrs: dict[str, Any],
    ) -> None:
        self.name = name
        self.start_ns = start_ns
        self.duration_ns = duration_ns
        self.thread_id = thread_id
        self.attrs = attrs

    def __repr__(self) -> str:
        return (
            f"SpanRecord({self.name!r}, "
            f"{self.duration_ns / 1e6:.3f}ms, {self.attrs})"
        )


class _Span:
    """Context manager for one active span (reused fields, no closure)."""

    __slots__ = ("_recorder", "_name", "_attrs", "_start")

    def __init__(
        self,
        recorder: "TraceRecorder",
        name: str,
        attrs: dict[str, Any],
    ) -> None:
        self._recorder = recorder
        self._name = name
        self._attrs = attrs
        self._start = 0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter_ns()
        return self

    def add(self, **attrs: Any) -> None:
        """Attach attributes discovered while the span is open (e.g. a
        search's simulation count, known only at the end)."""
        self._attrs.update(attrs)

    def __exit__(self, *exc: object) -> None:
        self._recorder._record(
            self._name,
            self._start,
            time.perf_counter_ns() - self._start,
            self._attrs,
        )


class _NullSpan:
    """The disabled path: a shared, stateless no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def add(self, **attrs: Any) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


def span(name: str, **attrs: Any) -> "_Span | _NullSpan":
    """Open a trace span around the ``with`` body.

    Disabled (no active recorder) this returns a shared no-op object:
    the total cost is the call, one ContextVar read and two trivial
    ``__enter__``/``__exit__`` dispatches -- the property the
    ``obs.overhead`` bench entry and its CI gate keep honest.
    """
    recorder = _ACTIVE.get()
    if recorder is None:
        return _NULL_SPAN
    return _Span(recorder, name, attrs)


def instant(name: str, **attrs: Any) -> None:
    """Record a zero-duration marker event (disabled: one dict read)."""
    recorder = _ACTIVE.get()
    if recorder is not None:
        recorder._record(name, time.perf_counter_ns(), 0, attrs)


class tracing:
    """Activate ``recorder`` for the dynamic extent of the ``with`` body.

    ``tracing(None)`` is a no-op context, so call sites that take an
    optional recorder need no branching (mirrors ``sanitizing``).
    """

    __slots__ = ("_recorder", "_token")

    def __init__(self, recorder: "TraceRecorder | None") -> None:
        self._recorder = recorder
        self._token: Token[TraceRecorder | None] | None = None

    def __enter__(self) -> "TraceRecorder | None":
        if self._recorder is not None:
            self._token = _ACTIVE.set(self._recorder)
        return self._recorder

    def __exit__(self, *exc: object) -> None:
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None


class TraceRecorder:
    """Preallocated ring buffer of finished spans.

    ``capacity`` bounds memory: the ring holds the *newest* ``capacity``
    spans and counts everything overwritten on :attr:`dropped`.  Records
    are appended under a lock -- spans from ``generate_batch`` worker
    threads interleave into one buffer -- but the lock is only ever
    taken when tracing is active, so the disabled path pays nothing.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._ring: list[SpanRecord | None] = [None] * capacity
        self._next = 0
        self._count = 0
        self._lock = threading.Lock()
        self._epoch_ns = time.perf_counter_ns()

    # -- recording -------------------------------------------------------
    def _record(
        self,
        name: str,
        start_ns: int,
        duration_ns: int,
        attrs: dict[str, Any],
    ) -> None:
        record = SpanRecord(
            name, start_ns, duration_ns,
            threading.get_ident(), attrs,
        )
        with self._lock:
            self._ring[self._next] = record
            self._next = (self._next + 1) % self.capacity
            self._count += 1

    # -- inspection ------------------------------------------------------
    def __len__(self) -> int:
        """Spans currently held (≤ capacity)."""
        return min(self._count, self.capacity)

    @property
    def recorded(self) -> int:
        """Total spans ever recorded, including overwritten ones."""
        return self._count

    @property
    def dropped(self) -> int:
        """Spans overwritten by ring wraparound."""
        return max(self._count - self.capacity, 0)

    def spans(self) -> list[SpanRecord]:
        """Held spans, oldest first (stable under concurrent recording)."""
        with self._lock:
            if self._count <= self.capacity:
                held = self._ring[: self._count]
            else:
                held = self._ring[self._next:] + self._ring[: self._next]
        return [record for record in held if record is not None]

    def clear(self) -> None:
        with self._lock:
            self._ring = [None] * self.capacity
            self._next = 0
            self._count = 0
            self._epoch_ns = time.perf_counter_ns()

    # -- export ----------------------------------------------------------
    def to_chrome_trace(
        self, process_name: str = "repro",
        metadata: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Chrome trace-event JSON (the format Perfetto's UI loads).

        Every span becomes one ``"ph": "X"`` complete event with
        microsecond ``ts``/``dur`` relative to the recorder's epoch;
        span attributes ride in ``args``.  Thread ids are compacted to
        small consecutive ints and named via ``thread_name`` metadata
        events so the Perfetto track list stays readable.
        """
        pid = os.getpid()
        events: list[dict[str, Any]] = [{
            "ph": "M", "pid": pid, "tid": 0,
            "name": "process_name", "args": {"name": process_name},
        }]
        tids: dict[int, int] = {}
        for record in self.spans():
            tid = tids.get(record.thread_id)
            if tid is None:
                tid = len(tids)
                tids[record.thread_id] = tid
                events.append({
                    "ph": "M", "pid": pid, "tid": tid,
                    "name": "thread_name",
                    "args": {"name": f"thread-{tid}"},
                })
            events.append({
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "name": record.name,
                "ts": (record.start_ns - self._epoch_ns) / 1000.0,
                "dur": record.duration_ns / 1000.0,
                "args": {
                    key: _jsonable(value)
                    for key, value in record.attrs.items()
                },
            })
        payload: dict[str, Any] = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "recorded": self.recorded,
                "dropped": self.dropped,
                "capacity": self.capacity,
            },
        }
        if metadata:
            payload["otherData"].update(
                {str(k): _jsonable(v) for k, v in metadata.items()}
            )
        return payload

    def write_chrome_trace(
        self, path: str | os.PathLike[str],
        metadata: Mapping[str, Any] | None = None,
    ) -> str:
        """Write :meth:`to_chrome_trace` JSON to ``path``; returns it."""
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(metadata=metadata), handle)
        return str(path)

    # -- aggregation -----------------------------------------------------
    def totals(self) -> dict[str, tuple[int, float]]:
        """``{span name: (count, total milliseconds)}`` over held spans."""
        out: dict[str, tuple[int, float]] = {}
        for record in self.spans():
            count, total = out.get(record.name, (0, 0.0))
            out[record.name] = (count + 1, total + record.duration_ns / 1e6)
        return out

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(self.spans())


def _jsonable(value: Any) -> Any:
    """Coerce span attributes to JSON-safe scalars (never raises)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)
