"""Named counters / gauges / histograms with Prometheus text rendering.

One process-wide :func:`registry` aggregates every layer's numbers --
reward-cache hits, delta-analysis outcomes, artifact-store hit/miss,
queue depth, job latencies -- so surfaces like ``GET /metrics`` and
``/stats`` read a single source instead of threading fields by hand.
Isolated :class:`MetricsRegistry` instances exist for tests and for
scoped measurement.

Metric updates are observation only (plain numbers under a lock); they
can never change a search result, which is what lets the instrumented
paths keep the repo's bit-identity contract.

Rendering follows the Prometheus text exposition format 0.0.4::

    # TYPE repro_store_hits_total counter
    repro_store_hits_total 42
    # TYPE repro_job_seconds histogram
    repro_job_seconds_bucket{le="0.1"} 3
    ...
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left, insort
from typing import Iterable, Mapping, cast

#: Default histogram buckets (seconds-flavoured, Prometheus style).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
    2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

#: Cap on per-histogram retained samples for exact quantiles; beyond it
#: the oldest samples are evicted (recent-window percentiles).
_SAMPLE_WINDOW = 2048


def _label_str(labels: Mapping[str, str] | None) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def render(self) -> list[str]:
        return [f"{self.name} {_format(self._value)}"]


class Gauge:
    """A value that goes up and down (queue depth, busy workers)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def render(self) -> list[str]:
        return [f"{self.name} {_format(self._value)}"]


class Histogram:
    """Cumulative-bucket histogram plus a recent-sample window.

    The buckets feed the Prometheus exposition; the bounded sorted
    sample window gives exact p50/p99 over the most recent
    ``_SAMPLE_WINDOW`` observations -- the numbers ``/stats`` and
    ``repro top`` display.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.bounds = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError("need at least one bucket bound")
        self._bucket_counts = [0] * (len(self.bounds) + 1)  # +Inf last
        self._count = 0
        self._sum = 0.0
        self._sorted: list[float] = []
        self._window: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._bucket_counts[bisect_left(self.bounds, value)] += 1
            self._count += 1
            self._sum += value
            insort(self._sorted, value)
            self._window.append(value)
            if len(self._window) > _SAMPLE_WINDOW:
                oldest = self._window.pop(0)
                del self._sorted[bisect_left(self._sorted, oldest)]

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float | None:
        """Exact quantile over the recent window (``None`` when empty)."""
        with self._lock:
            if not self._sorted:
                return None
            if not 0.0 <= q <= 1.0:
                raise ValueError("quantile must be in [0, 1]")
            index = min(
                int(math.ceil(q * len(self._sorted))) - 1,
                len(self._sorted) - 1,
            )
            return self._sorted[max(index, 0)]

    def render(self) -> list[str]:
        lines = []
        cumulative = 0
        with self._lock:
            for bound, bucket in zip(self.bounds, self._bucket_counts):
                cumulative += bucket
                lines.append(
                    f"{self.name}_bucket"
                    f"{_label_str({'le': _format(bound)})} {cumulative}"
                )
            lines.append(
                f'{self.name}_bucket{{le="+Inf"}} {self._count}'
            )
            lines.append(f"{self.name}_sum {_format(self._sum)}")
            lines.append(f"{self.name}_count {self._count}")
        return lines


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """Name-keyed metric instances; idempotent get-or-create accessors."""

    def __init__(self, prefix: str = "") -> None:
        self.prefix = prefix
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get(
        self, name: str, factory: type, **kwargs: object
    ) -> Metric:
        name = self.prefix + name
        with self._lock:
            metric: Metric | None = self._metrics.get(name)
            if metric is None:
                metric = cast(Metric, factory(name, **kwargs))
                self._metrics[name] = metric
            elif not isinstance(metric, factory):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {factory.__name__}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._get(name, Counter, help=help)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._get(name, Gauge, help=help)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        metric = self._get(name, Histogram, help=help, buckets=buckets)
        assert isinstance(metric, Histogram)
        return metric

    # -- introspection ---------------------------------------------------
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(self.prefix + name)

    def value(self, name: str) -> float:
        """Counter/gauge value by name (0.0 when absent) -- the reader
        surfaces like ``/stats`` use this instead of hasattr dances."""
        metric = self._metrics.get(self.prefix + name)
        if isinstance(metric, (Counter, Gauge)):
            return metric.value
        return 0.0

    def to_dict(self) -> dict[str, object]:
        """JSON-able snapshot (counters/gauges as numbers, histograms as
        count/sum/p50/p99)."""
        out: dict[str, object] = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            if isinstance(metric, Histogram):
                out[metric.name] = {
                    "count": metric.count,
                    "sum": metric.sum,
                    "p50": metric.quantile(0.50),
                    "p99": metric.quantile(0.99),
                }
            else:
                out[metric.name] = metric.value
        return out

    def render_prometheus(self) -> str:
        """The full registry in Prometheus text exposition format."""
        lines: list[str] = []
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every metric (tests only; production metrics live for
        the process lifetime)."""
        with self._lock:
            self._metrics.clear()


def _format(value: float) -> str:
    """Prometheus number formatting: integers without a trailing .0."""
    if value == math.inf:
        return "+Inf"
    as_int = int(value)
    return str(as_int) if value == as_int else repr(value)


#: The process-wide registry every instrumented layer publishes into.
_GLOBAL = MetricsRegistry(prefix="repro_")


def registry() -> MetricsRegistry:
    """The process-wide default registry (prefix ``repro_``)."""
    return _GLOBAL
