"""Level-gated logging for the ``repro.*`` namespace.

Every module that used to ``print()`` diagnostics now carries a module
logger (``logging.getLogger(__name__)`` -- the gridworks exemplar's
idiom), all parented under the ``repro`` logger this module configures.
Nothing is emitted by default: the root ``repro`` logger gets a
:class:`logging.NullHandler` on import, so library users see silence
unless they -- or the CLI -- opt in.

Opt-ins:

* ``repro --verbose <cmd>`` / ``-vv``  -- INFO / DEBUG on ``repro``.
* ``REPRO_LOG=DEBUG``                  -- one level for the whole tree.
* ``REPRO_LOG=repro.serve=DEBUG,repro.mcts=INFO`` -- per-logger levels
  (names without a dot are prefixed with ``repro.``).
"""

from __future__ import annotations

import logging
import os
import sys
from typing import TextIO

#: The namespace root every repro module logger hangs under.
ROOT = "repro"

_FORMAT = "%(asctime)s %(levelname).1s %(name)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"

logging.getLogger(ROOT).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """Module logger under the ``repro`` namespace.

    Accepts a ``__name__`` (already ``repro.x.y``) or a bare suffix.
    """
    if not name.startswith(ROOT):
        name = f"{ROOT}.{name}"
    return logging.getLogger(name)


def parse_env_spec(spec: str) -> dict[str, int]:
    """``REPRO_LOG`` value -> ``{logger name: level}``.

    ``"DEBUG"`` applies to the root; ``"serve=DEBUG,mcts=INFO"`` sets
    per-subtree levels.  Unknown level names raise ``ValueError`` (a
    typo in the environment should be loud, not silently quiet).
    """
    levels: dict[str, int] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" in part:
            name, _, level_name = part.partition("=")
            name = name.strip()
            if not name.startswith(ROOT):
                name = f"{ROOT}.{name}"
        else:
            name, level_name = ROOT, part
        level = logging.getLevelName(level_name.strip().upper())
        if not isinstance(level, int):
            raise ValueError(
                f"REPRO_LOG: unknown level {level_name.strip()!r}"
            )
        levels[name] = level
    return levels


def configure_logging(
    verbose: int = 0,
    stream: TextIO | None = None,
    env: str | None = None,
) -> logging.Logger:
    """Attach one stream handler to the ``repro`` logger.

    ``verbose`` counts ``-v`` flags: 0 -> WARNING (quiet default),
    1 -> INFO, 2+ -> DEBUG.  ``REPRO_LOG`` (or the explicit ``env``
    argument) overrides the verbosity and may set per-subtree levels.
    Idempotent: repeat calls reconfigure the existing handler instead
    of stacking duplicates.
    """
    root = logging.getLogger(ROOT)
    spec = os.environ.get("REPRO_LOG", "") if env is None else env
    levels = parse_env_spec(spec) if spec else {}
    base_level = levels.pop(ROOT, None)
    if base_level is None:
        base_level = (
            logging.WARNING if verbose <= 0
            else logging.INFO if verbose == 1
            else logging.DEBUG
        )

    handler = None
    for existing in root.handlers:
        if getattr(existing, "_repro_cli", False):
            handler = existing
            break
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler._repro_cli = True  # type: ignore[attr-defined]
        handler.setFormatter(logging.Formatter(_FORMAT, _DATE_FORMAT))
        root.addHandler(handler)
    elif stream is not None:
        try:
            handler.setStream(stream)  # type: ignore[attr-defined]
        except ValueError:
            # setStream flushes the outgoing stream first; if that one
            # is already closed (a captured stderr from a finished test,
            # a redirected pipe), just swap without the flush.
            handler.stream = stream  # type: ignore[attr-defined]

    root.setLevel(base_level)
    for name, level in levels.items():
        logging.getLogger(name).setLevel(level)
    return root
