"""Unified observability layer: tracing spans, metrics, logging.

Three cooperating pieces, all default-off and all observation-only
(an instrumented run is bit-identical to a plain one):

* :mod:`repro.obs.trace` -- ContextVar-scoped span recording into a
  preallocated ring buffer, exportable as Chrome trace-event JSON that
  https://ui.perfetto.dev loads directly.  ``span("phase", **attrs)``
  costs one ContextVar read when no recorder is active.
* :mod:`repro.obs.metrics` -- named counters / gauges / histograms in a
  process-wide registry with Prometheus text rendering; the single
  source behind ``GET /metrics``, ``/stats`` and ``repro top``.
* :mod:`repro.obs.logs` -- the ``repro.*`` logging namespace: module
  loggers, quiet by default, enabled via ``--verbose`` / ``REPRO_LOG``.
"""

from .logs import configure_logging, get_logger, parse_env_spec
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
)
from .trace import (
    SpanRecord,
    TraceRecorder,
    current_recorder,
    instant,
    is_tracing,
    span,
    tracing,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "TraceRecorder",
    "configure_logging",
    "current_recorder",
    "get_logger",
    "instant",
    "is_tracing",
    "parse_env_spec",
    "registry",
    "span",
    "tracing",
]
