"""SynCircuit reproduction: synthetic RTL circuit generation.

The package implements the three-phase SynCircuit framework from
"SynCircuit: Automated Generation of New Synthetic RTL Circuits Can Enable
Big Data in Circuits" (DAC 2025) plus every substrate the paper's
evaluation depends on: a circuit IR with HDL bijection, a logic-synthesis
and static-timing substrate, baseline graph generators, structural and
downstream-ML evaluation metrics, and a 22-design benchmark corpus.
"""

__version__ = "0.1.0"

from .ir import CircuitGraph, GraphBuilder, NodeType  # noqa: F401
