"""SynCircuit reproduction: synthetic RTL circuit generation.

The package implements the three-phase SynCircuit framework from
"SynCircuit: Automated Generation of New Synthetic RTL Circuits Can Enable
Big Data in Circuits" (DAC 2025) plus every substrate the paper's
evaluation depends on: a circuit IR with HDL bijection, a logic-synthesis
and static-timing substrate, baseline graph generators, structural and
downstream-ML evaluation metrics, and a 22-design benchmark corpus.
"""

__version__ = "0.2.0"

from .ir import CircuitGraph, GraphBuilder, NodeType  # noqa: F401

_API_NAMES = {
    "ArtifactStore", "BenchRequest", "EvalRequest", "EvalResult", "GenerateRequest",
    "GenerateResult", "GenerationRecord", "LintRequest", "Session", "SynCircuit",
    "SynCircuitConfig", "SynthRequest", "SynthSummary", "list_presets",
    "resolve_preset",
}


def __getattr__(name: str):
    # Lazy re-export of the session API: `repro.Session` works without
    # paying the diffusion/mcts import cost for IR-only users.
    if name in _API_NAMES:
        from . import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
