"""Performance measurement subsystem: seeded microbenchmarks with a
machine-readable trajectory.

``repro bench --preset smoke`` (or ``Session.bench()``) runs the
standard suite over the stack's hot paths and writes ``BENCH_<suite>.json``
-- wall times, per-op throughput, scenario-config fingerprint and git
revision -- so every PR's perf impact is a diffable number instead of a
guess.  ``compare`` gates CI on the committed baseline.

    from repro.bench import run_suite, compare, BenchReport

    report = run_suite(preset="smoke")
    report.write("BENCH_smoke.json")
    regressions = compare(report, BenchReport.load("BENCH_smoke.json"))
"""

from .core import Benchmark, BenchRecord, run_benchmark
from .drift import DriftReport, FamilyDrift, measure_drift
from .report import (
    SCHEMA_VERSION,
    BenchReport,
    Regression,
    compare,
    git_revision,
    render_profile,
)
from .serve_suite import build_serve_benchmarks, run_serve_suite
from .suites import SIM_CYCLES, build_suite, run_suite

__all__ = [
    "SCHEMA_VERSION",
    "SIM_CYCLES",
    "BenchRecord",
    "BenchReport",
    "Benchmark",
    "DriftReport",
    "FamilyDrift",
    "Regression",
    "measure_drift",
    "build_serve_benchmarks",
    "build_suite",
    "compare",
    "run_serve_suite",
    "git_revision",
    "render_profile",
    "run_benchmark",
    "run_suite",
]
