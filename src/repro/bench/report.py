"""Machine-readable benchmark reports: ``BENCH_<suite>.json``.

The report is the repo's perf trajectory substrate: every run stamps the
git revision, a fingerprint of the exact scenario config, and the
library versions, so two reports are comparable iff their fingerprints
match and regressions can be attributed to a commit range.

``compare`` implements the CI gate: a benchmark regresses when its best
wall time grew by more than ``max_regression`` x against the committed
baseline.  Sub-``min_time`` benchmarks are exempt -- at that scale the
measurement is scheduler noise, not signal.
"""

from __future__ import annotations

import json
import pathlib
import platform
import subprocess
import time
from dataclasses import dataclass, field

import numpy as np

from .core import BenchRecord

#: Bump when a field changes meaning; additive changes keep the version.
SCHEMA_VERSION = 1


def git_revision() -> str:
    """Short hash of HEAD, or ``"unknown"`` outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return proc.stdout.strip() if proc.returncode == 0 else "unknown"


@dataclass
class BenchReport:
    """One suite run: environment stamp plus per-benchmark records."""

    suite: str
    preset: str | None
    config_fingerprint: str
    records: list[BenchRecord] = field(default_factory=list)
    git_rev: str = "unknown"
    created_unix: float = 0.0
    python_version: str = ""
    numpy_version: str = ""
    schema_version: int = SCHEMA_VERSION

    @classmethod
    def stamped(
        cls,
        suite: str,
        preset: str | None,
        config_fingerprint: str,
        records: list[BenchRecord],
    ) -> "BenchReport":
        """Build a report stamped with the current environment."""
        return cls(
            suite=suite,
            preset=preset,
            config_fingerprint=config_fingerprint,
            records=records,
            git_rev=git_revision(),
            created_unix=time.time(),
            python_version=platform.python_version(),
            numpy_version=np.__version__,
        )

    # -- JSON round-trip ------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "suite": self.suite,
            "preset": self.preset,
            "config_fingerprint": self.config_fingerprint,
            "git_rev": self.git_rev,
            "created_unix": self.created_unix,
            "python_version": self.python_version,
            "numpy_version": self.numpy_version,
            "benchmarks": [record.to_dict() for record in self.records],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchReport":
        return cls(
            suite=str(data["suite"]),
            preset=data.get("preset"),
            config_fingerprint=str(data.get("config_fingerprint", "")),
            records=[
                BenchRecord.from_dict(row) for row in data.get("benchmarks", [])
            ],
            git_rev=str(data.get("git_rev", "unknown")),
            created_unix=float(data.get("created_unix", 0.0)),
            python_version=str(data.get("python_version", "")),
            numpy_version=str(data.get("numpy_version", "")),
            schema_version=int(data.get("schema_version", SCHEMA_VERSION)),
        )

    def write(self, path: str | pathlib.Path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "BenchReport":
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))

    # -- rendering -------------------------------------------------------
    def render(self) -> str:
        """Fixed-width table for terminals and CI logs."""
        header = (
            f"{'benchmark':<28s}{'best':>10s}{'mean':>10s}"
            f"{'ops':>10s}{'ops/s':>12s}"
        )
        lines = [header, "-" * len(header)]
        for record in self.records:
            lines.append(
                f"{record.name:<28s}"
                f"{record.wall_best * 1e3:>8.2f}ms"
                f"{record.wall_mean * 1e3:>8.2f}ms"
                f"{record.ops:>10d}"
                f"{record.ops_per_s:>12.0f}"
            )
        return "\n".join(lines)


def render_profile(
    current: BenchReport, baseline: BenchReport | None
) -> str:
    """Hot-loop profile table: per-op cost and drift vs a baseline.

    This is the ``repro bench --profile`` view -- the per-candidate /
    per-simulation numbers the ROADMAP tracks, compared against the
    committed ``BENCH_<suite>.json`` so a hot-loop regression is visible
    in the terminal without opening the JSON.
    """
    baseline_by_name = (
        {record.name: record for record in baseline.records}
        if baseline is not None else {}
    )
    header = (
        f"{'benchmark':<28s}{'best':>10s}{'per-op':>12s}"
        f"{'baseline':>10s}{'delta':>8s}"
    )
    lines = [header, "-" * len(header)]
    for record in current.records:
        per_op = (
            f"{record.wall_best * 1e3 / record.ops:>10.3f}ms"
            if record.ops else f"{'-':>12s}"
        )
        base = baseline_by_name.get(record.name)
        if base is not None and base.wall_best > 0:
            delta = record.wall_best / base.wall_best - 1.0
            base_col = f"{base.wall_best * 1e3:>8.2f}ms"
            delta_col = f"{delta:>+8.0%}"
        else:
            base_col = f"{'-':>10s}"
            delta_col = f"{'-':>8s}"
        lines.append(
            f"{record.name:<28s}{record.wall_best * 1e3:>8.2f}ms"
            f"{per_op}{base_col}{delta_col}"
        )
    if baseline is not None:
        lines.append(
            f"(baseline rev {baseline.git_rev}, "
            f"config {baseline.config_fingerprint[:12]})"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class Regression:
    """One benchmark that got slower than the gate allows."""

    name: str
    current: float
    baseline: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline > 0 else float("inf")

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.current * 1e3:.2f}ms vs baseline "
            f"{self.baseline * 1e3:.2f}ms ({self.ratio:.2f}x)"
        )


def compare(
    current: BenchReport,
    baseline: BenchReport,
    max_regression: float = 2.0,
    min_time: float = 0.005,
) -> list[Regression]:
    """Benchmarks in ``current`` that regressed past the gate.

    Benchmarks present on only one side are ignored (adding or retiring
    a benchmark is not a regression).  Pairs where *both* sides are under
    ``min_time`` seconds are skipped as noise.
    """
    baseline_by_name = {record.name: record for record in baseline.records}
    regressions = []
    for record in current.records:
        base = baseline_by_name.get(record.name)
        if base is None:
            continue
        if record.wall_best < min_time and base.wall_best < min_time:
            continue
        if record.wall_best > base.wall_best * max_regression:
            regressions.append(
                Regression(
                    name=record.name,
                    current=record.wall_best,
                    baseline=base.wall_best,
                )
            )
    return regressions
