"""Exact-vs-fast differential harness: the fast tier's quality gate.

The ``fast`` tier (:mod:`repro.tiers`) buys throughput by relaxing the
byte-stability contract -- fused cross-graph GEMMs, a coarser reverse
schedule, estimate-driven acceptance, cone triage.  None of that is
*assumed* safe: this module measures what it actually does to the
generated population.  :func:`measure_drift` runs the same generation
request under both tiers and compares the per-family mean post-synthesis
SCPR and area; tier-1 (``tests/test_tiers.py``) asserts the relative
drift stays inside :data:`repro.tiers.FAST_SCPR_TOLERANCE` /
:data:`repro.tiers.FAST_AREA_TOLERANCE`.

A "family" here is one batch composition -- a node count (or range) plus
a seed -- i.e. one population the generator was asked for.  Comparing
family *means* rather than item pairs is deliberate: fast-tier items are
not bit-matched to exact-tier items (the whole point of the tier), so
the contract is distributional, exactly like the paper's Table II
protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..tiers import (
    EXACT_TIER,
    FAST_AREA_TOLERANCE,
    FAST_SCPR_TOLERANCE,
    FAST_TIER,
)


@dataclass
class FamilyDrift:
    """Exact-vs-fast population statistics of one request family."""

    name: str
    count: int
    exact_scpr: float
    fast_scpr: float
    exact_area: float
    fast_area: float
    #: Wall-clock of the two generation runs (diagnostic only -- bench
    #: timing belongs to :mod:`repro.bench.suites`).
    exact_seconds: float = 0.0
    fast_seconds: float = 0.0

    @property
    def scpr_drift(self) -> float:
        """Relative drift of the family-mean SCPR (fast vs exact)."""
        return _relative(self.fast_scpr, self.exact_scpr)

    @property
    def area_drift(self) -> float:
        """Relative drift of the family-mean post-synthesis area."""
        return _relative(self.fast_area, self.exact_area)

    def to_dict(self) -> dict:
        data = self.__dict__.copy()
        data["scpr_drift"] = self.scpr_drift
        data["area_drift"] = self.area_drift
        return data


@dataclass
class DriftReport:
    """All family drifts of one differential run, plus the gate."""

    families: list[FamilyDrift] = field(default_factory=list)
    scpr_tolerance: float = FAST_SCPR_TOLERANCE
    area_tolerance: float = FAST_AREA_TOLERANCE

    def within_tolerance(self) -> bool:
        """Whether every family sits inside the published gate."""
        return not self.violations()

    def violations(self) -> list[str]:
        """Human-readable gate violations (empty = gate passes)."""
        found = []
        for family in self.families:
            if family.scpr_drift > self.scpr_tolerance:
                found.append(
                    f"{family.name}: SCPR drift {family.scpr_drift:.3f} "
                    f"> {self.scpr_tolerance}"
                )
            if family.area_drift > self.area_tolerance:
                found.append(
                    f"{family.name}: area drift {family.area_drift:.3f} "
                    f"> {self.area_tolerance}"
                )
        return found

    def to_dict(self) -> dict:
        return {
            "families": [family.to_dict() for family in self.families],
            "scpr_tolerance": self.scpr_tolerance,
            "area_tolerance": self.area_tolerance,
            "within_tolerance": self.within_tolerance(),
        }


def _relative(fast: float, exact: float) -> float:
    """|fast - exact| / |exact| with a zero-safe denominator."""
    scale = max(abs(exact), 1e-12)
    return abs(fast - exact) / scale


def measure_drift(
    session,
    families,
    clock_period: float = 1.0,
    scpr_tolerance: float = FAST_SCPR_TOLERANCE,
    area_tolerance: float = FAST_AREA_TOLERANCE,
) -> DriftReport:
    """Run each family at both tiers and report the population drift.

    ``session`` is a fitted :class:`repro.api.Session`; ``families`` is
    a list of :class:`repro.api.GenerateRequest` -- each one family.
    Any ``tier`` already set on a family request is ignored: the whole
    point is running the *same* request twice with only the tier
    swapped.  Synthesis of the generated graphs goes through
    ``session.synth`` (store-memoized when the session caches).
    """
    import time

    report = DriftReport(
        scpr_tolerance=scpr_tolerance, area_tolerance=area_tolerance
    )
    for request in families:
        stats: dict[str, tuple[float, float, float]] = {}
        for tier in (EXACT_TIER, FAST_TIER):
            run = replace(request, tier=tier)
            begin = time.perf_counter()
            result = session.generate(run)
            elapsed = time.perf_counter() - begin
            summaries = [
                session.synth(graph, clock_period=clock_period)
                for graph in result.graphs
            ]
            n = max(len(summaries), 1)
            stats[tier] = (
                sum(s.scpr for s in summaries) / n,
                sum(s.area for s in summaries) / n,
                elapsed,
            )
        exact_scpr, exact_area, exact_seconds = stats[EXACT_TIER]
        fast_scpr, fast_area, fast_seconds = stats[FAST_TIER]
        report.families.append(FamilyDrift(
            name=f"nodes{request.nodes}_seed{request.seed}",
            count=request.count,
            exact_scpr=exact_scpr,
            fast_scpr=fast_scpr,
            exact_area=exact_area,
            fast_area=fast_area,
            exact_seconds=exact_seconds,
            fast_seconds=fast_seconds,
        ))
    return report
