"""The standard microbenchmark suite: every hot path the ROADMAP cares
about, scaled by a scenario preset.

Workloads are fixed and seeded -- two runs of the same suite on the same
revision measure the same computation -- and setup (model training,
elaboration, stimulus packing) is excluded from timing.  The suite
deliberately spans the whole stack:

* ``simulate.*``       -- netlist simulation backends, largest corpus design
* ``cone.batch_eval``  -- batched packed-stimulus cone evaluation
* ``incr.apply_edit``  -- delta re-elaboration + incremental timing
* ``incr.batch_queue`` -- CandidateQueue: delta netlists through the
  packed simulator with one shared stimulus
* ``incr.analyze_delta`` -- dirty-cone redundancy analysis over a swap
  chain (the delta-mode fixpoint the incremental reward runs per
  candidate)
* ``mcts.optimize``    -- the Phase 3 search loop (preset reward path)
* ``mcts.optimize_incremental`` -- the same loop with the incremental
  reward engine explicitly enabled (pinned even if presets change)
* ``lint.graph``       -- the graph-scope diagnostic rules over the corpus
* ``sanitize.overhead`` -- the incremental search with the runtime
  invariant auditor on (vs ``mcts.optimize_incremental`` = its cost)
* ``obs.overhead``     -- the same search with an active trace recorder
  (vs ``mcts.optimize`` = the cost of *enabled* tracing; default-off
  span sites ride inside every other benchmark already)
* ``diffusion.sample`` -- Phase 1 reverse denoising
* ``diffusion.sample_batch`` -- several samples through shared denoiser
  forwards (the ``generate_batch`` phase-1 path)
* ``diffusion.fused_gemm`` -- a heterogeneous batch through the fast
  tier's fused cross-graph GEMMs (one tall matmul per layer per step)
* ``mcts.cross_circuit_queue`` -- candidate cones from *different*
  circuits evaluated through one shared packed-stimulus pool (the fast
  tier's cross-circuit batching)
* ``metrics.structural`` -- Table II structural-similarity metrics
* ``e2e.generate``     -- one full Session.generate (all three phases)
* ``e2e.generate_batch`` -- a batch-8 mixed-size generation in the
  ``exact`` tier (the throughput reference workload)
* ``e2e.generate_fast`` -- the identical workload in the ``fast`` tier;
  its ``speedup_vs_exact`` meta is the throughput-mode headline number
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .core import Benchmark, run_benchmark
from .report import BenchReport

#: Stimulus length for the simulation benchmarks (one packed word block).
SIM_CYCLES = 64


def _largest_design():
    """The corpus design with the most elaborated gates (the acceptance
    criterion's "largest bench design")."""
    from ..bench_designs import SPECS, load_design
    from ..synth import elaborate

    best_name, best_netlist = None, None
    for spec in SPECS:
        netlist = elaborate(load_design(spec.name), check=False)
        if best_netlist is None or netlist.num_gates > best_netlist.num_gates:
            best_name, best_netlist = spec.name, netlist
    return best_name, best_netlist


def _sim_workload():
    name, netlist = _largest_design()
    rng = np.random.default_rng(0)
    nets = [net for _, net in netlist.primary_inputs]
    stimulus = [
        {net: bool(rng.integers(0, 2)) for net in nets}
        for _ in range(SIM_CYCLES)
    ]
    return name, netlist, stimulus


def _swap_candidates(graph, register, rng, count):
    """A chain of valid swap successors of ``graph`` around one cone."""
    from ..mcts import apply_swap, driving_cone, sample_swaps

    cone = driving_cone(graph, register)
    anchor = [cone.register, *cone.interior]
    candidates = [graph]
    state = graph
    attempts = 0
    while len(candidates) < count and attempts < count * 20:
        attempts += 1
        swaps = sample_swaps(state, anchor, rng, 1)
        if not swaps:
            break
        successor = apply_swap(state, swaps[0])
        if successor is not None:
            state = successor
            candidates.append(state)
    return candidates


def build_suite(config, seed: int = 0) -> list[Benchmark]:
    """Instantiate the standard suite for one resolved scenario config."""
    from ..bench_designs import load_corpus, load_design, reference_designs
    from ..mcts import ConeBatchEvaluator, optimize_registers
    from ..synth.simulate import BitParallelSimulator, simulate

    trained_cache: dict[str, object] = {}

    def training_graphs():
        graphs = sorted(load_corpus(), key=lambda g: g.num_nodes)[:6]
        return graphs

    def trained_diffusion():
        if "model" not in trained_cache:
            from ..diffusion import train_diffusion

            trained_cache["model"] = train_diffusion(
                training_graphs(), config.diffusion
            )
        return trained_cache["model"]

    # -- simulation ------------------------------------------------------
    def sim_setup():
        return _sim_workload()

    def sim_scalar(state):
        _, netlist, stimulus = state
        simulate(netlist, stimulus, backend="scalar")
        return netlist.num_gates * len(stimulus)

    def sim_bitparallel(state):
        _, netlist, stimulus = state
        simulate(netlist, stimulus, backend="bitparallel")
        return netlist.num_gates * len(stimulus)

    def sim_steady_setup():
        name, netlist, stimulus = _sim_workload()
        return netlist, BitParallelSimulator(netlist), stimulus

    def sim_steady(state):
        netlist, simulator, stimulus = state
        simulator.run(stimulus)
        return netlist.num_gates * len(stimulus)

    # -- batched cone evaluation ----------------------------------------
    def cone_setup():
        graph = load_design("alu")
        register = graph.registers()[0]
        rng = np.random.default_rng(seed)
        candidates = _swap_candidates(graph, register, rng, 24)
        # The evaluator (and therefore its packed stimulus words) lives
        # in setup: the measured path is batched evaluation only.
        evaluator = ConeBatchEvaluator(num_cycles=SIM_CYCLES, seed=seed)
        return evaluator, register, candidates

    def cone_run(state):
        evaluator, register, candidates = state
        evaluator.evaluate(candidates, register)
        return len(candidates)

    # -- incremental synthesis engine -----------------------------------
    def incr_setup():
        from ..incr import DeltaNetlist, IncrementalTiming

        graph = load_design("alu")
        register = graph.registers()[0]
        rng = np.random.default_rng(seed)
        candidates = _swap_candidates(graph, register, rng, 24)[1:]
        base = DeltaNetlist.from_graph(graph, check=False)
        timing = IncrementalTiming(base, clock_period=2.0)
        return base, timing, candidates

    def incr_run(state):
        base, timing, candidates = state
        for candidate in candidates:
            delta = base.apply_edit(candidate)
            delta.total_area()
            timing.update(delta)
        return len(candidates)

    def queue_setup():
        from ..incr import CandidateQueue

        graph = load_design("alu")
        register = graph.registers()[0]
        rng = np.random.default_rng(seed)
        candidates = _swap_candidates(graph, register, rng, 24)
        queue = CandidateQueue(
            graph, num_cycles=SIM_CYCLES, seed=seed, clock_period=2.0
        )
        return queue, candidates

    def queue_run(state):
        queue, candidates = state
        for candidate in candidates:
            queue.submit(candidate)
        queue.flush()
        return len(candidates)

    def analyze_delta_setup():
        from ..incr.analysis import RedundancyAnalyzer

        graph = load_design("alu")
        register = graph.registers()[0]
        rng = np.random.default_rng(seed)
        candidates = _swap_candidates(graph, register, rng, 24)[1:]
        analyzer = RedundancyAnalyzer(graph)
        analyzer.capture_baseline(graph, analyzer.full_analyze(graph))
        # Touched sets are precomputed in setup like the search computes
        # them from edit provenance: the measured path is the fixpoint.
        touched = [c.structural_delta(graph) for c in candidates]
        return analyzer, candidates, touched

    def analyze_delta_run(state):
        analyzer, candidates, touched = state
        for candidate, dirty in zip(candidates, touched):
            analyzer.analyze(candidate, touched=dirty)
        return len(candidates)

    # -- MCTS ------------------------------------------------------------
    def mcts_setup():
        return load_design("uart_tx")

    mcts_meta = {
        "design": "uart_tx",
        "num_simulations": config.mcts.num_simulations,
        "incremental": config.mcts.incremental,
    }

    def mcts_run(graph):
        report = optimize_registers(graph, config=config.mcts)
        # Stamp the search result's structural identity on the record:
        # a perf win that moves this sha is an algorithm change, not an
        # optimization, and the CI compare can see the difference.  The
        # search is deterministic across repeats, so stamp once -- the
        # hash stays out of the steady-state repeats the best-of timing
        # reports.
        if "result_sha" not in mcts_meta:
            import hashlib

            from ..mcts.reward import structural_fingerprint

            mcts_meta["result_sha"] = hashlib.sha256(
                repr(structural_fingerprint(report.graph).key).encode()
            ).hexdigest()[:16]
        return max(report.total_simulations, 1)

    def mcts_incr_setup():
        import dataclasses

        return (
            load_design("uart_tx"),
            dataclasses.replace(config.mcts, incremental=True),
        )

    def mcts_incr_run(state):
        graph, mcts_config = state
        report = optimize_registers(graph, config=mcts_config)
        return max(report.total_simulations, 1)

    # -- lint / sanitizer ------------------------------------------------
    def lint_setup():
        from ..lint import rules_for

        graphs = load_corpus()
        # Priming rules_for in setup keeps one-time rule-module imports
        # (incl. the lazy redundancy analysis of L008) out of the timing.
        rules_for("graph")
        return graphs

    def lint_run(graphs):
        from ..lint import lint_graph

        for graph in graphs:
            lint_graph(graph)
        return len(graphs)

    def sanitize_setup():
        import dataclasses

        return (
            load_design("uart_tx"),
            dataclasses.replace(
                config.mcts, incremental=True, sanitize=True
            ),
        )

    def sanitize_run(state):
        graph, mcts_config = state
        report = optimize_registers(graph, config=mcts_config)
        return max(report.sanitize_checks, 1)

    def obs_setup():
        from ..obs import TraceRecorder

        return load_design("uart_tx"), TraceRecorder()

    obs_meta = {
        "design": "uart_tx",
        "num_simulations": config.mcts.num_simulations,
        "traced": True,
    }

    def obs_run(state):
        from ..obs import tracing

        graph, recorder = state
        recorder.clear()
        with tracing(recorder):
            report = optimize_registers(graph, config=config.mcts)
        # Span volume of one traced search (stable across repeats).
        obs_meta.setdefault("spans", recorder.recorded)
        return max(report.total_simulations, 1)

    # -- diffusion sampling ---------------------------------------------
    def diffusion_setup():
        return trained_diffusion()

    def diffusion_run(trained):
        from ..diffusion import sample_initial_graph

        rng = np.random.default_rng(seed)
        sample_initial_graph(trained, 48, rng=rng)
        return None

    def diffusion_batch_run(trained):
        from ..diffusion import sample_batch

        rngs = [
            np.random.default_rng(child)
            for child in np.random.SeedSequence(seed).spawn(4)
        ]
        sample_batch(trained, [48, 48, 48, 48], rngs)
        return 4

    # Heterogeneous sizes on purpose: the exact tier degrades to solo
    # size-groups on this workload, the fast tier fuses all eight items
    # into one tall GEMM per layer per step.
    fused_sizes = [42, 44, 46, 48, 50, 52, 54, 56]

    def diffusion_fused_run(trained):
        from ..diffusion import sample_batch
        from ..tiers import FAST_TIER

        rngs = [
            np.random.default_rng(child)
            for child in np.random.SeedSequence(seed).spawn(len(fused_sizes))
        ]
        sample_batch(trained, list(fused_sizes), rngs, tier=FAST_TIER)
        return len(fused_sizes)

    # -- cross-circuit candidate batching --------------------------------
    def crossq_setup():
        from ..mcts.crossq import CrossCircuitQueue

        items = []
        for key, name in enumerate(("alu", "uart_tx")):
            graph = load_design(name)
            register = graph.registers()[0]
            rng = np.random.default_rng(seed + key)
            for candidate in _swap_candidates(graph, register, rng, 12):
                items.append((key, candidate, register))
        # The queue (and so its shared stimulus pool) lives in setup,
        # mirroring cone.batch_eval: the measured path is evaluation.
        queue = CrossCircuitQueue(num_cycles=SIM_CYCLES, seed=seed)
        return queue, items

    def crossq_run(state):
        queue, items = state
        queue.evaluate(items)
        return len(items)

    # -- structural metrics ---------------------------------------------
    def metrics_setup():
        reference = reference_designs()["core_like"]
        graphs = sorted(load_corpus(), key=lambda g: g.num_nodes)[:4]
        return reference, graphs

    def metrics_run(state):
        from ..metrics import structural_similarity

        reference, graphs = state
        structural_similarity(reference, graphs)
        return len(graphs)

    # -- end-to-end generation ------------------------------------------
    def e2e_setup():
        from ..api import Session

        session = Session(config=config, use_cache=False)
        trained = trained_diffusion() if config.use_diffusion else None
        session.engine.fit(training_graphs(), trained=trained)
        return session

    def e2e_run(session):
        from ..api import GenerateRequest

        session.generate(
            GenerateRequest(count=1, nodes=44, optimize=True, seed=seed)
        )
        return None

    # The two-tier throughput workload: one batch-8 mixed-size request,
    # run once per tier.  The family (nodes 68-84, seed 7) is one the
    # drift gate in tests/test_tiers.py pins, so the speedup and the
    # quality bound are measured on the same workload.  The seed is
    # deliberately not the suite seed: the family is curated.
    def _e2e_batch(session, tier):
        from ..api import GenerateRequest

        session.generate(
            GenerateRequest(
                count=8, nodes=(68, 84), optimize=True, seed=7, tier=tier
            )
        )
        return 8

    def e2e_batch_exact_run(session):
        return _e2e_batch(session, "exact")

    def e2e_batch_fast_run(session):
        return _e2e_batch(session, "fast")

    benchmarks = [
        Benchmark("simulate.scalar", sim_setup, sim_scalar,
                  meta={"cycles": SIM_CYCLES}),
        Benchmark("simulate.bitparallel", sim_setup, sim_bitparallel,
                  meta={"cycles": SIM_CYCLES}),
        Benchmark("simulate.bitparallel_steady", sim_steady_setup, sim_steady,
                  meta={"cycles": SIM_CYCLES, "note": "compile excluded"}),
        Benchmark("cone.batch_eval", cone_setup, cone_run,
                  meta={"cycles": SIM_CYCLES}),
        Benchmark("incr.apply_edit", incr_setup, incr_run,
                  meta={"design": "alu",
                        "note": "delta re-elaboration + incremental STA"}),
        Benchmark("incr.batch_queue", queue_setup, queue_run,
                  meta={"design": "alu", "cycles": SIM_CYCLES}),
        Benchmark("incr.analyze_delta", analyze_delta_setup,
                  analyze_delta_run,
                  meta={"design": "alu",
                        "note": "dirty-cone fixpoint vs captured baseline"}),
        Benchmark("mcts.optimize", mcts_setup, mcts_run, meta=mcts_meta),
        Benchmark("mcts.optimize_incremental", mcts_incr_setup, mcts_incr_run,
                  meta={"design": "uart_tx",
                        "num_simulations": config.mcts.num_simulations,
                        "incremental": True}),
        Benchmark("lint.graph", lint_setup, lint_run,
                  meta={"note": "graph-scope rules over the whole corpus"}),
        Benchmark("sanitize.overhead", sanitize_setup, sanitize_run,
                  meta={"design": "uart_tx",
                        "num_simulations": config.mcts.num_simulations,
                        "incremental": True, "sanitize": True}),
        Benchmark("obs.overhead", obs_setup, obs_run, meta=obs_meta),
        Benchmark("mcts.cross_circuit_queue", crossq_setup, crossq_run,
                  meta={"designs": ["alu", "uart_tx"], "cycles": SIM_CYCLES,
                        "note": "one shared packed-stimulus pool across "
                                "circuits"}),
        Benchmark("metrics.structural", metrics_setup, metrics_run),
        Benchmark("e2e.generate", e2e_setup, e2e_run, repeats=2,
                  meta={"nodes": 44, "optimize": True}),
        Benchmark("e2e.generate_batch", e2e_setup, e2e_batch_exact_run,
                  repeats=3,
                  meta={"nodes": [68, 84], "count": 8, "seed": 7,
                        "optimize": True, "tier": "exact"}),
        Benchmark("e2e.generate_fast", e2e_setup, e2e_batch_fast_run,
                  repeats=3,
                  meta={"nodes": [68, 84], "count": 8, "seed": 7,
                        "optimize": True, "tier": "fast"}),
    ]
    if config.use_diffusion:
        benchmarks.insert(
            10,
            Benchmark("diffusion.sample", diffusion_setup, diffusion_run,
                      meta={"nodes": 48,
                            "epochs": config.diffusion.epochs}),
        )
        benchmarks.insert(
            11,
            Benchmark("diffusion.sample_batch", diffusion_setup,
                      diffusion_batch_run,
                      meta={"nodes": 48, "batch": 4,
                            "epochs": config.diffusion.epochs,
                            "note": "shared denoiser forwards"}),
        )
        benchmarks.insert(
            12,
            Benchmark("diffusion.fused_gemm", diffusion_setup,
                      diffusion_fused_run,
                      meta={"nodes": list(fused_sizes),
                            "batch": len(fused_sizes),
                            "epochs": config.diffusion.epochs,
                            "tier": "fast",
                            "note": "fused cross-graph GEMMs, "
                                    "heterogeneous sizes"}),
        )
    return benchmarks


def run_suite(
    preset: str = "smoke",
    *,
    config=None,
    suite: str | None = None,
    seed: int = 0,
    repeats: int = 3,
    warmup: int = 1,
    filter_pattern: str | None = None,
    progress: Callable[[str], None] | None = None,
) -> BenchReport:
    """Run the standard suite and return a stamped :class:`BenchReport`.

    ``config`` overrides the preset with an explicit scenario config;
    ``filter_pattern`` keeps only benchmarks whose name contains the
    substring.  The report's ``simulate.bitparallel`` record is annotated
    with ``speedup_vs_scalar`` when both simulation benchmarks ran.
    """
    from ..api.presets import resolve_preset
    from ..api.store import fingerprint

    preset_name: str | None = preset
    if config is None:
        config = resolve_preset(preset, seed=seed)
    else:
        preset_name = suite
    benchmarks = build_suite(config, seed=seed)
    if filter_pattern:
        benchmarks = [b for b in benchmarks if filter_pattern in b.name]

    records = []
    for benchmark in benchmarks:
        if progress is not None:
            progress(f"[bench] {benchmark.name} ...")
        records.append(run_benchmark(benchmark, repeats=repeats, warmup=warmup))

    by_name = {record.name: record for record in records}
    scalar = by_name.get("simulate.scalar")
    packed = by_name.get("simulate.bitparallel")
    if scalar and packed and packed.wall_best > 0:
        packed.meta["speedup_vs_scalar"] = round(
            scalar.wall_best / packed.wall_best, 2
        )
    # Per-candidate cost of the batched evaluation kernels: the number
    # the CI bench-smoke job gates (compile/patch time must stay flat
    # per candidate, whatever the batch size of the run).
    for name in (
        "incr.batch_queue", "cone.batch_eval", "mcts.cross_circuit_queue"
    ):
        record = by_name.get(name)
        if record and record.ops:
            record.meta["ms_per_candidate"] = round(
                record.wall_best * 1000.0 / record.ops, 4
            )
    sanitized = by_name.get("sanitize.overhead")
    plain = by_name.get("mcts.optimize_incremental")
    if sanitized and plain and plain.wall_best > 0:
        # The auditing cost factor: sanitized vs unsanitized search on
        # the identical workload (same design, budget, reward path).
        sanitized.meta["overhead_vs_unsanitized"] = round(
            sanitized.wall_best / plain.wall_best, 2
        )
    traced = by_name.get("obs.overhead")
    untraced = by_name.get("mcts.optimize")
    if traced and untraced and untraced.wall_best > 0:
        # Cost of *active* tracing on the identical search workload; the
        # default-off cost is covered by mcts.optimize itself (every
        # span site is compiled in and gated against the committed
        # baseline).
        traced.meta["overhead_vs_untraced"] = round(
            traced.wall_best / untraced.wall_best, 2
        )
    for name in (
        "diffusion.sample_batch", "diffusion.fused_gemm",
        "e2e.generate_batch", "e2e.generate_fast",
    ):
        record = by_name.get(name)
        if record and record.ops:
            record.meta["ms_per_graph"] = round(
                record.wall_best * 1000.0 / record.ops, 4
            )
    exact_batch = by_name.get("e2e.generate_batch")
    fast_batch = by_name.get("e2e.generate_fast")
    if exact_batch and fast_batch and fast_batch.wall_best > 0:
        # The throughput-mode headline: identical batch-8 workload, fast
        # tier vs exact tier (quality drift on this same family is
        # bounded separately by the tier-1 drift gate).
        fast_batch.meta["speedup_vs_exact"] = round(
            exact_batch.wall_best / fast_batch.wall_best, 2
        )

    return BenchReport.stamped(
        suite=suite or preset_name or "custom",
        preset=preset_name,
        config_fingerprint=fingerprint(config.to_dict()),
        records=records,
    )
