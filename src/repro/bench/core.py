"""Timed, seeded microbenchmark harness.

A :class:`Benchmark` is a named (setup, run) pair; ``setup`` builds the
workload once (models trained, netlists elaborated, stimuli drawn) and is
excluded from timing, ``run`` is the measured hot path.  Measurement is
``warmup`` untimed calls followed by ``repeats`` timed calls; the *best*
wall time is the headline number (minimum over repeats is the standard
low-noise estimator for CPU microbenchmarks), mean and standard deviation
are kept for noise inspection.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable


@dataclass
class Benchmark:
    """One microbenchmark: an isolated, seeded, repeatable hot path.

    ``ops`` is the number of logical operations one ``run`` call performs
    (gate-cycles simulated, candidates evaluated, circuits generated);
    it turns wall time into a throughput that stays comparable when the
    workload is re-scaled.  When the op count is only known after running
    (e.g. search budgets), ``run`` may return an ``int`` which overrides
    ``ops``.
    """

    name: str
    setup: Callable[[], object]
    run: Callable[[object], object]
    ops: int = 1
    repeats: int | None = None  # override the suite-wide repeat count
    meta: dict = field(default_factory=dict)


@dataclass
class BenchRecord:
    """Measured result of one benchmark (the JSON schema's inner row)."""

    name: str
    repeats: int
    ops: int
    wall_best: float
    wall_mean: float
    wall_std: float
    meta: dict = field(default_factory=dict)

    @property
    def ops_per_s(self) -> float:
        return self.ops / self.wall_best if self.wall_best > 0 else math.inf

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "repeats": self.repeats,
            "ops": self.ops,
            "wall_best": self.wall_best,
            "wall_mean": self.wall_mean,
            "wall_std": self.wall_std,
            "ops_per_s": self.ops_per_s,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchRecord":
        return cls(
            name=str(data["name"]),
            repeats=int(data["repeats"]),
            ops=int(data["ops"]),
            wall_best=float(data["wall_best"]),
            wall_mean=float(data["wall_mean"]),
            wall_std=float(data["wall_std"]),
            meta=dict(data.get("meta", {})),
        )


def run_benchmark(
    benchmark: Benchmark,
    repeats: int = 3,
    warmup: int = 1,
) -> BenchRecord:
    """Execute one benchmark and return its measured record."""
    repeats = benchmark.repeats or repeats
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    state = benchmark.setup()
    ops = benchmark.ops
    for _ in range(warmup):
        result = benchmark.run(state)
        if isinstance(result, int):
            ops = result
    walls = []
    for _ in range(repeats):
        started = time.perf_counter()
        result = benchmark.run(state)
        walls.append(time.perf_counter() - started)
        if isinstance(result, int):
            ops = result
    mean = sum(walls) / len(walls)
    variance = sum((w - mean) ** 2 for w in walls) / len(walls)
    return BenchRecord(
        name=benchmark.name,
        repeats=repeats,
        ops=ops,
        wall_best=min(walls),
        wall_mean=mean,
        wall_std=math.sqrt(variance),
        meta=dict(benchmark.meta),
    )
