"""Service-layer benchmark suite: requests/s and tail latency.

``run_serve_suite`` boots a real :class:`~repro.serve.ReproServer`
(multi-process workers, persistent queue in a throwaway directory) and
measures the three paths a deployment cares about through the actual
HTTP client:

* ``serve.submit_roundtrip`` -- submit -> worker -> result, dedup off,
  so every request runs the full generation pipeline.
* ``serve.dedup_hit``        -- the identical request re-submitted with
  dedup on: answered from the artifact cache, zero worker dispatch.
* ``serve.queue_persist``    -- the on-disk job ledger alone (atomic
  submit writes plus a restart ``load()`` replay), no server.

Latency percentiles (p50/p99 over the per-request samples of the last
timed run) land in each record's ``meta`` next to ``requests_per_s``,
so ``BENCH_serve.json`` rides the same ``compare()`` regression gate as
the smoke suite.
"""

from __future__ import annotations

import tempfile
import time
from typing import Callable

from .core import Benchmark, run_benchmark
from .report import BenchReport

#: Requests per timed run of each latency benchmark.
ROUNDTRIP_REQUESTS = 4
DEDUP_REQUESTS = 16
QUEUE_JOBS = 50


def _percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (small-sample honest: p99 of 4 = max)."""
    ordered = sorted(samples)
    rank = min(int(round(q / 100.0 * (len(ordered) - 1))), len(ordered) - 1)
    return ordered[rank]


def _stamp_latencies(meta: dict, samples: list[float]) -> None:
    meta["p50_ms"] = round(_percentile(samples, 50) * 1000.0, 3)
    meta["p99_ms"] = round(_percentile(samples, 99) * 1000.0, 3)
    meta["requests_per_s"] = round(len(samples) / sum(samples), 2)


def build_serve_benchmarks(client, seed: int = 0) -> list[Benchmark]:
    """The two live-server benchmarks against an already-booted client."""
    from ..api import GenerateRequest

    roundtrip_meta: dict = {"requests": ROUNDTRIP_REQUESTS, "dedupe": False}
    dedup_meta: dict = {"requests": DEDUP_REQUESTS, "dedupe": True}

    def roundtrip_setup():
        # One cached-artifact warmup isn't wanted here: dedup is off, so
        # every submit (warmup included) dispatches a worker.
        return GenerateRequest(count=1, nodes=40, seed=seed)

    def roundtrip_run(request):
        samples = []
        for _ in range(ROUNDTRIP_REQUESTS):
            started = time.perf_counter()
            accepted = client.submit(request, dedupe=False)
            client.wait(accepted["job_id"])
            samples.append(time.perf_counter() - started)
        _stamp_latencies(roundtrip_meta, samples)
        return ROUNDTRIP_REQUESTS

    def dedup_setup():
        request = GenerateRequest(count=1, nodes=40, seed=seed + 1)
        accepted = client.submit(request, dedupe=True)
        client.wait(accepted["job_id"])  # prime the artifact cache
        return request

    def dedup_run(request):
        samples = []
        for _ in range(DEDUP_REQUESTS):
            started = time.perf_counter()
            accepted = client.submit(request, dedupe=True)
            samples.append(time.perf_counter() - started)
            assert accepted["deduplicated"], "dedup benchmark missed cache"
        _stamp_latencies(dedup_meta, samples)
        return DEDUP_REQUESTS

    return [
        Benchmark("serve.submit_roundtrip", roundtrip_setup, roundtrip_run,
                  meta=roundtrip_meta),
        Benchmark("serve.dedup_hit", dedup_setup, dedup_run,
                  meta=dedup_meta),
    ]


def _queue_benchmark(seed: int) -> Benchmark:
    from ..api import GenerateRequest
    from ..serve import JobQueue, request_key

    def queue_setup():
        request = GenerateRequest(count=1, nodes=40, seed=seed).to_dict()
        return request, tempfile.mkdtemp(prefix="repro-queue-bench-")

    def queue_run(state):
        import pathlib
        import shutil

        request, root = state
        scratch = pathlib.Path(root) / "ledger"
        queue = JobQueue(scratch)
        for k in range(QUEUE_JOBS):
            queue.submit(request, request_key({"seed": k}, request))
        JobQueue(scratch).load()  # the restart-replay scan
        shutil.rmtree(scratch)
        return QUEUE_JOBS

    return Benchmark(
        "serve.queue_persist", queue_setup, queue_run,
        meta={"jobs": QUEUE_JOBS,
              "note": "atomic submit writes + restart load()"},
    )


def run_serve_suite(
    preset: str = "smoke",
    *,
    config=None,
    seed: int = 0,
    repeats: int = 3,
    warmup: int = 1,
    workers: int = 2,
    filter_pattern: str | None = None,
    progress: Callable[[str], None] | None = None,
) -> BenchReport:
    """Boot a server, measure the service paths, return the report.

    The scenario is pre-fitted through a local session first so worker
    boot is artifact-load only; the server (daemon threads + spawn
    worker processes) is stopped before returning.
    """
    from ..api import Session
    from ..api.presets import resolve_preset
    from ..api.store import fingerprint
    from ..serve import ReproServer, ServeClient

    preset_name: str | None = preset
    if config is None:
        config = resolve_preset(preset, seed=seed)
    else:
        preset_name = None

    benchmarks = [_queue_benchmark(seed)]
    server = None
    needs_server = filter_pattern is None or any(
        filter_pattern in name
        for name in ("serve.submit_roundtrip", "serve.dedup_hit")
    )
    try:
        if needs_server:
            if progress is not None:
                progress("[bench] booting serve worker pool ...")
            Session(config=config).fit()  # pre-warm the artifact store
            server = ReproServer(
                config=config,
                workers=workers,
                queue_dir=tempfile.mkdtemp(prefix="repro-serve-bench-"),
            ).start_background()
            client = ServeClient(f"http://127.0.0.1:{server.port}")
            benchmarks = (
                build_serve_benchmarks(client, seed=seed) + benchmarks
            )
        if filter_pattern:
            benchmarks = [b for b in benchmarks if filter_pattern in b.name]
        records = []
        for benchmark in benchmarks:
            if progress is not None:
                progress(f"[bench] {benchmark.name} ...")
            records.append(
                run_benchmark(benchmark, repeats=repeats, warmup=warmup)
            )
    finally:
        if server is not None:
            server.stop()
    return BenchReport.stamped(
        suite="serve",
        preset=preset_name,
        config_fingerprint=fingerprint(config.to_dict()),
        records=records,
    )
