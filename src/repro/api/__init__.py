"""Unified public API for the SynCircuit reproduction.

Everything a caller needs lives here: sessions with a persistent
artifact store, typed request/response objects with JSON round-trips,
named scenario presets, and parallel batch generation.

    from repro.api import Session, GenerateRequest

    session = Session(preset="fast").fit()
    result = session.generate_batch(
        GenerateRequest(count=8, nodes=(40, 60), workers=4, seed=1)
    )
    for graph in result.graphs:
        print(graph.name, graph.num_nodes)
"""

from .engine import GenerationRecord, SynCircuit, SynCircuitConfig
from .presets import list_presets, resolve_preset
from .requests import (
    BenchRequest,
    EvalRequest,
    EvalResult,
    GenerateRequest,
    GenerateResult,
    LintRequest,
    SynthRequest,
    SynthSummary,
)
from .session import BatchItemError, Session
from .store import ArtifactStore, fingerprint, graphs_fingerprint

__all__ = [
    "ArtifactStore",
    "BatchItemError",
    "BenchRequest",
    "EvalRequest",
    "EvalResult",
    "GenerateRequest",
    "GenerateResult",
    "GenerationRecord",
    "LintRequest",
    "Session",
    "SynCircuit",
    "SynCircuitConfig",
    "SynthRequest",
    "SynthSummary",
    "fingerprint",
    "graphs_fingerprint",
    "list_presets",
    "resolve_preset",
]
