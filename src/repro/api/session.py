"""The unified entry point: cache-aware sessions over the SynCircuit engine.

A :class:`Session` owns a persistent :class:`ArtifactStore` and a
resolved :class:`SynCircuitConfig` (usually from a named preset).  It
exposes the whole reproduction through typed requests:

* :meth:`fit` -- train (or *load*, on a content-address hit) the
  diffusion generator and reward model.  Identical config + training set
  never retrains, across runs and across processes.
* :meth:`generate` / :meth:`generate_batch` / :meth:`iter_generate` --
  produce synthetic circuits.  Per-item seeds are derived with
  ``np.random.SeedSequence(seed).spawn``, so the parallel fan-out is
  bit-identical to the sequential path and any item can be recomputed
  in isolation.
* :meth:`synth` -- synthesis with store-backed memoization of the PPA
  summary.
* :meth:`evaluate` -- Table II structural similarity vs a reference.

    from repro.api import Session

    with Session(preset="fast") as session:
        session.fit()
        result = session.generate_batch(count=8, nodes=(40, 60), workers=4)
"""

from __future__ import annotations

import contextvars
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Iterator

import numpy as np

from ..ir import CircuitGraph
from ..obs import span
from ..tiers import EXACT_TIER, FAST_TIER, check_tier
from .engine import GenerationRecord, SynCircuit, SynCircuitConfig
from .presets import resolve_preset
from .requests import (
    BenchRequest,
    EvalRequest,
    EvalResult,
    GenerateRequest,
    GenerateResult,
    LintRequest,
    SynthRequest,
    SynthSummary,
)
from .store import ArtifactStore, graphs_fingerprint


class BatchItemError(RuntimeError):
    """One item of a generate batch failed.

    Carries the failing request's batch ``index`` (and item name) and
    chains the worker's original exception as ``__cause__``.  When it is
    raised, every *pending* sibling future has been cancelled; items
    already running are allowed to finish (threads cannot be aborted)
    but their results are discarded.
    """

    def __init__(self, index: int, name: str, cause: BaseException):
        self.index = index
        self.name = name
        super().__init__(
            f"generation of batch item {index} ({name!r}) failed: "
            f"{type(cause).__name__}: {cause}"
        )


def _item_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Independent, deterministic per-item generators.

    ``SeedSequence.spawn`` keys depend only on (seed, index), never on
    execution order -- the property that makes worker fan-out reproduce
    the sequential path bit-for-bit.
    """
    return [
        np.random.default_rng(child)
        for child in np.random.SeedSequence(seed).spawn(count)
    ]


class Session:
    """A configured, artifact-caching handle on the whole pipeline."""

    def __init__(
        self,
        preset: str = "fast",
        *,
        config: SynCircuitConfig | None = None,
        seed: int | None = None,
        store: ArtifactStore | None = None,
        cache_dir=None,
        use_cache: bool = True,
    ):
        if config is not None:
            self.config = config
            if seed is not None:
                # Same contract as resolve_preset(seed=...): one integer
                # controls the whole scenario, nested configs included.
                self.config.seed = seed
                self.config.diffusion.seed = seed
                self.config.mcts.seed = seed
        else:
            self.config = resolve_preset(preset, seed=seed)
        self.preset = None if config is not None else preset
        self.store = store or ArtifactStore(cache_dir)
        self.use_cache = use_cache
        self.engine = SynCircuit(self.config)
        self._train_fingerprint: str | None = None

    # -- context manager (no resources held; symmetry with services) ----
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        return None

    # -- training --------------------------------------------------------
    def fit(
        self,
        graphs: list[CircuitGraph] | None = None,
        verbose: bool = False,
    ) -> "Session":
        """Fit on ``graphs`` (default: the corpus training split).

        Content-addressed caching: the trained diffusion generator and
        the PCS discriminator are keyed by their hyper-parameters plus a
        fingerprint of the training set, so a second ``fit`` with an
        identical scenario loads from the artifact store instead of
        retraining -- even in a fresh process.
        """
        if graphs is None:
            from ..bench_designs import train_test_split

            graphs, _ = train_test_split(seed=2025)
        fingerprint = graphs_fingerprint(graphs)
        self._train_fingerprint = fingerprint

        trained = None
        if self.config.use_diffusion and self.use_cache:
            diff_key = self.store.key("diffusion", {
                "config": self.config.diffusion.__dict__,
                "graphs": fingerprint,
            })
            trained = self.store.load_diffusion(diff_key)

        reward_fn = None
        if self.config.reward == "discriminator" and self.use_cache:
            disc_key = self.store.key("discriminator", {
                "clock_period": self.config.mcts.clock_period,
                "perturbations": self.config.discriminator_perturbations,
                "seed": self.config.seed,
                "graphs": fingerprint,
            })
            reward_fn = self.store.load_discriminator(disc_key)

        self.engine.fit(
            graphs, verbose=verbose, trained=trained, reward_fn=reward_fn
        )

        if self.use_cache:
            if self.config.use_diffusion and trained is None:
                self.store.save_diffusion(diff_key, self.engine.trained)
            if self.config.reward == "discriminator" and reward_fn is None:
                self.store.save_discriminator(disc_key, self.engine._reward_fn)
        return self

    # -- generation ------------------------------------------------------
    @staticmethod
    def _draw_sizes(
        request: GenerateRequest, rngs: list[np.random.Generator]
    ) -> list[int]:
        """Per-item node counts, drawn from each item's rng *first*.

        The draw order is load-bearing: every path (sequential, batch,
        streaming) must consume each item's generator identically or
        the bit-identity guarantee between them breaks, so the logic
        lives in exactly one place.
        """
        nodes = request.nodes
        if isinstance(nodes, tuple):
            return [int(rng.integers(nodes[0], nodes[1] + 1)) for rng in rngs]
        return [int(nodes)] * len(rngs)

    def _resolve_tier(self, request: GenerateRequest) -> str:
        """The numeric tier this request runs under (see
        :mod:`repro.tiers`): the request's ``tier`` when set, else the
        session config's ``MCTSConfig.tier``."""
        tier = request.tier if request.tier is not None else getattr(
            self.config.mcts, "tier", EXACT_TIER
        )
        return check_tier(tier)

    def _request_queue(self, request: GenerateRequest):
        """The request-scoped cross-circuit stimulus pool (fast tier
        only): candidate cones from every item of the batch share one
        packed-stimulus word pool, with per-circuit evaluator state."""
        if self._resolve_tier(request) != FAST_TIER:
            return None
        from ..mcts import CrossCircuitQueue

        return CrossCircuitQueue(seed=request.seed)

    def _prepare_items(self, request: GenerateRequest):
        """Per-item rngs, node counts, and batched phase-1 samples.

        Node counts come off each item's rng first -- the same order the
        per-item path used -- then
        :meth:`repro.api.engine.SynCircuit.presample` runs the reverse
        diffusion for all items with shared denoiser forwards.  Both the
        sequential and the parallel generation paths consume the same
        prepared items, which keeps them trivially bit-identical.
        """
        rngs = _item_rngs(request.seed, request.count)
        sizes = self._draw_sizes(request, rngs)
        tier = self._resolve_tier(request)
        with span("session.presample", count=request.count, tier=tier):
            samples, per_item = self.engine.presample(sizes, rngs, tier=tier)
        return rngs, sizes, [(sample, per_item) for sample in samples]

    def _generate_item(
        self,
        index: int,
        rng: np.random.Generator,
        request: GenerateRequest,
        num_nodes: int,
        presampled: tuple | None = None,
        queue=None,
    ) -> GenerationRecord:
        mcts_config = None
        overrides = {}
        if (request.incremental is not None
                and request.incremental != self.config.mcts.incremental):
            overrides["incremental"] = request.incremental
        if request.sanitize and not self.config.mcts.sanitize:
            overrides["sanitize"] = True
        tier = self._resolve_tier(request)
        if tier != self.config.mcts.tier:
            overrides["tier"] = tier
        if overrides:
            # Request-scoped copy: workers share the session config.
            import dataclasses

            mcts_config = dataclasses.replace(self.config.mcts, **overrides)
        with span("session.item", index=index, nodes=num_nodes):
            return self.engine.generate_one(
                num_nodes, rng,
                optimize=request.optimize,
                name=f"{request.name_prefix}{index}",
                mcts_config=mcts_config,
                presampled=presampled,
                evaluator=(
                    queue.evaluator(index) if queue is not None else None
                ),
            )

    def _finalize(
        self,
        records: list[GenerationRecord],
        request: GenerateRequest,
        started: float,
    ) -> GenerateResult:
        synth = None
        if request.synth_period is not None:
            synth = [
                self.synth(SynthRequest(rec.graph, request.synth_period))
                for rec in records
            ]
        return GenerateResult(
            records=records,
            request=request,
            config=self.config,
            synth=synth,
            elapsed=time.perf_counter() - started,
        )

    def generate(
        self, request: GenerateRequest | None = None, **kwargs
    ) -> GenerateResult:
        """Sequential generation (the reference path for determinism)."""
        request = request or GenerateRequest(**kwargs)
        started = time.perf_counter()
        with span("session.generate", count=request.count, seed=request.seed):
            rngs, sizes, samples = self._prepare_items(request)
            queue = self._request_queue(request)
            records = [
                self._generate_item(
                    k, rngs[k], request, sizes[k], samples[k], queue
                )
                for k in range(request.count)
            ]
            return self._finalize(records, request, started)

    @staticmethod
    def _collect_ordered(
        futures: list, indices: list[int], request: GenerateRequest
    ) -> Iterator[GenerationRecord]:
        """Yield future results in submission (= index) order.

        On a failing item, every not-yet-started sibling is cancelled
        and the failure is re-raised as :class:`BatchItemError` chaining
        the worker's exception with the item's batch index -- the map
        idiom this replaces lost the index and left siblings running.
        """
        for position, future in enumerate(futures):
            try:
                yield future.result()
            except Exception as exc:
                for pending in futures[position + 1:]:
                    pending.cancel()
                index = indices[position]
                raise BatchItemError(
                    index, f"{request.name_prefix}{index}", exc
                ) from exc

    def generate_batch(
        self, request: GenerateRequest | None = None, **kwargs
    ) -> GenerateResult:
        """Parallel fan-out over ``request.workers`` threads.

        Per-item seed derivation makes the output bit-identical to
        :meth:`generate` for the same request; only wall-clock changes.
        Phase 1 runs up front as one batched diffusion pass (equal-size
        items share each denoiser forward); the workers then fan out
        over refinement and optimization.  A failing item cancels the
        batch's pending work and raises :class:`BatchItemError` with the
        item's index (the original exception chained as ``__cause__``).
        """
        request = request or GenerateRequest(**kwargs)
        if request.workers <= 1:
            return self.generate(request)
        started = time.perf_counter()
        with span(
            "session.generate_batch",
            count=request.count, workers=request.workers, seed=request.seed,
        ):
            rngs, sizes, samples = self._prepare_items(request)
            queue = self._request_queue(request)
            with ThreadPoolExecutor(max_workers=request.workers) as pool:
                # ThreadPoolExecutor threads do not inherit ContextVars;
                # each item runs in a copy of the submitting context so
                # an active trace recorder (and sanitizer) follows the
                # work onto the pool.
                futures = [
                    pool.submit(
                        contextvars.copy_context().run,
                        self._generate_item,
                        k, rngs[k], request, sizes[k], samples[k], queue,
                    )
                    for k in range(request.count)
                ]
                records = list(self._collect_ordered(
                    futures, list(range(request.count)), request
                ))
            return self._finalize(records, request, started)

    def iter_generate(
        self, request: GenerateRequest | None = None, **kwargs
    ) -> Iterator[GenerationRecord]:
        """Streaming variant: yield records strictly in index order as
        they complete, so consumers can pipeline without waiting for the
        whole batch.  Same determinism guarantee as the batch path.

        Error contract (mirrors :meth:`generate_batch`): if item ``k``
        fails, every record before ``k`` has already been yielded in
        order, pending work is cancelled, and :class:`BatchItemError`
        is raised with index ``k`` chaining the original exception --
        the consumer can resubmit exactly the lost tail.
        """
        request = request or GenerateRequest(**kwargs)
        # Streaming keeps its first-record-latency contract: phase 1 is
        # presampled in bounded chunks rather than for the whole batch
        # up front.  Grouped forwards only share *compute* -- every item
        # draws from its own generator -- so chunking cannot change any
        # output bit relative to generate()/generate_batch().
        rngs = _item_rngs(request.seed, request.count)
        sizes = self._draw_sizes(request, rngs)
        tier = self._resolve_tier(request)
        queue = self._request_queue(request)
        chunk = max(request.workers, 1) * 4

        def chunk_items(lo: int):
            hi = min(lo + chunk, request.count)
            samples, per_item = self.engine.presample(
                sizes[lo:hi], rngs[lo:hi], tier=tier
            )
            return [
                (k, (samples[k - lo], per_item))
                for k in range(lo, hi)
            ]

        if request.workers <= 1:
            for lo in range(0, request.count, chunk):
                for k, presampled in chunk_items(lo):
                    try:
                        yield self._generate_item(
                            k, rngs[k], request, sizes[k], presampled, queue
                        )
                    except Exception as exc:
                        raise BatchItemError(
                            k, f"{request.name_prefix}{k}", exc
                        ) from exc
            return
        with ThreadPoolExecutor(max_workers=request.workers) as pool:
            for lo in range(0, request.count, chunk):
                items = chunk_items(lo)
                futures = [
                    pool.submit(
                        contextvars.copy_context().run,
                        self._generate_item,
                        k, rngs[k], request, sizes[k], presampled, queue,
                    )
                    for k, presampled in items
                ]
                yield from self._collect_ordered(
                    futures, [k for k, _ in items], request
                )

    # -- synthesis -------------------------------------------------------
    def _resolve_design(self, design: str | CircuitGraph) -> CircuitGraph:
        if isinstance(design, CircuitGraph):
            return design
        from ..bench_designs import load_design

        return load_design(design)

    def synth(
        self, request: SynthRequest | str | CircuitGraph, **kwargs
    ) -> SynthSummary:
        """Synthesize a design; the PPA summary is memoized in the store."""
        if not isinstance(request, SynthRequest):
            request = SynthRequest(request, **kwargs)
        graph = self._resolve_design(request.design)
        key = self.store.key("synth", {
            "graph": graph.to_dict(),
            "clock_period": request.clock_period,
        })
        if self.use_cache:
            cached = self.store.load_json(key)
            if cached is not None:
                return SynthSummary.from_dict(cached)
        from ..synth import synthesize

        result = synthesize(graph, clock_period=request.clock_period)
        summary = SynthSummary.from_result(result, graph)
        if self.use_cache:
            self.store.save_json(key, summary.to_dict())
        return summary

    # -- linting ---------------------------------------------------------
    def lint(self, request: LintRequest | str | CircuitGraph, **kwargs):
        """Run the diagnostic rules on a design.

        Returns a :class:`repro.lint.LintReport` with the graph-scope
        (``L0xx``) findings, plus the netlist-scope (``N0xx``) findings
        of an elaboration when ``request.netlist`` is on (the default).
        """
        if not isinstance(request, LintRequest):
            request = LintRequest(request, **kwargs)
        from ..lint import lint_graph, lint_netlist

        graph = self._resolve_design(request.design)
        # One selection may span both scopes; each scope's runner keeps
        # only its own ids.
        report = lint_graph(graph, rules=request.rules)
        if request.netlist and not report.errors:
            from ..synth.elaborate import elaborate

            report.extend(lint_netlist(
                elaborate(graph, check=False), rules=request.rules,
            ))
        return report

    # -- benchmarking ----------------------------------------------------
    def bench(self, request: BenchRequest | None = None, **kwargs):
        """Run the standard microbenchmark suite under this session's
        scenario config and return a :class:`repro.bench.BenchReport`.

        The suite is named after the session's preset (``BENCH_smoke.json``
        for ``preset="smoke"``); ``request.output`` additionally writes
        the report to disk.
        """
        from ..bench import run_suite

        request = request or BenchRequest(**kwargs)
        report = run_suite(
            config=self.config,
            suite=self.preset or "custom",
            seed=request.seed,
            repeats=request.repeats,
            warmup=request.warmup,
            filter_pattern=request.filter,
        )
        if request.output:
            report.write(request.output)
        return report

    # -- evaluation ------------------------------------------------------
    def evaluate(self, request: EvalRequest) -> EvalResult:
        """Structural similarity of generated graphs vs a reference."""
        from ..metrics import structural_similarity

        reference = self._resolve_design(request.reference)
        report = structural_similarity(reference, request.graphs)
        return EvalResult(
            reference=reference.name,
            num_graphs=len(request.graphs),
            w1_out_degree=float(report.w1_out_degree),
            w1_clustering=float(report.w1_clustering),
            w1_orbit=float(report.w1_orbit),
            ratio_triangle=float(report.ratio_triangle),
            ratio_homophily=float(report.ratio_homophily),
            ratio_homophily_two_hop=float(report.ratio_homophily_two_hop),
        )
