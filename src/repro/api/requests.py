"""Typed request / response objects for the session API.

Every request and result is a dataclass with a ``to_dict`` /
``from_dict`` JSON round-trip, so jobs can be queued, logged and replayed
as plain JSON -- the substrate a service front-end needs.  Graph-valued
fields serialize through :meth:`CircuitGraph.to_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import CircuitGraph
from .engine import GenerationRecord, SynCircuitConfig


def _nodes_to_json(nodes: int | tuple[int, int]) -> int | list[int]:
    return list(nodes) if isinstance(nodes, tuple) else int(nodes)


def _nodes_from_json(nodes) -> int | tuple[int, int]:
    if isinstance(nodes, (list, tuple)):
        low, high = nodes
        return (int(low), int(high))
    return int(nodes)


def _graph_to_json(design: str | CircuitGraph):
    if isinstance(design, CircuitGraph):
        return {"graph": design.to_dict()}
    return {"name": str(design)}


def _graph_from_json(data) -> str | CircuitGraph:
    if isinstance(data, dict) and "graph" in data:
        return CircuitGraph.from_dict(data["graph"])
    if isinstance(data, dict):
        return str(data["name"])
    return str(data)


# ---------------------------------------------------------------------------
@dataclass
class GenerateRequest:
    """One generation job: N circuits from a fitted session.

    ``nodes`` is a fixed size or an inclusive ``(low, high)`` range drawn
    independently per item.  ``seed`` fully determines the output; the
    per-item seed derivation makes ``workers > 1`` bit-identical to the
    sequential path.  ``synth_period`` (if set) attaches a cached
    synthesis summary per generated circuit.  ``incremental`` overrides
    the session config's ``MCTSConfig.incremental`` for this request
    only (``None`` keeps the config's choice): ``False`` forces the
    full-resynthesis oracle reward in the Phase 3 search.
    ``sanitize`` audits this request's Phase 3 searches with the
    :mod:`repro.lint.sanitize` invariant checker (pure auditing: output
    is bit-identical, divergence raises
    :class:`~repro.lint.InvariantViolation`).
    ``trace`` records an execution timeline of the job with
    :mod:`repro.obs` spans (observation only: output is bit-identical);
    the serve layer stores it next to the result artifact and exposes
    it at ``GET /jobs/<id>/trace`` as Perfetto-loadable Chrome
    trace-event JSON.
    ``tier`` selects the numeric contract (:mod:`repro.tiers`):
    ``None`` keeps the session config's tier, ``"exact"`` the
    byte-stable default, ``"fast"`` the tolerance-gated throughput mode
    (fused cross-graph denoiser GEMMs, estimate-driven search
    acceptance, cross-circuit stimulus sharing).  The field is part of
    the serve layer's dedup ``request_key``, so exact and fast results
    never alias in the artifact store.
    """

    count: int = 1
    nodes: int | tuple[int, int] = 60
    optimize: bool = True
    seed: int = 0
    name_prefix: str = "syn"
    workers: int = 1
    synth_period: float | None = None
    incremental: bool | None = None
    sanitize: bool = False
    trace: bool = False
    tier: str | None = None

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "nodes": _nodes_to_json(self.nodes),
            "optimize": self.optimize,
            "seed": self.seed,
            "name_prefix": self.name_prefix,
            "workers": self.workers,
            "synth_period": self.synth_period,
            "incremental": self.incremental,
            "sanitize": self.sanitize,
            "trace": self.trace,
            "tier": self.tier,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GenerateRequest":
        data = dict(data)
        data["nodes"] = _nodes_from_json(data.get("nodes", 60))
        return cls(**data)


@dataclass
class SynthSummary:
    """JSON-able slice of :class:`repro.synth.SynthResult` (no netlist)."""

    design: str
    clock_period: float
    num_cells: int
    num_dffs: int
    area: float
    scpr: float
    pcs: float
    wns: float
    tns: float
    nvp: int
    rtl_nodes: int
    rtl_edges: int
    rtl_register_bits: int
    register_slacks: dict[int, float] = field(default_factory=dict)

    @classmethod
    def from_result(cls, result, graph: CircuitGraph) -> "SynthSummary":
        return cls(
            design=result.design,
            clock_period=result.clock_period,
            num_cells=result.num_cells,
            num_dffs=result.num_dffs,
            area=float(result.area),
            scpr=float(result.scpr),
            pcs=float(result.pcs),
            wns=float(result.wns),
            tns=float(result.tns),
            nvp=int(result.nvp),
            rtl_nodes=graph.num_nodes,
            rtl_edges=graph.num_edges,
            rtl_register_bits=graph.total_register_bits(),
            register_slacks={
                int(reg): float(slack)
                for reg, slack in result.register_slacks.items()
            },
        )

    def to_dict(self) -> dict:
        data = self.__dict__.copy()
        data["register_slacks"] = {
            str(reg): slack for reg, slack in self.register_slacks.items()
        }
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SynthSummary":
        data = dict(data)
        data["register_slacks"] = {
            int(reg): float(slack)
            for reg, slack in data.get("register_slacks", {}).items()
        }
        return cls(**data)


@dataclass
class GenerateResult:
    """Everything produced by one :class:`GenerateRequest`."""

    records: list[GenerationRecord]
    request: GenerateRequest
    config: SynCircuitConfig
    synth: list[SynthSummary] | None = None
    elapsed: float = 0.0

    @property
    def graphs(self) -> list[CircuitGraph]:
        """The final artefacts (G_opt when optimization ran, else G_val)."""
        return [record.graph for record in self.records]

    def to_dict(self) -> dict:
        return {
            "records": [record.to_dict() for record in self.records],
            "request": self.request.to_dict(),
            "config": self.config.to_dict(),
            "synth": (
                None if self.synth is None
                else [summary.to_dict() for summary in self.synth]
            ),
            "elapsed": self.elapsed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GenerateResult":
        return cls(
            records=[
                GenerationRecord.from_dict(rec) for rec in data["records"]
            ],
            request=GenerateRequest.from_dict(data["request"]),
            config=SynCircuitConfig.from_dict(data["config"]),
            synth=(
                None if data.get("synth") is None
                else [SynthSummary.from_dict(s) for s in data["synth"]]
            ),
            elapsed=float(data.get("elapsed", 0.0)),
        )


# ---------------------------------------------------------------------------
@dataclass
class SynthRequest:
    """Synthesize one design: a corpus name or an explicit graph."""

    design: str | CircuitGraph
    clock_period: float = 1.0

    def to_dict(self) -> dict:
        return {
            "design": _graph_to_json(self.design),
            "clock_period": self.clock_period,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SynthRequest":
        return cls(
            design=_graph_from_json(data["design"]),
            clock_period=float(data.get("clock_period", 1.0)),
        )


# ---------------------------------------------------------------------------
@dataclass
class LintRequest:
    """Lint one design (a corpus name or an explicit graph).

    ``netlist`` additionally elaborates the design and runs the
    netlist-scope (``N0xx``) rules; ``rules`` restricts the run to the
    named rule ids (``None`` = every registered rule of the scope).
    The result is a :class:`repro.lint.LintReport`.
    """

    design: str | CircuitGraph
    netlist: bool = True
    rules: list[str] | None = None

    def to_dict(self) -> dict:
        return {
            "design": _graph_to_json(self.design),
            "netlist": self.netlist,
            "rules": None if self.rules is None else list(self.rules),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LintRequest":
        rules = data.get("rules")
        return cls(
            design=_graph_from_json(data["design"]),
            netlist=bool(data.get("netlist", True)),
            rules=None if rules is None else [str(r) for r in rules],
        )


# ---------------------------------------------------------------------------
@dataclass
class BenchRequest:
    """One benchmark-suite run (see :mod:`repro.bench`).

    ``filter`` keeps only benchmarks whose name contains the substring;
    ``output`` (if set) is where the ``BENCH_<suite>.json`` report is
    written.  The scenario itself (model sizes, search budgets) comes
    from the session's config, so the same request measures any preset.
    """

    repeats: int = 3
    warmup: int = 1
    seed: int = 0
    filter: str | None = None
    output: str | None = None

    def to_dict(self) -> dict:
        return {
            "repeats": self.repeats,
            "warmup": self.warmup,
            "seed": self.seed,
            "filter": self.filter,
            "output": self.output,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BenchRequest":
        return cls(**data)


# ---------------------------------------------------------------------------
@dataclass
class EvalRequest:
    """Structural-similarity evaluation of generated circuits vs a
    reference design (the paper's Table II protocol)."""

    reference: str | CircuitGraph
    graphs: list[CircuitGraph] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "reference": _graph_to_json(self.reference),
            "graphs": [graph.to_dict() for graph in self.graphs],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EvalRequest":
        return cls(
            reference=_graph_from_json(data["reference"]),
            graphs=[CircuitGraph.from_dict(g) for g in data["graphs"]],
        )


@dataclass
class EvalResult:
    """Table II metrics: Wasserstein-1 distances and property ratios."""

    reference: str
    num_graphs: int
    w1_out_degree: float
    w1_clustering: float
    w1_orbit: float
    ratio_triangle: float
    ratio_homophily: float
    ratio_homophily_two_hop: float

    def to_dict(self) -> dict:
        return self.__dict__.copy()

    @classmethod
    def from_dict(cls, data: dict) -> "EvalResult":
        return cls(**data)
