"""Core SynCircuit engine: P(G) -> G_ini -> G_val -> G_opt.

This module hosts the three-phase generator that used to live in
``repro.pipeline``.  It is deliberately session-agnostic: ``SynCircuit``
knows how to train and generate, while :mod:`repro.api.session` layers
artifact caching, typed requests and parallel fan-out on top.  The old
``repro.pipeline`` module remains as a deprecation shim over this one.

``SynCircuit.fit`` trains the Phase 1 diffusion model (and optionally the
Phase 3 PCS discriminator) on real circuit graphs; ``generate`` then
produces any number of new valid synthetic circuits, optionally running
the MCTS redundancy optimization.  Pre-trained artifacts (from the
session artifact store) can be injected through ``fit``'s keyword-only
``trained=`` / ``reward_fn=`` arguments to skip the expensive phases.

The ``use_diffusion=False`` switch reproduces the paper's "SynCircuit
w/o diff" ablation: G_ini and P_E are replaced by random edges at the
training-set density while the rest of the pipeline is unchanged.

Performance notes: Phase 1 supports batched sampling (:meth:`presample`
groups equal-size items through shared denoiser forwards, bit-identical
to per-item draws), and Phase 3's search states are copy-on-write
:class:`repro.ir.GraphView` overlays over the refined design -- swap
successors share node/parent storage with their base and the accepted
result is materialized back into a plain, independent
:class:`~repro.ir.CircuitGraph` before it leaves ``generate_one``.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field

import numpy as np

from ..diffusion import (
    AttributeSampler,
    DiffusionConfig,
    TrainedDiffusion,
    sample_batch,
    sample_initial_graph,
    train_diffusion,
)
from ..ir import CircuitGraph
from ..mcts import (
    MCTSConfig,
    optimize_registers,
    train_discriminator,
)
from ..obs import span
from ..postprocess import refine_to_valid
from ..tiers import EXACT_TIER


@dataclass
class SynCircuitConfig:
    """Pipeline-wide configuration with the paper's defaults."""

    diffusion: DiffusionConfig = field(default_factory=DiffusionConfig)
    mcts: MCTSConfig = field(default_factory=MCTSConfig)
    degree_guidance: float = 0.25
    use_diffusion: bool = True       # False: the "w/o diff" ablation
    reward: str = "discriminator"    # "discriminator" | "synthesis"
    discriminator_perturbations: int = 12
    #: Lint every generated circuit with the graph-scope rules and fail
    #: the generation on error-severity findings (a pipeline-integrity
    #: gate: the refinement phase guarantees a valid graph, so an error
    #: here means a phase broke its contract).
    lint_generated: bool = False
    seed: int = 0

    # -- JSON round-trip ----------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON representation (nested dataclasses become dicts)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SynCircuitConfig":
        data = dict(data)
        diffusion = DiffusionConfig(**data.pop("diffusion", {}))
        mcts = MCTSConfig(**data.pop("mcts", {}))
        return cls(diffusion=diffusion, mcts=mcts, **data)


@dataclass
class GenerationRecord:
    """All intermediate artefacts of generating one synthetic circuit.

    ``timings`` holds per-phase wall seconds (``sample`` / ``refine`` /
    ``optimize``), the breakdown the ``repro bench`` e2e scenario and any
    service-side latency accounting read.
    """

    g_val: CircuitGraph
    g_opt: CircuitGraph | None
    initial_edges: int
    refined_edges: int
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def graph(self) -> CircuitGraph:
        """The final artefact: G_opt when optimization ran, else G_val."""
        return self.g_opt if self.g_opt is not None else self.g_val

    # -- JSON round-trip ----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "g_val": self.g_val.to_dict(),
            "g_opt": None if self.g_opt is None else self.g_opt.to_dict(),
            "initial_edges": self.initial_edges,
            "refined_edges": self.refined_edges,
            "timings": dict(self.timings),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GenerationRecord":
        return cls(
            g_val=CircuitGraph.from_dict(data["g_val"]),
            g_opt=(
                None if data["g_opt"] is None
                else CircuitGraph.from_dict(data["g_opt"])
            ),
            initial_edges=int(data["initial_edges"]),
            refined_edges=int(data["refined_edges"]),
            timings={
                str(phase): float(seconds)
                for phase, seconds in data.get("timings", {}).items()
            },
        )


class SynCircuit:
    """The three-phase synthetic circuit generator."""

    def __init__(self, config: SynCircuitConfig | None = None):
        self.config = config or SynCircuitConfig()
        self.trained: TrainedDiffusion | None = None
        self.attributes: AttributeSampler | None = None
        self._edges_per_node: float = 1.5
        self._reward_fn = None

    # ------------------------------------------------------------------
    def fit(
        self,
        graphs: list[CircuitGraph],
        verbose: bool = False,
        *,
        trained: TrainedDiffusion | None = None,
        reward_fn=None,
    ) -> "SynCircuit":
        """Learn P(G | V, X) from real designs (and the PCS reward model).

        ``trained`` / ``reward_fn`` inject pre-computed artifacts (e.g.
        loaded from an :class:`~repro.api.store.ArtifactStore`), skipping
        the corresponding training phase entirely.
        """
        if not graphs:
            raise ValueError("need at least one training graph")
        self.attributes = AttributeSampler(graphs)
        self._edges_per_node = float(
            np.mean([g.num_edges / max(g.num_nodes, 1) for g in graphs])
        )
        if self.config.use_diffusion:
            if trained is not None:
                self.trained = trained
            else:
                self.trained = train_diffusion(
                    graphs, self.config.diffusion, verbose=verbose
                )
        if reward_fn is not None:
            self._reward_fn = reward_fn
        elif self.config.reward == "discriminator":
            self._reward_fn = train_discriminator(
                graphs,
                clock_period=self.config.mcts.clock_period,
                perturbations=self.config.discriminator_perturbations,
                seed=self.config.seed,
            )
        else:
            # Synthesis-reward scenarios defer to optimize_registers,
            # which builds the exact SynthesisReward or the incremental
            # engine according to MCTSConfig.incremental.  An *explicit*
            # reward_fn (including a SynthesisReward) is always honored
            # verbatim -- that is the contract callers like the
            # results-table benchmarks rely on.
            self._reward_fn = None
        return self

    @property
    def is_fitted(self) -> bool:
        return self.attributes is not None

    # ------------------------------------------------------------------
    def presample(
        self,
        sizes: list[int],
        rngs: list[np.random.Generator],
        tier: str = EXACT_TIER,
    ) -> tuple[list, float]:
        """Phase 1 for many items at once.

        Returns ``(samples, per_item_seconds)`` where ``samples[k]`` is
        the :class:`~repro.diffusion.sample.SampleResult` for item ``k``
        (``None`` for every item in the ``use_diffusion=False``
        ablation, whose random phase 1 stays inside ``generate_one`` to
        preserve its rng stream).  In the default ``exact`` tier,
        equal-size items share each denoiser forward through
        :func:`repro.diffusion.sample_batch` and every sample is
        bit-identical to what ``generate_one`` would have drawn item by
        item from the same generators; the ``fast`` tier fuses the
        forwards across *all* items (tolerance-gated, see
        :mod:`repro.tiers`).
        """
        self._check_fitted()
        if not self.config.use_diffusion or not sizes:
            return [None] * len(sizes), 0.0
        assert self.trained is not None
        started = time.perf_counter()
        samples = sample_batch(self.trained, sizes, rngs, tier=tier)
        elapsed = time.perf_counter() - started
        return samples, elapsed / len(sizes)

    def generate_one(
        self,
        num_nodes: int,
        rng: np.random.Generator,
        optimize: bool = True,
        name: str = "synthetic",
        mcts_config: MCTSConfig | None = None,
        presampled: tuple | None = None,
        evaluator=None,
    ) -> GenerationRecord:
        """Run the three phases for a single circuit.

        ``mcts_config`` overrides the engine config's Phase 3 settings
        for this call only (the session uses it for request-scoped
        knobs like ``GenerateRequest.incremental`` without mutating the
        shared config across worker threads).  ``presampled`` is a
        ``(SampleResult, sample_seconds)`` pair from :meth:`presample`:
        phase 1 is then skipped here (the batch already consumed this
        item's rng draws for it) and the shared forward's per-item wall
        share is recorded as the ``sample`` timing.  ``evaluator``
        injects the Phase 3 cone evaluator (the fast tier's per-circuit
        :class:`~repro.mcts.crossq.CrossCircuitQueue` view).
        """
        self._check_fitted()
        timings: dict[str, float] = {}
        started = time.perf_counter()
        if presampled is not None and presampled[0] is not None:
            sample, timings["sample"] = presampled
            types, widths = sample.types, sample.widths
            adjacency, probability = sample.adjacency, sample.edge_probability
        elif self.config.use_diffusion:
            assert self.trained is not None
            sample = sample_initial_graph(self.trained, num_nodes, rng=rng)
            types, widths = sample.types, sample.widths
            adjacency, probability = sample.adjacency, sample.edge_probability
        else:
            # Ablation: random G_ini and uniform-random P_E at the real
            # designs' edge density (size-adaptive, as in the full model),
            # then the identical post-processing.
            assert self.attributes is not None
            types, widths = self.attributes.sample(num_nodes, rng)
            density = np.clip(
                self._edges_per_node / max(num_nodes, 2), 1e-4, 0.5
            )
            adjacency = rng.random((num_nodes, num_nodes)) < density
            probability = rng.random((num_nodes, num_nodes))
        timings.setdefault("sample", time.perf_counter() - started)

        started = time.perf_counter()
        with span("engine.refine", nodes=num_nodes):
            g_val = refine_to_valid(
                types, widths, adjacency, probability,
                name=name, rng=rng,
                degree_guidance=self.config.degree_guidance,
            )
        timings["refine"] = time.perf_counter() - started
        g_opt = None
        if optimize:
            started = time.perf_counter()
            report = optimize_registers(
                g_val,
                reward_fn=self._reward_fn,
                config=mcts_config or self.config.mcts,
                evaluator=evaluator,
            )
            g_opt = report.graph
            g_opt.name = f"{name}_opt"
            timings["optimize"] = time.perf_counter() - started
        if self.config.lint_generated:
            from ..lint import lint_graph

            with span("engine.lint"):
                lint_report = lint_graph(g_opt if g_opt is not None else g_val)
            if lint_report.errors:
                raise RuntimeError(
                    f"generated circuit {name!r} failed the lint gate: "
                    + "; ".join(str(d) for d in lint_report.errors)
                )
        return GenerationRecord(
            g_val=g_val,
            g_opt=g_opt,
            initial_edges=int(np.asarray(adjacency).sum()),
            refined_edges=g_val.num_edges,
            timings=timings,
        )

    def generate(
        self,
        num_circuits: int,
        num_nodes: int | tuple[int, int],
        optimize: bool = True,
        seed: int | None = None,
        name_prefix: str = "syn",
    ) -> list[GenerationRecord]:
        """Generate a dataset of synthetic circuits.

        ``num_nodes`` is either a fixed size or an inclusive (low, high)
        range sampled per circuit.

        Note: this legacy path threads ONE rng through all items, so item
        k depends on items 0..k-1.  The session API's per-item seed
        derivation (:meth:`repro.api.Session.generate`) is order-free and
        therefore parallelizable; prefer it for new code.
        """
        self._check_fitted()
        rng = np.random.default_rng(self.config.seed if seed is None else seed)
        records = []
        for k in range(num_circuits):
            if isinstance(num_nodes, tuple):
                n = int(rng.integers(num_nodes[0], num_nodes[1] + 1))
            else:
                n = int(num_nodes)
            records.append(
                self.generate_one(
                    n, rng, optimize=optimize, name=f"{name_prefix}{k}"
                )
            )
        return records

    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if self.attributes is None:
            raise RuntimeError("call fit() before generate()")
