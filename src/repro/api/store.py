"""Content-addressed artifact store backing :class:`repro.api.Session`.

Expensive artifacts -- trained diffusion generators, PCS discriminators,
synthesis summaries, generated circuits -- are keyed by a SHA-256 digest
of the configuration (and training-set fingerprint) that produced them.
Identical requests therefore hit the cache across runs *and* across
processes: the store is a plain directory of ``.npz`` / ``.json`` files,
with an in-process memory layer in front so repeat lookups inside one
session never touch disk.

The default location is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import re
import tempfile

import numpy as np

from ..diffusion import TrainedDiffusion, load_trained, save_trained
from ..ir import CircuitGraph
from ..mcts import GRAPH_FEATURE_DIM, PCSDiscriminator
from ..obs import registry


def canonical_json(payload) -> str:
    """Deterministic JSON used for hashing (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def fingerprint(payload) -> str:
    """SHA-256 hex digest of an arbitrary JSON-able payload."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def graphs_fingerprint(graphs: list[CircuitGraph]) -> str:
    """Content hash of a training set (order-insensitive)."""
    digests = sorted(
        hashlib.sha256(canonical_json(g.to_dict()).encode()).hexdigest()
        for g in graphs
    )
    return fingerprint(digests)


# Shape of every key minted by ArtifactStore.key: "<kind>-<32 hex>".
_KEY_RE = re.compile(r"[a-z][a-z0-9_]*-[0-9a-f]{32}")


class ArtifactStore:
    """Two-level (memory + directory) content-addressed artifact cache."""

    def __init__(self, root: str | os.PathLike | None = None):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or (
                pathlib.Path.home() / ".cache" / "repro"
            )
        self.root = pathlib.Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self._memory: dict[str, object] = {}
        self.hits = 0
        self.misses = 0

    # -- keys -----------------------------------------------------------
    @staticmethod
    def key(kind: str, payload) -> str:
        """Content-address: artifact kind + config payload -> stable key."""
        return f"{kind}-{fingerprint(payload)[:32]}"

    def path(self, key: str, suffix: str) -> pathlib.Path:
        return self.root / f"{key}{suffix}"

    def _record(self, found: bool) -> None:
        if found:
            self.hits += 1
            registry().counter("store_hits_total").inc()
        else:
            self.misses += 1
            registry().counter("store_misses_total").inc()

    # -- trained diffusion generators -----------------------------------
    def load_diffusion(self, key: str) -> TrainedDiffusion | None:
        cached = self._memory.get(key)
        if cached is not None:
            self._record(True)
            return cached
        path = self.path(key, ".npz")
        if path.exists():
            trained = load_trained(path)
            self._memory[key] = trained
            self._record(True)
            return trained
        self._record(False)
        return None

    def save_diffusion(self, key: str, trained: TrainedDiffusion) -> None:
        self._memory[key] = trained
        self._atomic_write(
            self.path(key, ".npz"), lambda p: save_trained(trained, p)
        )

    # -- PCS discriminators ---------------------------------------------
    def load_discriminator(self, key: str) -> PCSDiscriminator | None:
        cached = self._memory.get(key)
        if cached is not None:
            self._record(True)
            return cached
        path = self.path(key, ".npz")
        if path.exists():
            with np.load(path) as bundle:
                disc = PCSDiscriminator(hidden=int(bundle["hidden"]))
                disc.net.load_state_dict({
                    name[len("param_"):]: bundle[name]
                    for name in bundle.files
                    if name.startswith("param_")
                })
                disc._mean = bundle["mean"]
                disc._std = bundle["std"]
                disc.trained = True
            self._memory[key] = disc
            self._record(True)
            return disc
        self._record(False)
        return None

    def save_discriminator(self, key: str, disc: PCSDiscriminator) -> None:
        self._memory[key] = disc
        hidden = disc.net.layers[0].weight.data.shape[1]
        arrays = {
            f"param_{name}": value
            for name, value in disc.net.state_dict().items()
        }
        self._atomic_write(
            self.path(key, ".npz"),
            lambda p: np.savez_compressed(
                p,
                hidden=np.int64(hidden),
                feature_dim=np.int64(GRAPH_FEATURE_DIM),
                mean=disc._mean,
                std=disc._std,
                **arrays,
            ),
        )

    # -- JSON blobs (synthesis summaries, generated circuits, ...) ------
    def load_json(self, key: str):
        cached = self._memory.get(key)
        if cached is not None:
            self._record(True)
            return cached
        path = self.path(key, ".json")
        if path.exists():
            payload = json.loads(path.read_text())
            self._memory[key] = payload
            self._record(True)
            return payload
        self._record(False)
        return None

    def save_json(self, key: str, payload) -> None:
        self._memory[key] = payload
        self._atomic_write(
            self.path(key, ".json"),
            lambda p: pathlib.Path(p).write_text(canonical_json(payload)),
        )

    # -- maintenance ----------------------------------------------------
    def stats(self) -> dict:
        files = [p for p in self.root.iterdir() if p.is_file()]
        return {
            "root": str(self.root),
            "entries": len(files),
            "bytes": sum(p.stat().st_size for p in files),
            "hits": self.hits,
            "misses": self.misses,
        }

    def clear(self) -> int:
        """Delete every stored artifact; returns the number removed.

        Only files matching the store's own ``<kind>-<32 hex>`` key
        naming are touched, so pointing ``--cache-dir`` at a directory
        with unrelated ``.json``/``.npz`` files cannot destroy them.
        """
        removed = 0
        for path in self.root.iterdir():
            if (path.is_file() and path.suffix in {".npz", ".json"}
                    and _KEY_RE.fullmatch(path.stem)):
                path.unlink()
                removed += 1
        self._memory.clear()
        return removed

    def _atomic_write(self, path: pathlib.Path, writer) -> None:
        """Write via a same-directory temp file + rename so concurrent
        sessions never observe a half-written artifact.

        Writers that derive their own filename (``np.savez`` appends
        ``.npz`` to a suffix-less path) emit next to the mkstemp
        placeholder rather than into it; the derived file -- when it
        exists -- is therefore always the real artifact and the
        placeholder is empty, never the other way around.  The data and
        the rename are fsynced so a crash right after ``os.replace``
        cannot leave an empty (or truncated) file under the final name.
        """
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=path.stem, suffix=path.suffix
        )
        os.close(fd)
        derived = tmp + ".npz"
        try:
            writer(tmp)
            produced = derived if os.path.exists(derived) else tmp
            with open(produced, "rb") as handle:
                os.fsync(handle.fileno())
            os.replace(produced, path)
            dir_fd = os.open(self.root, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        finally:
            for leftover in (tmp, derived):
                if os.path.exists(leftover):
                    os.unlink(leftover)
