"""Named scenario presets: curated :class:`SynCircuitConfig` bundles.

Instead of hand-assembling ``SynCircuitConfig(DiffusionConfig(...),
MCTSConfig(...), ...)`` in every script, callers name a scenario and
optionally override individual fields::

    config = resolve_preset("fast", seed=7, diffusion={"epochs": 40})

Presets are factories (not shared instances), so resolved configs are
always safe to mutate.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from ..diffusion import DiffusionConfig
from ..mcts import MCTSConfig
from .engine import SynCircuitConfig


def _paper() -> SynCircuitConfig:
    return SynCircuitConfig()


def _fast() -> SynCircuitConfig:
    return SynCircuitConfig(
        diffusion=DiffusionConfig(
            epochs=120, hidden=48, num_layers=4, neg_ratio=8
        ),
        mcts=MCTSConfig(num_simulations=60, max_depth=8, branching=6),
        degree_guidance=0.5,
        reward="synthesis",
    )


def _smoke() -> SynCircuitConfig:
    return SynCircuitConfig(
        diffusion=DiffusionConfig(epochs=8, hidden=16, num_layers=2),
        mcts=MCTSConfig(num_simulations=8, max_depth=3, branching=3),
        degree_guidance=0.5,
        reward="synthesis",
    )


def _bench() -> SynCircuitConfig:
    return SynCircuitConfig(
        diffusion=DiffusionConfig(epochs=10, hidden=16, num_layers=2),
        mcts=MCTSConfig(num_simulations=12, max_depth=4, branching=4),
        degree_guidance=0.5,
        reward="synthesis",
    )


def _ablation_no_diff() -> SynCircuitConfig:
    config = _paper()
    config.use_diffusion = False
    return config


def _ablation_reward() -> SynCircuitConfig:
    config = _paper()
    config.reward = "synthesis"
    # The ablation's point is the *exact* PCS in the search loop, so the
    # incremental estimate must not substitute for it.
    config.mcts.incremental = False
    return config


_PRESETS: dict[str, tuple[Callable[[], SynCircuitConfig], str]] = {
    "paper": (_paper, "Faithful paper defaults: 9-step diffusion, "
                      "500-simulation MCTS, PCS discriminator reward."),
    "fast": (_fast, "CPU-friendly scale (the old CLI defaults): smaller "
                    "denoiser, 60 simulations, exact synthesis reward."),
    "smoke": (_smoke, "Minutes-scale budget for tests and demos."),
    "bench": (_bench, "Perf-measurement scenario for `repro bench`: "
                      "smoke-scale training with a search budget large "
                      "enough that hot paths dominate the timing."),
    "ablation-no-diff": (_ablation_no_diff,
                         "Paper's 'w/o diff' ablation: random G_ini at "
                         "training density instead of diffusion."),
    "ablation-reward": (_ablation_reward,
                        "Paper's reward ablation: exact synthesis PCS in "
                        "the search loop (discriminator and incremental "
                        "estimate both off -- the full-resynthesis "
                        "reference path)."),
}


def list_presets() -> dict[str, str]:
    """Preset name -> one-line description, for docs and ``repro presets``."""
    return {name: desc for name, (_, desc) in _PRESETS.items()}


def resolve_preset(
    name: str,
    *,
    seed: int | None = None,
    diffusion: dict | None = None,
    mcts: dict | None = None,
    **overrides,
) -> SynCircuitConfig:
    """Build the named preset's config, applying field overrides.

    ``diffusion`` / ``mcts`` are partial dicts merged into the nested
    configs; remaining keyword arguments override top-level
    ``SynCircuitConfig`` fields.  ``seed`` additionally propagates into
    the nested diffusion and MCTS seeds so one integer controls the
    whole scenario.
    """
    try:
        factory, _ = _PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(_PRESETS))
        raise KeyError(f"unknown preset {name!r}; known presets: {known}")
    config = factory()
    if seed is not None:
        config.seed = seed
        config.diffusion.seed = seed
        config.mcts.seed = seed
    if diffusion:
        config.diffusion = dataclasses.replace(config.diffusion, **diffusion)
    if mcts:
        config.mcts = dataclasses.replace(config.mcts, **mcts)
    for key, value in overrides.items():
        if not hasattr(config, key):
            raise TypeError(f"SynCircuitConfig has no field {key!r}")
        setattr(config, key, value)
    return config
