"""Incremental reward evaluation for the MCTS hot loop.

:class:`IncrementalReward` replaces the per-candidate full
``synthesize()`` call of the exact PCS reward with:

1. exact raw per-node gate areas served from a ``(node, operand
   widths)`` memo -- a node's lowered gate structure depends only on
   its own schema and its ordered operand widths, so a candidate's
   rewired nodes cost a dictionary lookup (first occurrence: one
   single-node scratch lowering), with *no* per-candidate elaboration
   at all, and
2. a word-level redundancy analysis
   (:func:`~repro.incr.analysis.analyze_redundancy`) predicting which
   nodes the gate-level optimizer would remove,

then scores ``surviving raw area / RTL nodes``, calibrated at
:meth:`rebase` so the base state's score equals its exact post-synthesis
PCS.  The per-node area values (and their summation order) are bit-for-
bit those of the historical :class:`~repro.incr.delta.DeltaNetlist`
artifact path, which :meth:`IncrementalReward.evaluate` still uses for
its delta/timing diagnostics.  The estimate ranks candidate rewrites;
acceptance is still gated by the exact ``synthesize()`` oracle in
:func:`repro.mcts.optimize.optimize_registers` (the full-resynthesis
reference path, ``MCTSConfig.incremental=False``, stays available).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import CircuitGraph, NodeType
from ..lint.sanitize import current_sanitizer
from ..obs import span
from ..synth.elaborate import elaborate
from ..synth.flow import synthesize
from ..synth.library import DEFAULT_LIBRARY, CellLibrary
from ..synth.netlist import Netlist
from ..synth.passes import optimize as optimize_netlist
from ..synth.timing import TimingReport, total_area
from .analysis import RedundancyAnalyzer, RedundancyReport
from .delta import DeltaNetlist
from .timing import IncrementalTiming


@dataclass
class IncrementalEval:
    """Full diagnostics for one candidate evaluation."""

    pcs: float
    raw_area: float
    surviving_area: float
    survivors: int
    patched: int
    timing: TimingReport | None = None


class _AreaScratch:
    """Netlist stand-in recording only gate *kinds*, in emission order.

    ``_Elaborator`` never reads back the gates it emits while lowering a
    single node, so area queries skip :class:`~repro.synth.netlist.Gate`
    construction entirely; the kind sequence alone reproduces the
    artifact's area fold bit for bit.
    """

    __slots__ = ("kinds", "_net")

    const0 = 0
    const1 = 1

    def __init__(self) -> None:
        self.kinds: list[str] = []
        self._net = 2

    def ensure_consts(self) -> None:
        return None

    def add_gate(self, kind: str, *inputs: int) -> int:
        self.kinds.append(kind)
        net = self._net
        self._net += 1
        return net


class IncrementalReward:
    """Delta-driven approximate PCS with the exact reward's protocol.

    Callable as ``reward(graph, cone) -> float`` like every reward in
    :mod:`repro.mcts.reward`.  ``rebase`` anchors the delta lineage (and
    the calibration) on a new base state; calling the reward with a
    graph whose node schema differs from the base rebases automatically,
    so the callable is safe to use standalone.

    ``base_pcs`` is the base state's *exact* PCS (one ``synthesize()``
    per rebase), which the MCTS driver reuses as the oracle's reference
    value instead of re-synthesizing.
    """

    def __init__(
        self,
        clock_period: float = 2.0,
        library: CellLibrary = DEFAULT_LIBRARY,
        strength: int = 1,
        delta_analysis: bool = True,
        calibrate: bool = True,
    ):
        self.clock_period = clock_period
        self.library = library
        self.strength = strength
        #: Route candidate scoring through the analyzer's dirty-cone
        #: delta mode (baseline captured at each rebase).  ``False``
        #: keeps the full-fixpoint reference path.
        self.delta_analysis = delta_analysis
        #: Anchor each rebase to the exact post-synthesis PCS (one
        #: ``synthesize()`` per rebase).  ``False`` -- the fast tier --
        #: skips that synthesis and scores on the raw redundancy
        #: estimate (``_scale`` stays 1.0).  The scale is a uniform
        #: multiplier, so *within-cone* comparisons (what the search
        #: ranks) are unaffected; only the absolute value stops being a
        #: calibrated PCS.
        self.calibrate = calibrate
        self.calls = 0
        self.patches = 0
        self.rebases = 0
        #: Delta-analysis outcomes accumulated across rebases (each
        #: rebase builds a fresh analyzer; its counters are absorbed
        #: here before it is replaced).
        self.analysis_delta_hits = 0
        self.analysis_fallbacks = 0
        self.analysis_divergences = 0
        self.base_pcs: float | None = None
        self._base_graph: CircuitGraph | None = None
        self._base: DeltaNetlist | None = None
        self._analyzer: RedundancyAnalyzer | None = None
        self._timing: IncrementalTiming | None = None
        self._scale = 1.0
        #: node id -> raw mapped area of its lowering in the base state.
        self._base_area: dict[int, float] = {}
        #: (node id, parent-width vector) -> raw mapped area.  A node's
        #: lowered gate structure depends only on its own schema and its
        #: ordered operand widths, so candidate-state areas are served
        #: from this memo without re-elaborating anything.
        self._area_memo: dict[tuple, float] = {}
        self._memo_nodes: list | None = None
        self._node_widths: list[int] = []

    # ------------------------------------------------------------------
    def rebase(self, graph: CircuitGraph, exact_pcs: float | None = None) -> None:
        """Anchor the lineage on ``graph`` and calibrate against exact PCS.

        A no-op when ``graph`` is already the anchored base object (the
        common case when a cone search accepted nothing), so the per-
        rebase ``synthesize()`` is only paid when the state changed.
        Callers that already synthesized this exact graph (the MCTS
        acceptance oracle) pass ``exact_pcs`` to skip the redundant run;
        PCS is clock-period independent (area / nodes), so any
        ``SynthesisReward`` value for the same graph is valid.
        """
        if self._base_graph is graph:
            return
        self.rebases += 1
        with span("incr.rebase", exact=exact_pcs is not None):
            self._rebase(graph, exact_pcs)

    def _rebase(
        self, graph: CircuitGraph, exact_pcs: float | None
    ) -> None:
        if exact_pcs is None and self.calibrate:
            exact_pcs = synthesize(
                graph, clock_period=self.clock_period, strength=self.strength,
                library=self.library, check=False, run_timing=False,
            ).pcs
        self._base_graph = graph
        # The tracked base elaboration is only needed by ``evaluate``'s
        # delta/timing diagnostics; the scoring path works entirely from
        # the per-node area memo, so it is built lazily.
        self._base = None
        self._absorb_analysis_counters()
        self._analyzer = RedundancyAnalyzer(graph, share_from=self._analyzer)
        self._timing = None
        self.base_pcs = exact_pcs
        # The (node, operand widths) -> area memo depends only on the
        # node schema, which is shared by every state of one search run
        # (accepted states are views over the same node storage); it
        # survives rebases and only resets for a genuinely new design.
        if self._memo_nodes is not graph._nodes:
            self._area_memo = {}
            self._memo_nodes = graph._nodes
        self._node_widths = [n.width for n in graph.nodes()]
        dff_area = self.library.cell("DFF", self.strength).area
        comb = self._analyzer._comb
        base_area: dict[int, float] = {}
        for node in graph.nodes():
            if node.id in comb:
                base_area[node.id] = self._rewired_area(graph, node.id)
            elif node.type is NodeType.REG:
                # Identical float fold as summing the artifact's DFF
                # gate areas one by one.
                base_area[node.id] = sum(dff_area for _ in range(node.width))
            else:
                base_area[node.id] = 0.0
        self._base_area = base_area
        base_report = self._analyzer.analyze(graph)
        if self.delta_analysis:
            # Anchor the analyzer's dirty-cone mode on this converged
            # base state; candidate scoring then re-runs the fixpoint
            # only over each edit's affected cone.
            self._analyzer.capture_baseline(graph, base_report)
        estimate = self._area_of(base_report)
        if exact_pcs is None:
            # Uncalibrated (fast-tier) rebase: the base value IS the
            # estimate, so the scale folds to exactly 1.0 and the per-
            # rebase synthesize() is never paid.
            exact_pcs = estimate / max(graph.num_nodes, 1)
            self.base_pcs = exact_pcs
        self._scale = exact_pcs * graph.num_nodes / estimate if estimate else 1.0

    def _absorb_analysis_counters(self) -> None:
        analyzer = self._analyzer
        if analyzer is not None:
            self.analysis_delta_hits += analyzer.delta_hits
            self.analysis_fallbacks += analyzer.delta_fallbacks
            self.analysis_divergences += analyzer.delta_divergences

    def analysis_counters(self) -> tuple[int, int, int]:
        """(delta hits, fallbacks, divergences) including the live
        analyzer's tallies."""
        analyzer = self._analyzer
        extra = (
            (analyzer.delta_hits, analyzer.delta_fallbacks,
             analyzer.delta_divergences)
            if analyzer is not None else (0, 0, 0)
        )
        return (
            self.analysis_delta_hits + extra[0],
            self.analysis_fallbacks + extra[1],
            self.analysis_divergences + extra[2],
        )

    # ------------------------------------------------------------------
    def _area_of(
        self,
        report: RedundancyReport,
        overrides: dict[int, float] | None = None,
    ) -> float:
        """Raw area of the report's surviving nodes.

        Untouched nodes keep their base-state areas; ``overrides``
        carries the (memoized) areas of nodes whose parent widths the
        candidate's rewires changed.  The summation order matches the
        historical delta-artifact path bit for bit.
        """
        base_area = self._base_area
        if not overrides:
            return sum(base_area[v] for v in report.survivors())
        return sum(
            overrides[v] if v in overrides else base_area[v]
            for v in report.survivors()
        )

    def _rewired_area(self, graph: CircuitGraph, v: int) -> float:
        """Raw mapped area of node ``v`` under the candidate's wiring.

        Lowered gate structure is a pure function of (node schema,
        ordered operand widths): operand bits are only ever consumed
        through zero-extension or truncation to static widths, never
        through operand identity.  The memo therefore replaces the
        per-candidate dirty-cone re-elaboration the reward used to pay.
        """
        widths = self._node_widths
        parents = graph.filled_parents(v)
        key = (v, tuple([widths[p] for p in parents]))
        area = self._area_memo.get(key)
        if area is None:
            from ..synth.elaborate import _Elaborator

            scratch = _AreaScratch()
            bits = {p: list(range(2, 2 + widths[p])) for p in parents}
            _Elaborator(graph, netlist=scratch, bits=bits)._lower_comb(v)
            library, strength = self.library, self.strength
            # Same float fold as summing the real artifact's gate areas.
            area = sum(
                library.cell(kind, strength).area for kind in scratch.kinds
            )
            self._area_memo[key] = area
        return area

    def _touched_vs_base(self, graph: CircuitGraph) -> list[int] | None:
        touched = self._trace_touched(graph)
        if touched is None:
            touched = graph.structural_delta(self._base_graph)
        return touched

    def _ensure_base_delta(self) -> DeltaNetlist:
        """The tracked elaboration of the base, built on first use."""
        if self._base is None:
            self._base = DeltaNetlist.from_graph(self._base_graph, check=False)
        return self._base

    def _delta_for(self, graph: CircuitGraph) -> DeltaNetlist:
        if self._base_graph is None:
            self.rebase(graph)
        if graph is self._base_graph:
            return self._ensure_base_delta()
        base = self._ensure_base_delta()
        delta = base.apply_edit(graph, self._trace_touched(graph))
        if delta.parent is None:
            # Schema changed: a different design, not an edit -- the
            # calibration must be re-anchored too.
            self.rebase(graph)
            return self._ensure_base_delta()
        self.patches += 1
        return delta

    def _trace_touched(self, graph: CircuitGraph) -> list[int] | None:
        """Touched nodes recovered from ``apply_swap`` edit provenance.

        Each swap successor records its predecessor state and the two
        rewired nodes (``graph.edit_origin``); when the chain reaches
        the anchored base, the union of rewired nodes is a (tight)
        superset of the diff and the O(nodes) graph comparison is
        skipped.  Returns ``None`` when the chain does not reach the
        base, falling back to :meth:`CircuitGraph.structural_delta`.
        """
        base_graph = self._base_graph
        touched: set[int] = set()
        node = graph
        for _ in range(256):
            origin = getattr(node, "edit_origin", None)
            if origin is None:
                return None
            node, rewired = origin
            touched.update(rewired)
            if node is base_graph:
                return sorted(touched)
        return None

    def __call__(
        self, graph: CircuitGraph, cone: object = None
    ) -> float:
        self.calls += 1
        if self._base_graph is None:
            self.rebase(graph)
        if graph is self._base_graph:
            return self.base_pcs
        touched = self._touched_vs_base(graph)
        if touched is None:
            # Different schema: a new design, re-anchor everything.
            self.rebase(graph)
            return self.base_pcs
        if not touched:
            return self.base_pcs
        self.patches += 1
        report = self._analyzer.analyze(graph, touched=touched)
        comb = self._analyzer._comb
        # Only the rewired nodes' own areas can differ from base (their
        # operand widths changed); REG/OUT lowerings are width-static.
        overrides = {
            v: self._rewired_area(graph, v) for v in touched if v in comb
        }
        sanitizer = current_sanitizer()
        if sanitizer is not None and overrides:
            # S006: memo-served areas vs fresh single-node lowerings.
            sanitizer.check_area_memo(self, graph, overrides)
        area = self._area_of(report, overrides)
        return self._scale * area / max(graph.num_nodes, 1)

    # ------------------------------------------------------------------
    def evaluate(self, graph: CircuitGraph) -> IncrementalEval:
        """Scored candidate plus raw area, survivor count and timing.

        Timing comes from :class:`IncrementalTiming` anchored on the
        current base -- a dirty-cone update, not a full ``synth.timing``
        pass.
        """
        self.calls += 1
        delta = self._delta_for(graph)
        sanitizer = current_sanitizer()
        if sanitizer is not None:
            # S003: audit the diagnostic delta's patch lineage.
            sanitizer.check_delta(delta)
        report = self._analyzer.analyze(delta.graph)
        survivors = report.survivors()
        surviving = sum(
            delta.node_area(v, self.library, self.strength)
            for v in survivors
        )
        if self._timing is None:
            self._timing = IncrementalTiming(
                self._ensure_base_delta(), self.clock_period,
                self.library, self.strength,
            )
        timing = self._timing.update(delta)
        if sanitizer is not None:
            # S004: overlay-assembled report vs a fresh STA.
            sanitizer.check_timing(self._timing, delta, timing)
        return IncrementalEval(
            pcs=self._scale * surviving / max(graph.num_nodes, 1),
            raw_area=delta.total_area(self.library, self.strength),
            surviving_area=surviving,
            survivors=len(survivors),
            patched=len(delta.patched),
            timing=timing,
        )


class DeltaOracle:
    """Exact acceptance oracle rebuilt on the delta substrate.

    Drop-in for :class:`~repro.mcts.reward.SynthesisReward` in the
    acceptance role: instead of re-elaborating the whole candidate
    design, the candidate's netlist is assembled as
    ``base.apply_edit(...).materialize()`` against the incremental
    engine's anchored base -- O(dirty cone) elaboration work -- and only
    the gate-level optimizer runs at full scale.  Because ``_assemble``
    reproduces the fresh-elaboration gate *sequence* (not merely the
    gate population) and the optimizer is deterministic over that
    sequence, the same order-faithful ``total_area`` fold the full
    ``synthesize`` path uses makes the two paths' PCS values
    bit-identical, not merely ulp-close (asserted continuously by the
    differential fuzz tier).

    Candidates whose lineage does not reach the engine's base (schema
    change, severed provenance) fall back to a fresh
    ``elaborate`` -- same optimizer, same area fold.  Any
    unexpected exception on the delta path counts as a divergence and
    flips ``delta_enabled`` off for the rest of the run, so a broken
    shortcut degrades to the reference path instead of corrupting
    acceptance decisions.
    """

    def __init__(
        self,
        engine: IncrementalReward,
        library: CellLibrary = DEFAULT_LIBRARY,
        strength: int = 1,
    ):
        self.engine = engine
        self.library = library
        self.strength = strength
        #: Flipped off permanently (for this oracle) on the first
        #: unexpected delta-path exception.
        self.delta_enabled = True
        self.calls = 0
        self.delta_hits = 0
        self.fallbacks = 0
        self.divergences = 0

    def counters(self) -> tuple[int, int, int]:
        """(delta hits, fallbacks, divergences)."""
        return (self.delta_hits, self.fallbacks, self.divergences)

    # ------------------------------------------------------------------
    def _materialized_delta(self, graph: CircuitGraph) -> Netlist | None:
        """Candidate netlist via the engine's delta lineage, or ``None``
        when the candidate is not patch-reachable from the base."""
        engine = self.engine
        base_graph = engine._base_graph
        if base_graph is None:
            return None
        if graph is base_graph:
            return self._assemble(engine._ensure_base_delta())
        touched = engine._touched_vs_base(graph)
        if touched is None:
            return None
        delta = engine._ensure_base_delta().apply_edit(graph, touched)
        if delta.parent is None:
            return None
        return self._assemble(delta)

    @staticmethod
    def _assemble(delta: "DeltaNetlist") -> Netlist:
        """``materialize()`` in fresh-elaboration gate order.

        The optimizer's fixpoint is gate-*order*-sensitive inside
        register feedback (which duplicate survives structural hashing,
        whether a stuck-register fold is discovered), so node-id
        concatenation can optimize to a different gate population than
        the reference path.  Emitting the shared artifacts in exactly
        the order ``elaborate`` would -- comb nodes in the elaborator's
        topological order, then register DFFs, then outputs -- makes
        the gate-kind sequence identical to a fresh elaboration (nets
        differ only by a renumbering the passes are invariant to), so
        the optimized gate *sequence* -- and with it the order-faithful
        ``total_area`` fold -- bit-matches the reference path.
        """
        from ..synth.elaborate import _Elaborator

        graph = delta.graph
        artifacts = delta.artifacts
        nl = Netlist(
            name=delta.name,
            num_nets=delta.num_nets,
            const0=delta.const0,
            const1=delta.const1,
        )
        gates = nl.gates
        for v in sorted(artifacts):
            nl.primary_inputs.extend(artifacts[v].pis)
        for v in _Elaborator(graph)._comb_topo_order():
            gates.extend(artifacts[v].gates)
        for reg in graph.registers():
            art = artifacts[reg]
            gates.extend(art.gates)
            for b, q in enumerate(art.bits):
                nl.dff_origin[q] = (reg, b)
        for out in graph.outputs():
            nl.primary_outputs.extend(artifacts[out].pos)
        return nl

    def __call__(
        self, graph: CircuitGraph, cone: object = None
    ) -> float:
        self.calls += 1
        netlist: Netlist | None = None
        if self.delta_enabled:
            try:
                netlist = self._materialized_delta(graph)
            except Exception:
                # A delta-path bug must never sink acceptance: record
                # the divergence and run the reference path from here on.
                self.divergences += 1
                self.delta_enabled = False
                netlist = None
        if netlist is None:
            self.fallbacks += 1
            netlist = elaborate(graph, check=False)
        else:
            self.delta_hits += 1
        optimized, _ = optimize_netlist(netlist, check=False)
        area = total_area(optimized, self.library, self.strength)
        nodes = graph.num_nodes
        return area / nodes if nodes else 0.0
