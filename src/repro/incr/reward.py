"""Incremental reward evaluation for the MCTS hot loop.

:class:`IncrementalReward` replaces the per-candidate full
``synthesize()`` call of the exact PCS reward with:

1. a delta re-elaboration of the candidate against the cone search's
   base state (:class:`~repro.incr.delta.DeltaNetlist`), giving exact
   raw per-node gate areas while touching only the dirty cone, and
2. a word-level redundancy analysis
   (:func:`~repro.incr.analysis.analyze_redundancy`) predicting which
   nodes the gate-level optimizer would remove,

then scores ``surviving raw area / RTL nodes``, calibrated at
:meth:`rebase` so the base state's score equals its exact post-synthesis
PCS.  The estimate ranks candidate rewrites; acceptance is still gated
by the exact ``synthesize()`` oracle in
:func:`repro.mcts.optimize.optimize_registers` (the full-resynthesis
reference path, ``MCTSConfig.incremental=False``, stays available).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import CircuitGraph
from ..synth.flow import synthesize
from ..synth.library import DEFAULT_LIBRARY, CellLibrary
from ..synth.timing import TimingReport
from .analysis import RedundancyAnalyzer
from .delta import DeltaNetlist
from .timing import IncrementalTiming


@dataclass
class IncrementalEval:
    """Full diagnostics for one candidate evaluation."""

    pcs: float
    raw_area: float
    surviving_area: float
    survivors: int
    patched: int
    timing: TimingReport | None = None


class IncrementalReward:
    """Delta-driven approximate PCS with the exact reward's protocol.

    Callable as ``reward(graph, cone) -> float`` like every reward in
    :mod:`repro.mcts.reward`.  ``rebase`` anchors the delta lineage (and
    the calibration) on a new base state; calling the reward with a
    graph whose node schema differs from the base rebases automatically,
    so the callable is safe to use standalone.

    ``base_pcs`` is the base state's *exact* PCS (one ``synthesize()``
    per rebase), which the MCTS driver reuses as the oracle's reference
    value instead of re-synthesizing.
    """

    def __init__(
        self,
        clock_period: float = 2.0,
        library: CellLibrary = DEFAULT_LIBRARY,
        strength: int = 1,
    ):
        self.clock_period = clock_period
        self.library = library
        self.strength = strength
        self.calls = 0
        self.patches = 0
        self.rebases = 0
        self.base_pcs: float | None = None
        self._base: DeltaNetlist | None = None
        self._analyzer: RedundancyAnalyzer | None = None
        self._timing: IncrementalTiming | None = None
        self._scale = 1.0

    # ------------------------------------------------------------------
    def rebase(self, graph: CircuitGraph, exact_pcs: float | None = None) -> None:
        """Anchor the lineage on ``graph`` and calibrate against exact PCS.

        A no-op when ``graph`` is already the anchored base object (the
        common case when a cone search accepted nothing), so the per-
        rebase ``synthesize()`` is only paid when the state changed.
        Callers that already synthesized this exact graph (the MCTS
        acceptance oracle) pass ``exact_pcs`` to skip the redundant run;
        PCS is clock-period independent (area / nodes), so any
        ``SynthesisReward`` value for the same graph is valid.
        """
        if self._base is not None and self._base.graph is graph:
            return
        self.rebases += 1
        if exact_pcs is None:
            exact_pcs = synthesize(
                graph, clock_period=self.clock_period, strength=self.strength,
                library=self.library, check=False,
            ).pcs
        self._base = DeltaNetlist.from_graph(graph, check=False)
        self._analyzer = RedundancyAnalyzer(graph)
        self._timing = None
        self.base_pcs = exact_pcs
        estimate = self._area_of(self._base, self._analyzer.analyze(graph))
        self._scale = exact_pcs * graph.num_nodes / estimate if estimate else 1.0

    # ------------------------------------------------------------------
    def _area_of(self, delta: DeltaNetlist, report) -> float:
        artifacts = delta.artifacts
        library, strength = self.library, self.strength
        return sum(
            artifacts[v].area(library, strength)
            for v in report.survivors()
        )

    def _surviving_area(self, delta: DeltaNetlist) -> float:
        return self._area_of(delta, self._analyzer.analyze(delta.graph))

    def _touched_vs_base(self, graph: CircuitGraph) -> list[int] | None:
        touched = self._trace_touched(graph)
        if touched is None:
            touched = graph.structural_delta(self._base.graph)
        return touched

    def _delta_for(self, graph: CircuitGraph) -> DeltaNetlist:
        if self._base is None:
            self.rebase(graph)
        base_graph = self._base.graph
        if graph is base_graph:
            return self._base
        delta = self._base.apply_edit(graph, self._trace_touched(graph))
        if delta.parent is None:
            # Schema changed: a different design, not an edit -- the
            # calibration must be re-anchored too.
            self.rebase(graph)
            return self._base
        self.patches += 1
        return delta

    def _trace_touched(self, graph: CircuitGraph) -> list[int] | None:
        """Touched nodes recovered from ``apply_swap`` edit provenance.

        Each swap successor records its predecessor state and the two
        rewired nodes (``graph.edit_origin``); when the chain reaches
        the anchored base, the union of rewired nodes is a (tight)
        superset of the diff and the O(nodes) graph comparison is
        skipped.  Returns ``None`` when the chain does not reach the
        base, falling back to :meth:`CircuitGraph.structural_delta`.
        """
        base_graph = self._base.graph
        touched: set[int] = set()
        node = graph
        for _ in range(256):
            origin = getattr(node, "edit_origin", None)
            if origin is None:
                return None
            node, rewired = origin
            touched.update(rewired)
            if node is base_graph:
                return sorted(touched)
        return None

    def __call__(self, graph: CircuitGraph, cone=None) -> float:
        self.calls += 1
        if self._base is None:
            self.rebase(graph)
        if graph is self._base.graph:
            return self.base_pcs
        touched = self._touched_vs_base(graph)
        if touched is None:
            # Different schema: a new design, re-anchor everything.
            self.rebase(graph)
            return self.base_pcs
        if not touched:
            return self.base_pcs
        self.patches += 1
        delta = self._base.apply_edit(graph, touched)
        area = self._area_of(
            delta, self._analyzer.analyze(graph, touched=touched)
        )
        return self._scale * area / max(graph.num_nodes, 1)

    # ------------------------------------------------------------------
    def evaluate(self, graph: CircuitGraph) -> IncrementalEval:
        """Scored candidate plus raw area, survivor count and timing.

        Timing comes from :class:`IncrementalTiming` anchored on the
        current base -- a dirty-cone update, not a full ``synth.timing``
        pass.
        """
        self.calls += 1
        delta = self._delta_for(graph)
        report = self._analyzer.analyze(delta.graph)
        survivors = report.survivors()
        surviving = sum(
            delta.node_area(v, self.library, self.strength)
            for v in survivors
        )
        if self._timing is None:
            self._timing = IncrementalTiming(
                self._base, self.clock_period, self.library, self.strength
            )
        return IncrementalEval(
            pcs=self._scale * surviving / max(graph.num_nodes, 1),
            raw_area=delta.total_area(self.library, self.strength),
            surviving_area=surviving,
            survivors=len(survivors),
            patched=len(delta.patched),
            timing=self._timing.update(delta),
        )
