"""Word-level redundancy analysis: which nodes survive synthesis.

The exact reward runs the gate-level optimizer
(:func:`repro.synth.passes.optimize`) on every candidate -- a global
fixpoint over hundreds of gates, the dominant cost of the MCTS reward
path.  This module predicts the optimizer's effect directly on the
*word-level* IR (tens of nodes): constant folding, identity/alias
collapsing, duplicate-structure merging and dead-code elimination are
mirrored with whole-word rules, and the surviving nodes keep the raw
per-node gate areas supplied by a :class:`~repro.incr.delta.DeltaNetlist`.

The result is an estimate, not the oracle: it works at word granularity
(a half-constant word still counts as surviving) and cannot see
bit-level recombination.  The MCTS driver therefore keeps the full
``synthesize()`` PCS as the acceptance oracle; this analysis only has to
*rank* candidate rewrites, which the same redundancy mechanisms dominate.

:class:`RedundancyAnalyzer` precomputes all schema-static per-node data
(types, widths, masks, params, a near-topological evaluation order)
once, so re-analyzing each of a search's candidate states -- same
schema, different wiring -- costs one short fixpoint over the node list.

With a baseline captured (:meth:`RedundancyAnalyzer.capture_baseline`,
done at every :meth:`~repro.incr.reward.IncrementalReward.rebase`), the
analyzer additionally runs a *dirty-cone* delta mode: starting from the
base state's converged references, only the edit's affected cone -- the
touched nodes from swap provenance plus everything their reference
changes reach through fanout edges and duplicate-merge aliasing -- is
re-run through the fixpoint rules; every other node keeps its converged
value.  The delta mode is exact (bit-identical reports to the full
fixpoint, enforced by the differential fuzz suite and the ``S007``
sanitizer rule) because it falls back to the full pass whenever a
precondition it cannot cheaply re-establish is violated: a register's
reference moving, an edit reaching the justification cone of a
constant-folded register (where fixpoints are not unique), or the
worklist failing to settle within the round budget.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from ..ir import CircuitGraph, NodeType
from ..lint.sanitize import current_sanitizer as _current_sanitizer
from ..synth.elaborate import MUL_WIDTH_CAP as _MUL_WIDTH_CAP

#: Node "value" references: ``("c", value)`` for a folded constant,
#: ``("n", rep, width)`` for the word computed by node ``rep`` seen
#: through ``width`` significant bits.
Ref = tuple

_COMMUTATIVE = frozenset((
    NodeType.AND, NodeType.OR, NodeType.XOR, NodeType.ADD, NodeType.MUL,
    NodeType.EQ,
))

#: Types whose value reference never changes during the fixpoint.
_FIXED = frozenset((NodeType.IN, NodeType.CONST, NodeType.OUT))


@dataclass
class RedundancyReport:
    """Outcome of one analysis over one graph state."""

    refs: list[Ref]
    #: Nodes whose own gates survive (not folded / aliased / merged).
    kept: set[int]
    #: Kept nodes that degenerate to pure rewiring (zero surviving area).
    rewired: set[int] = field(default_factory=set)
    #: Kept nodes reachable backwards from an output.
    live: set[int] = field(default_factory=set)
    rounds: int = 0

    def survivors(self) -> set[int]:
        """Nodes expected to contribute area after synthesis."""
        return (self.kept & self.live) - self.rewired


def _trunc(ref: Ref, width: int) -> Ref:
    if ref[0] == "c":
        return ("c", ref[1] & ((1 << width) - 1))
    return ("n", ref[1], min(ref[2], width))


#: Integer op codes for the analyze hot loop (enum dispatch is slow).
(_K_AND, _K_OR, _K_XOR, _K_ADD, _K_SUB, _K_MUL, _K_EQ, _K_LT, _K_SHIFT,
 _K_MUX, _K_REG, _K_WIRE, _K_UNARY) = range(13)

_TYPE_CODE = {
    NodeType.AND: _K_AND, NodeType.OR: _K_OR, NodeType.XOR: _K_XOR,
    NodeType.ADD: _K_ADD, NodeType.SUB: _K_SUB, NodeType.MUL: _K_MUL,
    NodeType.EQ: _K_EQ, NodeType.LT: _K_LT,
    NodeType.SHL: _K_SHIFT, NodeType.SHR: _K_SHIFT,
    NodeType.MUX: _K_MUX, NodeType.REG: _K_REG,
    NodeType.SLICE: _K_WIRE, NodeType.CONCAT: _K_WIRE,
    NodeType.NOT: _K_UNARY, NodeType.REDUCE_OR: _K_UNARY,
}


class RedundancyAnalyzer:
    """Schema-bound analyzer, reusable across candidate wirings.

    ``share_from`` reuses a previous analyzer's schema-static tables
    (types, masks, signatures, fold codes, ...) when both graphs share
    the same node storage -- the case for every rebase of one search
    run, whose states are copy-on-write views over one base.  Only the
    wiring-derived evaluation order is recomputed then.
    """

    def __init__(
        self,
        graph: CircuitGraph,
        share_from: "RedundancyAnalyzer | None" = None,
    ):
        nodes = list(graph.nodes())
        self._schema_nodes = graph._nodes
        if (share_from is not None
                and share_from._schema_nodes is graph._nodes):
            self.num_nodes = share_from.num_nodes
            self.types = share_from.types
            self.widths = share_from.widths
            self.masks = share_from.masks
            self.slice_lo = share_from.slice_lo
            self.static_sig = share_from.static_sig
            self.commutative = share_from.commutative
            self.codes = share_from.codes
            self.init_refs = share_from.init_refs
            self.outputs = share_from.outputs
            self.static_rewired = share_from.static_rewired
            self._comb = share_from._comb
            self._keepable = share_from._keepable
        else:
            self.num_nodes = len(nodes)
            self.types = [n.type for n in nodes]
            self.widths = [n.width for n in nodes]
            self.masks = [(1 << n.width) - 1 for n in nodes]
            self.slice_lo = [int(n.params.get("lo", 0)) for n in nodes]
            #: Schema-static dedup-signature prefix per node.
            self.static_sig = [
                (n.type.value, n.width, tuple(sorted(n.params.items())))
                for n in nodes
            ]
            self.commutative = [n.type in _COMMUTATIVE for n in nodes]
            self.codes = [_TYPE_CODE.get(n.type, -1) for n in nodes]
            #: Initial refs: constants fold immediately, everything else
            #: is its own representative.
            self.init_refs = [
                ("c", int(n.params.get("value", 0)) & self.masks[n.id])
                if n.type is NodeType.CONST else ("n", n.id, n.width)
                for n in nodes
            ]
            self.outputs = graph.outputs()
            #: SLICE / CONCAT never emit gates; rewiring is static.
            self.static_rewired = frozenset(
                n.id for n in nodes
                if n.type in (NodeType.SLICE, NodeType.CONCAT)
            )
            self._comb = {
                n.id for n in nodes
                if n.type not in (NodeType.IN, NodeType.CONST, NodeType.REG,
                                  NodeType.OUT)
            }
            #: Nodes that can appear in ``kept`` at all (schema-static).
            self._keepable = [
                n.id for n in nodes if n.type not in _FIXED
            ]
        #: Evaluation order: combinational topo order of the *analyzer's*
        #: graph, then registers.  For candidate states with rewired
        #: edges the order is only near-topological; the fixpoint rounds
        #: absorb the difference.
        from .delta import comb_topo_order

        self.order = [
            *comb_topo_order(graph, self._comb),
            *(n.id for n in nodes if n.type is NodeType.REG),
        ]
        self._pos = {v: i for i, v in enumerate(self.order)}
        #: Per-node static fields pre-zipped in evaluation order, so the
        #: fixpoint loop does one tuple unpack instead of five indexed
        #: list reads per node per round.
        self._order_static = [
            (v, self.codes[v], self.widths[v], self.masks[v],
             self.commutative[v], self.static_sig[v],
             v in self.static_rewired)
            for v in self.order
        ]
        # --- delta-mode baseline (captured explicitly per rebase) ---
        #: Delta-mode outcome counters; ``delta_fallbacks`` is broken
        #: down by reason in ``fallback_reasons``.
        self.delta_hits = 0
        self.delta_fallbacks = 0
        self.delta_divergences = 0
        self.fallback_reasons: dict[str, int] = {}
        self._b_graph: CircuitGraph | None = None
        self._b_refs: list[Ref] = []
        self._b_rewired: set[int] = set()
        #: Converged dedup table: key -> the (unique) self-representative
        #: node owning it in the baseline state.
        self._b_owner: dict[tuple, int] = {}
        #: Owner node -> its baseline dedup key (to detect a dirty owner
        #: whose reference survives an edit but whose key moved).
        self._b_key: dict[int, tuple] = {}
        #: Representative -> baseline nodes whose reference names it
        #: (dedup aliases and identity pass-throughs); these have no
        #: graph edge to their representative, so reference changes must
        #: wake them explicitly.
        self._b_deps: dict[int, list[int]] = {}
        #: Nodes inside the justification cone of a register whose
        #: baseline reference folded or aliased.  Such folds can be
        #: self-sustaining through the register feedback cycle, where
        #: the fixpoint is not unique; edits reaching this set fall back
        #: to the full pass.
        self._b_guard: frozenset[int] = frozenset()

    # ------------------------------------------------------------------
    def capture_baseline(
        self, graph: CircuitGraph, report: RedundancyReport
    ) -> None:
        """Snapshot ``report`` (a converged full analysis of ``graph``)
        as the delta-mode baseline.

        Derives the converged dedup ownership table, the alias
        dependents map, and the folded-register guard set; subsequent
        :meth:`analyze` calls with ``touched`` then re-run the fixpoint
        only over the edit's affected cone.
        """
        refs = report.refs
        parents = graph.filled_rows()
        owner: dict[tuple, int] = {}
        keys: dict[int, tuple] = {}
        deps: dict[int, list[int]] = {}
        widths = self.widths
        folded_regs: list[int] = []
        for v, code, _w, _mask, commutative_v, sig_v, _rw in (
            self._order_static
        ):
            ref = refs[v]
            if ref[0] == "n":
                rep = ref[1]
                if rep == v:
                    canon = tuple([refs[p] for p in parents[v]])
                    if commutative_v:
                        canon = tuple(sorted(canon))
                    key = (sig_v, canon)
                    owner[key] = v
                    keys[v] = key
                else:
                    deps.setdefault(rep, []).append(v)
                    if code == _K_REG:
                        folded_regs.append(v)
            elif code == _K_REG:
                folded_regs.append(v)
        guard: set[int] = set()
        if folded_regs:
            # Everything a folded register's justification could rest
            # on: its transitive fan-in through base edges (registers
            # included -- justifications can thread through other
            # folded registers).
            stack = list(folded_regs)
            while stack:
                v = stack.pop()
                if v in guard:
                    continue
                guard.add(v)
                stack.extend(parents[v])
        self._b_graph = graph
        self._b_refs = list(refs)
        self._b_rewired = set(report.rewired)
        self._b_owner = owner
        self._b_key = keys
        self._b_deps = deps
        self._b_guard = frozenset(guard)

    # ------------------------------------------------------------------
    def analyze(
        self,
        graph: CircuitGraph,
        max_rounds: int = 8,
        touched: Iterable[int] | None = None,
    ) -> RedundancyReport:
        """Fixpoint constant/alias/duplicate/dead analysis of ``graph``.

        ``touched`` (optional) names the nodes whose parents differ from
        the analyzer's construction graph.  With a captured baseline the
        analysis then runs in delta mode -- the fixpoint re-visits only
        the affected cone and reuses converged baseline values
        everywhere else, falling back to the full pass when a delta
        precondition fails.  Without a baseline, ``touched`` still
        enables the single-round convergence check of the full pass.
        """
        # Bulk read-only wiring snapshot: memoized on the graph (and for
        # copy-on-write views derived from the base's snapshot), so one
        # candidate evaluation no longer pays num_nodes method calls.
        parents = graph.filled_rows()
        if touched is not None and self._b_graph is not None:
            report = None
            try:
                report = self._delta_analyze(
                    graph, parents, touched, max_rounds
                )
            except Exception:
                # A delta-path bug must never sink the search: record
                # the divergence, flip to the full path for good (the
                # driver surfaces both via OptimizationReport).
                self.delta_divergences += 1
                self._b_graph = None
            if report is not None:
                self.delta_hits += 1
                sanitizer = _current_sanitizer()
                if sanitizer is not None:
                    # S007: delta-mode report vs the full fixpoint.
                    sanitizer.check_analysis(self, graph, touched, report)
                return report
        return self.full_analyze(graph, max_rounds=max_rounds,
                                 touched=touched, parents=parents)

    def full_analyze(
        self,
        graph: CircuitGraph,
        max_rounds: int = 8,
        touched: Iterable[int] | None = None,
        parents: list[list[int]] | None = None,
    ) -> RedundancyReport:
        """The full (non-delta) fixpoint over every node."""
        if parents is None:
            parents = graph.filled_rows()
        refs = list(self.init_refs)
        rewired: set[int] = set(self.static_rewired)
        single_round_ok = touched is not None and self._order_valid(
            parents, touched
        )
        rounds = self._fixpoint(
            parents, refs, rewired, self._order_static, max_rounds,
            single_round_ok=single_round_ok,
        )
        return self._report(parents, refs, rewired, rounds)

    def _delta_fallback(self, reason: str) -> None:
        self.delta_fallbacks += 1
        self.fallback_reasons[reason] = (
            self.fallback_reasons.get(reason, 0) + 1
        )
        return None

    def _delta_analyze(
        self,
        graph: CircuitGraph,
        parents: list[list[int]],
        touched: Iterable[int],
        max_rounds: int,
    ) -> RedundancyReport | None:
        """Dirty-cone fixpoint from the converged baseline.

        Returns ``None`` (recording the reason) whenever a precondition
        for bit-identity with the full pass cannot be re-established:

        * a touched or woken node lies in the folded-register guard set
          (register-feedback fixpoints are not unique there);
        * a register's reference moves off its baseline value (the
          register boundary must stay pinned for the combinational part
          to have a unique grounded fixpoint);
        * the worklist has not settled within ``max_rounds``.

        Everything else mirrors the full pass exactly: the rule
        dispatch is a copy of :meth:`_fixpoint`'s (the differential
        fuzz suite pins the two against each other), and duplicate
        merging resolves each key to the earliest-in-order claimant
        among this round's dirty claimants and the still-clean baseline
        owner.
        """
        pos = self._pos
        guard = self._b_guard
        dirty: set[int] = set()
        for v in touched:
            if v in guard:
                return self._delta_fallback("folded_reg_cone")
            if v in pos:
                dirty.add(v)
        b_refs = self._b_refs
        refs = list(b_refs)
        rewired = set(self._b_rewired)
        if not dirty:
            # Only IN/CONST/OUT rows changed: references are fixed
            # there, but liveness still follows the new wiring.
            return self._report(parents, refs, rewired, 0)
        types, widths = self.types, self.widths
        codes, masks = self.codes, self.masks
        commutative, static_sig = self.commutative, self.static_sig
        static_rewired = self.static_rewired
        owner_by_key = self._b_owner
        b_key = self._b_key
        b_deps = self._b_deps
        child_map: list[list[int]] | None = None
        rounds = 0
        converged = False
        for rounds in range(1, max_rounds + 1):
            changed = False
            dirty_seen: dict[tuple, tuple[int, Ref]] = {}
            pending: list[int] = []
            for v in sorted(dirty, key=pos.__getitem__):
                code = codes[v]
                w = widths[v]
                mask = masks[v]
                commutative_v = commutative[v]
                sig_v = static_sig[v]
                pv = parents[v]
                ref = None
                rewire = v in static_rewired

                if code == _K_REG:
                    if pv:
                        d = refs[pv[0]]
                        if d[0] == "c":
                            ref = ("c", d[1] & mask)
                        elif d[1] == v:
                            ref = ("c", 0)
                elif code == _K_MUX:
                    sel = refs[pv[0]]
                    a = refs[pv[1]]
                    b = refs[pv[2]]
                    if sel[0] == "c":
                        if a[0] == "c" and b[0] == "c":
                            ref = ("c",
                                   (a[1] if sel[1] != 0 else b[1]) & mask)
                        else:
                            ref = _trunc(a if sel[1] != 0 else b, w)
                    elif a == b:
                        ref = _trunc(a, w)
                elif code == _K_UNARY:
                    a = refs[pv[0]]
                    if a[0] == "c":
                        ref = ("c", self._fold(v, types[v], w,
                                               [a[1]], None) & mask)
                elif code == _K_WIRE:
                    consts = [refs[p][1] for p in pv
                              if refs[p][0] == "c"]
                    if len(consts) == len(pv):
                        pwidths = [widths[p] for p in pv]
                        ref = ("c", self._fold(v, types[v], w,
                                               consts, pwidths) & mask)
                else:
                    a = refs[pv[0]]
                    b = refs[pv[1]]
                    ca = a[1] if a[0] == "c" else None
                    cb = b[1] if b[0] == "c" else None
                    if ca is not None and cb is not None:
                        pwidths = [widths[pv[0]], widths[pv[1]]]
                        ref = ("c", self._fold(v, types[v], w,
                                               [ca, cb], pwidths) & mask)
                    elif code == _K_AND or code == _K_OR:
                        absorbing = 0 if code == _K_AND else mask
                        identity = mask ^ absorbing
                        for c, other in ((ca, b), (cb, a)):
                            if c is None:
                                continue
                            cw = c & mask
                            if cw == absorbing:
                                ref = ("c", absorbing)
                                break
                            if cw == identity:
                                ref = _trunc(other, w)
                                break
                        if ref is None and a == b:
                            ref = _trunc(a, w)
                    elif code == _K_XOR:
                        if a == b:
                            ref = ("c", 0)
                        elif ca is not None and (ca & mask) == 0:
                            ref = _trunc(b, w)
                        elif cb is not None and (cb & mask) == 0:
                            ref = _trunc(a, w)
                    elif code == _K_ADD:
                        if ca is not None and (ca & mask) == 0:
                            ref = _trunc(b, w)
                        elif cb is not None and (cb & mask) == 0:
                            ref = _trunc(a, w)
                    elif code == _K_SUB:
                        if a == b:
                            ref = ("c", 0)
                        elif cb is not None and (cb & mask) == 0:
                            ref = _trunc(a, w)
                    elif code == _K_EQ:
                        if a == b:
                            ref = ("c", 1)
                    elif code == _K_LT:
                        if a == b:
                            ref = ("c", 0)
                    elif code == _K_MUL:
                        for c, other in ((ca, b), (cb, a)):
                            if c is None:
                                continue
                            if c == 0:
                                ref = ("c", 0)
                                break
                            if c == 1:
                                ref = _trunc(other, w)
                                break
                    elif code == _K_SHIFT:
                        if cb is not None:
                            if cb == 0:
                                ref = _trunc(a, w)
                            else:
                                rewire = True

                if ref is None:
                    ref = ("n", v, w)
                    canon = tuple([refs[p] for p in pv])
                    if commutative_v:
                        canon = tuple(sorted(canon))
                    key = (sig_v, canon)
                    # Earliest-in-order claimant wins: dirty claimants
                    # from this round vs the baseline owner (valid only
                    # while it stayed clean -- dirty owners re-claim
                    # through dirty_seen like everyone else).
                    u = owner_by_key.get(key)
                    best: tuple[int, Ref] | None = None
                    if u is not None and u != v and u not in dirty:
                        best = (pos[u], b_refs[u])
                    d_claim = dirty_seen.get(key)
                    if d_claim is not None and (
                        best is None or d_claim[0] < best[0]
                    ):
                        best = d_claim
                    if best is not None and best[0] < pos[v]:
                        ref = _trunc(best[1], w)
                    else:
                        dirty_seen[key] = (pos[v], ref)
                        if (u is not None and u != v and u not in dirty
                                and pos[u] > pos[v]):
                            # A later clean owner is displaced by this
                            # claim; it must re-resolve to an alias.
                            pending.append(u)
                        old_key = b_key.get(v)
                        if old_key is not None and old_key != key:
                            # v still represents itself but under a new
                            # key: baseline aliases keyed on the old one
                            # must re-resolve even though v's reference
                            # (their rule input) did not change.
                            deps = b_deps.get(v)
                            if deps:
                                pending.extend(deps)

                if refs[v] != ref:
                    if code == _K_REG:
                        # The register boundary must stay pinned to the
                        # baseline for the delta pass to share the full
                        # pass's (unique) grounded fixpoint.
                        return self._delta_fallback("reg_ref_changed")
                    refs[v] = ref
                    changed = True
                    if child_map is None:
                        child_map = graph.child_map()
                    pending.extend(child_map[v])
                    deps = b_deps.get(v)
                    if deps:
                        pending.extend(deps)
                if rewire != (v in rewired):
                    changed = True
                    if rewire:
                        rewired.add(v)
                    else:
                        rewired.discard(v)
            grew = False
            for u in pending:
                if u in guard:
                    return self._delta_fallback("folded_reg_cone")
                if u in pos and u not in dirty:
                    dirty.add(u)
                    grew = True
            if not changed and not grew:
                converged = True
                break
        if not converged:
            return self._delta_fallback("no_convergence")
        return self._report(parents, refs, rewired, rounds)

    def _order_valid(
        self, parents: list[list[int]], touched: Iterable[int]
    ) -> bool:
        """True when the touched nodes' parent edges respect the
        analyzer's combinational evaluation order."""
        pos, comb = self._pos, self._comb
        for v in touched:
            if v not in comb:
                continue  # REG/OUT read results only after the comb pass
            limit = pos[v]
            for p in parents[v]:
                if p in comb and pos[p] > limit:
                    return False
        return True

    def _report(
        self,
        parents: list[list[int]],
        refs: list[Ref],
        rewired: set[int],
        rounds: int,
    ) -> RedundancyReport:
        kept = {
            v for v in self._keepable
            if refs[v][0] == "n" and refs[v][1] == v
        }
        live = self._backward_live(parents, refs)
        return RedundancyReport(
            refs=refs, kept=kept, rewired=rewired, live=live, rounds=rounds,
        )

    def _fixpoint(
        self,
        parents: list[list[int]],
        refs: list[Ref],
        rewired: set[int],
        order: list[tuple],
        max_rounds: int,
        single_round_ok: bool = False,
    ) -> int:
        """Run rule rounds over ``order`` until stable; mutates
        ``refs`` / ``rewired`` in place, returns the round count.

        With ``single_round_ok`` (topologically valid order), the pass
        stops after round one unless a register's reference changed --
        registers are the only nodes evaluated after their consumers.
        """
        types, widths = self.types, self.widths
        rounds = 0
        reg_changed = False

        for rounds in range(1, max_rounds + 1):
            changed = False
            seen: dict[tuple, Ref] = {}
            for v, code, w, mask, commutative_v, sig_v, static_rw in order:
                pv = parents[v]
                ref = None
                rewire = static_rw

                if code == _K_REG:
                    if pv:
                        d = refs[pv[0]]
                        if d[0] == "c":
                            # Constant-register sweep (uninitialised-
                            # flop semantics, as in synth.passes).
                            ref = ("c", d[1] & mask)
                        elif d[1] == v:
                            # Next state == current: stuck at reset 0.
                            ref = ("c", 0)
                elif code == _K_MUX:
                    sel = refs[pv[0]]
                    a = refs[pv[1]]
                    b = refs[pv[2]]
                    if sel[0] == "c":
                        if a[0] == "c" and b[0] == "c":
                            ref = ("c",
                                   (a[1] if sel[1] != 0 else b[1]) & mask)
                        else:
                            ref = _trunc(a if sel[1] != 0 else b, w)
                    elif a == b:
                        ref = _trunc(a, w)
                elif code == _K_UNARY:
                    a = refs[pv[0]]
                    if a[0] == "c":
                        ref = ("c", self._fold(v, types[v], w,
                                               [a[1]], None) & mask)
                elif code == _K_WIRE:
                    consts = [refs[p][1] for p in pv
                              if refs[p][0] == "c"]
                    if len(consts) == len(pv):
                        pwidths = [widths[p] for p in pv]
                        ref = ("c", self._fold(v, types[v], w,
                                               consts, pwidths) & mask)
                else:
                    a = refs[pv[0]]
                    b = refs[pv[1]]
                    ca = a[1] if a[0] == "c" else None
                    cb = b[1] if b[0] == "c" else None
                    if ca is not None and cb is not None:
                        pwidths = [widths[pv[0]], widths[pv[1]]]
                        ref = ("c", self._fold(v, types[v], w,
                                               [ca, cb], pwidths) & mask)
                    elif code == _K_AND or code == _K_OR:
                        absorbing = 0 if code == _K_AND else mask
                        identity = mask ^ absorbing
                        for c, other in ((ca, b), (cb, a)):
                            if c is None:
                                continue
                            cw = c & mask
                            if cw == absorbing:
                                ref = ("c", absorbing)
                                break
                            if cw == identity:
                                ref = _trunc(other, w)
                                break
                        if ref is None and a == b:
                            ref = _trunc(a, w)
                    elif code == _K_XOR:
                        if a == b:
                            ref = ("c", 0)
                        elif ca is not None and (ca & mask) == 0:
                            ref = _trunc(b, w)
                        elif cb is not None and (cb & mask) == 0:
                            ref = _trunc(a, w)
                    elif code == _K_ADD:
                        if ca is not None and (ca & mask) == 0:
                            ref = _trunc(b, w)
                        elif cb is not None and (cb & mask) == 0:
                            ref = _trunc(a, w)
                    elif code == _K_SUB:
                        if a == b:
                            ref = ("c", 0)
                        elif cb is not None and (cb & mask) == 0:
                            ref = _trunc(a, w)
                    elif code == _K_EQ:
                        if a == b:
                            ref = ("c", 1)
                    elif code == _K_LT:
                        if a == b:
                            ref = ("c", 0)
                    elif code == _K_MUL:
                        for c, other in ((ca, b), (cb, a)):
                            if c is None:
                                continue
                            if c == 0:
                                ref = ("c", 0)
                                break
                            if c == 1:
                                ref = _trunc(other, w)
                                break
                    elif code == _K_SHIFT:
                        if cb is not None:
                            if cb == 0:
                                ref = _trunc(a, w)
                            else:
                                # Constant shift: the barrel-shifter
                                # muxes fold to rewiring.
                                rewire = True

                if ref is None:
                    ref = ("n", v, w)
                    # Duplicate merging, registers included (the DFF
                    # next-state merge of repro.synth.passes._dedupe).
                    canon = tuple([refs[p] for p in pv])
                    if commutative_v:
                        canon = tuple(sorted(canon))
                    key = (sig_v, canon)
                    prior = seen.get(key)
                    if prior is not None:
                        ref = _trunc(prior, w)
                    else:
                        seen[key] = ref

                if refs[v] != ref:
                    refs[v] = ref
                    changed = True
                    if code == _K_REG:
                        reg_changed = True
                if rewire != (v in rewired):
                    changed = True
                    if rewire:
                        rewired.add(v)
                    else:
                        rewired.discard(v)
            if not changed:
                break
            if single_round_ok and rounds == 1 and not reg_changed:
                break
        return rounds

    # ------------------------------------------------------------------
    def _fold(
        self,
        v: int,
        t: NodeType,
        w: int,
        consts: list[int],
        pwidths: list[int] | None,
    ) -> int:
        """Evaluate one operator over constant words (elaborate semantics)."""
        mask = (1 << w) - 1

        if t is NodeType.NOT:
            return ~(consts[0] & mask)
        if t is NodeType.REDUCE_OR:
            return 1 if consts[0] != 0 else 0
        if t is NodeType.SLICE:
            return consts[0] >> self.slice_lo[v]
        if t is NodeType.CONCAT:
            return consts[1] | (consts[0] << pwidths[1])
        if t is NodeType.AND:
            return consts[0] & consts[1] & mask
        if t is NodeType.OR:
            return (consts[0] | consts[1]) & mask
        if t is NodeType.XOR:
            return (consts[0] ^ consts[1]) & mask
        if t is NodeType.ADD:
            return (consts[0] & mask) + (consts[1] & mask)
        if t is NodeType.SUB:
            return (consts[0] & mask) - (consts[1] & mask)
        if t is NodeType.MUL:
            wa = min(pwidths[0], _MUL_WIDTH_CAP, w)
            wb = min(pwidths[1], _MUL_WIDTH_CAP, w)
            return (consts[0] & ((1 << wa) - 1)) * (consts[1] & ((1 << wb) - 1))
        if t is NodeType.EQ:
            return 1 if consts[0] == consts[1] else 0
        if t is NodeType.LT:
            return 1 if consts[0] < consts[1] else 0
        if t is NodeType.SHL:
            return (consts[0] & mask) << consts[1] if consts[1] < w else 0
        if t is NodeType.SHR:
            return (consts[0] & mask) >> consts[1] if consts[1] < w else 0
        if t is NodeType.MUX:
            return consts[1] if consts[0] != 0 else consts[2]
        raise ValueError(f"cannot fold node type {t}")  # pragma: no cover

    # ------------------------------------------------------------------
    def _backward_live(
        self, parents: list[list[int]], refs: list[Ref]
    ) -> set[int]:
        """Nodes reachable backwards from the primary outputs.

        Traversal follows *resolved* references: an aliased or merged
        node is transparent (its representative carries the logic), and
        constant parents terminate a branch -- the word-level mirror of
        dead-code elimination, including the sweep of unobserved
        registers.
        """
        live: set[int] = set()
        stack = list(self.outputs)
        while stack:
            v = stack.pop()
            ref = refs[v]
            if ref[0] == "c":
                continue
            rep = ref[1]
            if rep in live:
                continue
            live.add(rep)
            stack.extend(parents[rep])
        return live


def analyze_redundancy(
    graph: CircuitGraph, max_rounds: int = 8
) -> RedundancyReport:
    """One-shot convenience wrapper around :class:`RedundancyAnalyzer`."""
    return RedundancyAnalyzer(graph).analyze(graph, max_rounds=max_rounds)
