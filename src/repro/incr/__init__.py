"""Incremental synthesis engine: delta-driven elaboration, timing and
reward evaluation for the MCTS hot loop.

The exact reward path re-synthesizes the whole design for every
candidate swap; this package re-elaborates only the *dirty cone* (the
transitive combinational fanout of the edited nodes) and structurally
shares everything else:

* :class:`DeltaNetlist` -- a base netlist plus a patch set, with
  ``apply_edit`` producing equivalent-netlist deltas in O(dirty cone);
* :class:`IncrementalTiming` -- arrival/slack updates along the dirty
  cone only, bit-identical to ``repro.synth.timing.analyze_timing``;
* :class:`CandidateQueue` -- batched candidate evaluation through the
  packed bit-parallel simulator with one shared stimulus;
* :class:`IncrementalReward` -- the MCTS reward adapter: delta areas +
  word-level redundancy analysis, calibrated to exact PCS at rebase and
  oracle-gated at acceptance (``MCTSConfig.incremental`` selects it).

This package depends only on :mod:`repro.ir` and :mod:`repro.synth`;
:mod:`repro.mcts` layers the search integration on top.
"""

from .analysis import RedundancyAnalyzer, RedundancyReport, analyze_redundancy
from .delta import DeltaNetlist, NodeArtifact, comb_topo_order
from .queue import CandidateQueue, CandidateResult
from .reward import DeltaOracle, IncrementalEval, IncrementalReward
from .timing import IncrementalTiming

__all__ = [
    "CandidateQueue",
    "CandidateResult",
    "DeltaNetlist",
    "DeltaOracle",
    "IncrementalEval",
    "IncrementalReward",
    "IncrementalTiming",
    "NodeArtifact",
    "RedundancyAnalyzer",
    "RedundancyReport",
    "analyze_redundancy",
    "comb_topo_order",
]
