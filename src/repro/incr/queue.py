"""Batched candidate evaluation over delta netlists.

:class:`CandidateQueue` collects pending candidate states of one design
(e.g. the MCTS candidate edits of a cone search), materializes each
candidate's :class:`~repro.incr.delta.DeltaNetlist` patch against the
shared base, and drives all of them through the packed bit-parallel
simulator with *one* shared stimulus: input words are drawn once per
primary-input name and reused for every candidate, so output words are
directly comparable across the batch (equal words == same observed
function).

Each flushed :class:`CandidateResult` carries the functional signature,
the raw mapped area and (when a clock period is configured) an
incremental timing report -- the three ingredients the search's reward,
equivalence gate and diagnostics consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import CircuitGraph
from ..synth.library import DEFAULT_LIBRARY, CellLibrary
from ..synth.simulate import BitParallelSimulator, packed_stimulus_word
from ..synth.timing import TimingReport
from .delta import DeltaNetlist
from .timing import IncrementalTiming


@dataclass
class CandidateResult:
    """One evaluated candidate, in submission order."""

    index: int
    graph: CircuitGraph
    delta: DeltaNetlist
    #: Packed output words keyed by primary-output port name; bit ``t``
    #: is cycle ``t`` of the shared stimulus.
    output_words: dict[str, int]
    area: float
    patched: int
    timing: TimingReport | None = None

    @property
    def signature(self) -> tuple[int, ...]:
        """Order-stable functional fingerprint of the output words."""
        return tuple(word for _, word in sorted(self.output_words.items()))


class CandidateQueue:
    """Pending candidate edits of one base design, evaluated in batch."""

    def __init__(
        self,
        base_graph: CircuitGraph,
        num_cycles: int = 64,
        seed: int = 0,
        clock_period: float | None = None,
        library: CellLibrary = DEFAULT_LIBRARY,
        strength: int = 1,
    ):
        if num_cycles < 1:
            raise ValueError("num_cycles must be positive")
        self.num_cycles = num_cycles
        self.seed = seed
        self.library = library
        self.strength = strength
        self.base = DeltaNetlist.from_graph(base_graph, check=False)
        self.timing = (
            IncrementalTiming(self.base, clock_period, library, strength)
            if clock_period is not None else None
        )
        self._pending: list[CircuitGraph] = []
        self._words: dict[str, int] = {}
        self.evaluated = 0

    # -- shared packed stimulus -----------------------------------------
    def stimulus_word(self, name: str) -> int:
        """The packed input word for primary input ``name`` (memoized)."""
        word = self._words.get(name)
        if word is None:
            word = packed_stimulus_word(self.seed, name, self.num_cycles)
            self._words[name] = word
        return word

    # -- queue protocol --------------------------------------------------
    def submit(self, graph: CircuitGraph) -> int:
        """Enqueue a candidate; returns its index in the next flush."""
        self._pending.append(graph)
        return len(self._pending) - 1

    def __len__(self) -> int:
        return len(self._pending)

    def flush(self) -> list[CandidateResult]:
        """Evaluate and clear all pending candidates, in order."""
        pending, self._pending = self._pending, []
        results = []
        for index, graph in enumerate(pending):
            results.append(self._evaluate(index, graph))
        self.evaluated += len(results)
        return results

    def evaluate(self, graphs: list[CircuitGraph]) -> list[CandidateResult]:
        """Convenience: submit ``graphs`` and flush in one call."""
        for graph in graphs:
            self.submit(graph)
        return self.flush()

    # ------------------------------------------------------------------
    def _evaluate(self, index: int, graph: CircuitGraph) -> CandidateResult:
        delta = self.base.apply_edit(graph)
        netlist = delta.materialize()
        simulator = BitParallelSimulator(netlist)
        inputs = {
            net: self.stimulus_word(name)
            for name, net in netlist.primary_inputs
        }
        words = simulator.run_packed(inputs, self.num_cycles)
        timing = None
        if self.timing is not None:
            if delta is self.base or delta.parent is not None:
                timing = self.timing.update(delta)
            else:
                # Schema change: not part of the base lineage -- time it
                # standalone rather than aborting the whole batch.
                timing = IncrementalTiming(
                    delta, self.timing.clock_period,
                    self.library, self.strength,
                ).report()
        return CandidateResult(
            index=index,
            graph=graph,
            delta=delta,
            output_words=words,
            area=delta.total_area(self.library, self.strength),
            patched=len(delta.patched),
            timing=timing,
        )
