"""Batched candidate evaluation over delta netlists.

:class:`CandidateQueue` collects pending candidate states of one design
(e.g. the MCTS candidate edits of a cone search), derives each
candidate's :class:`~repro.incr.delta.DeltaNetlist` -- chained from its
edit provenance when the predecessor state is known, so a swap
successor re-lowers one dirty cone rather than the union since the
base -- and drives all of them through one
:class:`~repro.synth.simulate.PatchableSimulator` with *one* shared
stimulus: the compiled plan is re-linked per candidate (no
``materialize()``, no per-candidate Kahn/Tarjan compile), input words
are drawn once per primary-input name and reused for every candidate,
so output words are directly comparable across the batch (equal words
== same observed function).

Each flushed :class:`CandidateResult` carries the functional signature,
the raw mapped area and (when a clock period is configured) an
incremental timing report -- the three ingredients the search's reward,
equivalence gate and diagnostics consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import CircuitGraph
from ..lint.sanitize import current_sanitizer
from ..obs import registry, span
from ..synth.library import DEFAULT_LIBRARY, CellLibrary
from ..synth.simulate import PatchableSimulator, packed_stimulus_word
from ..synth.timing import TimingReport
from .delta import DeltaNetlist
from .timing import IncrementalTiming


@dataclass
class CandidateResult:
    """One evaluated candidate, in submission order."""

    index: int
    graph: CircuitGraph
    delta: DeltaNetlist
    #: Packed output words keyed by primary-output port name; bit ``t``
    #: is cycle ``t`` of the shared stimulus.
    output_words: dict[str, int]
    area: float
    patched: int
    timing: TimingReport | None = None

    @property
    def signature(self) -> tuple[int, ...]:
        """Order-stable functional fingerprint of the output words."""
        return tuple(word for _, word in sorted(self.output_words.items()))


class CandidateQueue:
    """Pending candidate edits of one base design, evaluated in batch."""

    def __init__(
        self,
        base_graph: CircuitGraph,
        num_cycles: int = 64,
        seed: int = 0,
        clock_period: float | None = None,
        library: CellLibrary = DEFAULT_LIBRARY,
        strength: int = 1,
    ):
        if num_cycles < 1:
            raise ValueError("num_cycles must be positive")
        self.num_cycles = num_cycles
        self.seed = seed
        self.library = library
        self.strength = strength
        self.base = DeltaNetlist.from_graph(base_graph, check=False)
        self.timing = (
            IncrementalTiming(self.base, clock_period, library, strength)
            if clock_period is not None else None
        )
        #: Compiled-plan simulator patched per candidate delta: the
        #: per-candidate Kahn/Tarjan/opcode compile (and the
        #: ``materialize()`` feeding it) is gone from the flush loop.
        self.simulator = PatchableSimulator(self.base)
        self._pending: list[CircuitGraph] = []
        self._words: dict[str, int] = {}
        #: id(graph) -> (graph, delta): lets a candidate whose edit
        #: provenance points at an already-evaluated state patch from
        #: *that* delta (dirty cone of one swap) instead of re-deriving
        #: the whole chain against the base.
        self._deltas: dict[int, tuple[CircuitGraph, DeltaNetlist]] = {
            id(base_graph): (base_graph, self.base),
        }
        self.evaluated = 0
        self.chained = 0

    # -- shared packed stimulus -----------------------------------------
    def stimulus_word(self, name: str) -> int:
        """The packed input word for primary input ``name`` (memoized)."""
        word = self._words.get(name)
        if word is None:
            word = packed_stimulus_word(self.seed, name, self.num_cycles)
            self._words[name] = word
        return word

    # -- queue protocol --------------------------------------------------
    def submit(self, graph: CircuitGraph) -> int:
        """Enqueue a candidate; returns its index in the next flush."""
        self._pending.append(graph)
        return len(self._pending) - 1

    def __len__(self) -> int:
        return len(self._pending)

    def flush(self) -> list[CandidateResult]:
        """Evaluate and clear all pending candidates, in order."""
        pending, self._pending = self._pending, []
        chained_before = self.chained
        with span("incr.flush", batch=len(pending)) as flush_span:
            results = []
            for index, graph in enumerate(pending):
                results.append(self._evaluate(index, graph))
            flush_span.add(chained=self.chained - chained_before)
        self.evaluated += len(results)
        if results:
            reg = registry()
            reg.counter("queue_evaluated_total").inc(len(results))
            if self.chained > chained_before:
                reg.counter("queue_chained_total").inc(
                    self.chained - chained_before
                )
        return results

    def evaluate(self, graphs: list[CircuitGraph]) -> list[CandidateResult]:
        """Convenience: submit ``graphs`` and flush in one call."""
        for graph in graphs:
            self.submit(graph)
        return self.flush()

    # ------------------------------------------------------------------
    def _delta_for(self, graph: CircuitGraph) -> DeltaNetlist:
        """Delta for one candidate, chained from its edit provenance.

        ``apply_swap`` successors name their predecessor state and the
        two rewired nodes; when that predecessor's delta is known, the
        candidate re-lowers one swap's dirty cone instead of the union
        of every edit since the base.  Chains whose net-id growth passes
        the rebase guard, and candidates without usable provenance, fall
        back to a patch against the base.
        """
        entry = self._deltas.get(id(graph))
        if entry is not None and entry[0] is graph:
            return entry[1]
        origin = getattr(graph, "edit_origin", None)
        if origin is not None:
            prev, rewired = origin
            entry = self._deltas.get(id(prev))
            if entry is not None and entry[0] is prev:
                prev_delta = entry[1]
                if prev_delta.num_nets <= 4 * prev_delta.live_nets:
                    touched = [
                        v for v in sorted(rewired)
                        if graph.parents(v) != prev.parents(v)
                    ]
                    delta = prev_delta.apply_edit(graph, touched)
                    self.chained += 1
                    self._remember(graph, delta)
                    return delta
        delta = self.base.apply_edit(graph)
        self._remember(graph, delta)
        return delta

    def _remember(self, graph: CircuitGraph, delta: DeltaNetlist) -> None:
        if len(self._deltas) > 4096:
            base_graph = self.base.graph
            self._deltas = {id(base_graph): (base_graph, self.base)}
        self._deltas[id(graph)] = (graph, delta)

    def _evaluate(self, index: int, graph: CircuitGraph) -> CandidateResult:
        delta = self._delta_for(graph)
        sanitizer = current_sanitizer()
        if sanitizer is not None:
            # S003: audit the candidate's patch lineage.
            sanitizer.check_delta(delta)
        simulator = self.simulator.patch(delta)
        inputs = {
            net: self.stimulus_word(name)
            for name, net in simulator.primary_inputs
        }
        words = simulator.run_packed(inputs, self.num_cycles)
        if sanitizer is not None:
            # S005: the re-linked plan's words vs a fresh compile.
            sanitizer.check_simulator(
                delta,
                {
                    name: self.stimulus_word(name)
                    for name, _ in simulator.primary_inputs
                },
                self.num_cycles,
                words,
            )
        timing = None
        if self.timing is not None:
            if delta is self.base or delta.parent is not None:
                timing = self.timing.update(delta)
                if sanitizer is not None:
                    # S004: overlay-assembled report vs a fresh STA.
                    sanitizer.check_timing(self.timing, delta, timing)
            else:
                # Schema change: not part of the base lineage -- time it
                # standalone rather than aborting the whole batch.
                standalone = IncrementalTiming(
                    delta, self.timing.clock_period,
                    self.library, self.strength,
                )
                timing = standalone.report()
                if sanitizer is not None:
                    sanitizer.check_timing(standalone, delta, timing)
        return CandidateResult(
            index=index,
            graph=graph,
            delta=delta,
            output_words=words,
            area=delta.total_area(self.library, self.strength),
            patched=len(delta.patched),
            timing=timing,
        )
