"""Incremental static timing over a :class:`DeltaNetlist` lineage.

``analyze_timing`` re-levelizes and re-propagates the whole netlist on
every call; :class:`IncrementalTiming` instead computes arrival times
once for a base delta and, per edited delta, re-propagates only along
the dirty cone.  Because the dirty cone *is* the transitive
combinational fanout of the edit, every net outside it keeps its base
arrival time, and only endpoints (register D pins, primary outputs)
belonging to patched nodes can change slack.

The produced :class:`~repro.synth.timing.TimingReport` is bit-identical
to ``analyze_timing`` on a fresh ``elaborate()`` of the edited graph:
arrival times are ``max`` / ``+`` folds over an isomorphic gate DAG
with the same cell delays, so even the float values agree exactly.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..ir import NodeType
from ..synth.library import DEFAULT_LIBRARY, CellLibrary
from ..synth.netlist import Gate
from ..synth.timing import TimingReport
from .delta import DeltaNetlist, comb_topo_order

_COMB_EXCLUDED = (NodeType.IN, NodeType.CONST, NodeType.REG, NodeType.OUT)


class IncrementalTiming:
    """Arrival/slack state for one delta lineage.

    Bound to the :class:`DeltaNetlist` it was constructed from;
    :meth:`update` accepts any delta derived from that base (directly or
    through a chain of ``apply_edit`` calls) and patches arrivals only
    for the union of the chain's dirty cones.
    """

    def __init__(
        self,
        base: DeltaNetlist,
        clock_period: float,
        library: CellLibrary = DEFAULT_LIBRARY,
        strength: int = 1,
    ):
        self.base = base
        self.clock_period = clock_period
        self.library = library
        self.strength = strength
        self._dff = library.cell("DFF", strength)
        self._delay = {
            kind: library.cell(kind, strength).delay
            for kind in ("NOT", "AND", "OR", "XOR", "MUX")
        }

        graph = base.graph
        arrival: dict[int, float] = {base.const0: 0.0, base.const1: 0.0}
        for art in base.artifacts.values():
            for _, net in art.pis:
                arrival[net] = 0.0
        clk_to_q = self._dff.clk_to_q
        for reg in graph.registers():
            for q in base.artifacts[reg].bits:
                arrival[q] = clk_to_q
        comb = {
            n.id for n in graph.nodes() if n.type not in _COMB_EXCLUDED
        }
        for v in comb_topo_order(graph, comb):
            self._propagate(base.artifacts[v].gates, arrival)
        self._arrival = arrival
        #: endpoint node (REG or OUT) -> per-bit *arrival* times.  Slacks
        #: are derived in ``_assemble`` with the identical float ops as
        #: ``analyze_timing``, keeping reports bit-exact.
        self._ats: dict[int, list[float]] = {}
        for v in (*graph.registers(), *graph.outputs()):
            self._ats[v] = self._endpoint_arrivals(base, v, arrival)
        #: id(delta) -> (delta, overlay contents, endpoint arrivals):
        #: per-delta arrival state so a chained edit re-propagates only
        #: its *own* dirty cone on top of its parent's cached state,
        #: instead of the union of every cone since the base.
        self._cache: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    def _propagate(
        self,
        gates: Iterable[Gate],
        arrival: dict[int, float],
        overlay: dict[int, float] | None = None,
    ) -> None:
        """Arrival times for one node's gates, in emission order."""
        delay = self._delay
        read = arrival if overlay is None else overlay
        write = arrival if overlay is None else overlay
        for gate in gates:
            if gate.kind == "DFF":
                continue  # Q arrival is clk-to-q, stable across edits
            ins = gate.inputs
            at = read[ins[0]]
            for i in ins[1:]:
                other = read[i]
                if other > at:
                    at = other
            write[gate.output] = at + delay[gate.kind]

    def _endpoint_arrivals(
        self, delta: DeltaNetlist, v: int, arrival: dict[int, float]
    ) -> list[float]:
        node = delta.graph.node(v)
        art = delta.artifacts[v]
        if node.type is NodeType.REG:
            return [arrival[g.inputs[0]] for g in art.gates]
        return [arrival.get(net, 0.0) for _, net in art.pos]

    # ------------------------------------------------------------------
    def report(self) -> TimingReport:
        """Timing of the base delta itself."""
        return self._assemble(self.base, self._ats)

    def update(self, delta: DeltaNetlist) -> TimingReport:
        """Timing of ``delta``, touching only its (chain of) dirty cones.

        Each delta along the lineage is patched exactly once: its
        arrival overlay (the nets that differ from the base) and
        endpoint arrivals are cached, so updating a state that extends
        an already-updated chain re-propagates only the newest edit's
        dirty cone.  Results are bit-identical to re-propagating the
        union from the base -- arrivals are the same max/+ folds over
        the same gates either way.
        """
        if delta is self.base:
            return self.report()
        cached = self._cache.get(id(delta))
        if cached is not None and cached[0] is delta:
            return self._assemble(delta, cached[2])
        chain: list[DeltaNetlist] = []
        node = delta
        contents: dict[int, float] = {}
        ats = self._ats
        while node is not self.base:
            if node.parent is None:
                raise ValueError(
                    "delta was not derived from this timing's base"
                )
            entry = self._cache.get(id(node))
            if entry is not None and entry[0] is node:
                contents, ats = entry[1], entry[2]
                break
            chain.append(node)
            node = node.parent
        for node in reversed(chain):
            graph = node.graph
            overlay = _Overlay(self._arrival)
            if contents:
                overlay.update(contents)
            # Net anchoring keeps *structure* outside the rebuilt set
            # stable, but arrival times still ripple through the full
            # combinational fanout of the rebuilt nodes -- recompute
            # along that cone, on top of the parent's arrival state.
            dirty = node.dirty_cone(graph, node.patched)
            dirty_comb = {
                v for v in dirty if graph.node(v).type not in _COMB_EXCLUDED
            }
            for v in comb_topo_order(graph, dirty_comb):
                self._propagate(node.artifacts[v].gates, None, overlay)
            ats = dict(ats)
            for v in dirty:
                if graph.node(v).type in (NodeType.REG, NodeType.OUT):
                    ats[v] = self._endpoint_arrivals(node, v, overlay)
            # The overlay is never written again -- it *is* the cached
            # contents (a plain-dict view of the changed nets).
            contents = overlay
            if len(self._cache) > 4096:
                self._cache.clear()
            self._cache[id(node)] = (node, contents, ats)
        return self._assemble(delta, ats)

    # ------------------------------------------------------------------
    def _assemble(
        self, delta: DeltaNetlist, ats: dict[int, list[float]]
    ) -> TimingReport:
        graph = delta.graph
        endpoint_slacks: list[float] = []
        register_slacks: dict[int, float] = {}
        critical = 0.0
        period, setup = self.clock_period, self._dff.setup
        for reg in graph.registers():
            per_bit = []
            for at in ats[reg]:
                critical = max(critical, at)
                per_bit.append(period - setup - at)
            endpoint_slacks.extend(per_bit)
            if per_bit:
                register_slacks[reg] = min(per_bit)
        for out in graph.outputs():
            for at in ats[out]:
                critical = max(critical, at)
                endpoint_slacks.append(period - at)
        negative = [s for s in endpoint_slacks if s < 0]
        return TimingReport(
            clock_period=self.clock_period,
            wns=min(endpoint_slacks) if endpoint_slacks else 0.0,
            tns=sum(negative),
            nvp=len(negative),
            endpoint_slacks=endpoint_slacks,
            register_slacks=register_slacks,
            critical_delay=critical,
        )


class _Overlay(dict):
    """Write-local view over a base arrival dict (copy-on-write reads)."""

    __slots__ = ("_base",)

    def __init__(self, base: dict):
        super().__init__()
        self._base = base

    def __missing__(self, key: int) -> float:
        return self._base[key]

    def get(self, key: int, default: float | None = None) -> float | None:
        if key in self:
            return dict.__getitem__(self, key)
        return self._base.get(key, default)
