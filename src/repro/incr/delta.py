"""Delta-driven elaboration: a netlist as a base plus a patch set.

A :class:`DeltaNetlist` is the incremental engine's core object: the
tracked elaboration of one circuit graph, stored *per IR node* so that
an edited graph can be re-elaborated by touching only the dirty cone --
the transitive combinational fanout of the edited nodes -- while every
other node's gates, bit nets and ports are structurally shared with the
previous state.

Register Q nets are allocated once and never move, so the dirty cone
stops at register boundaries exactly like the MCTS driving cones do:
a swap inside one cone re-lowers a handful of nodes instead of the
whole design.  ``materialize()`` assembles a plain
:class:`~repro.synth.netlist.Netlist` that is gate-for-gate equivalent
(function, area and timing) to a fresh ``elaborate()`` of the edited
graph; only net numbering differs.

Deltas are persistent values: ``apply_edit`` returns a new
:class:`DeltaNetlist` and never mutates its receiver, so MCTS tree
siblings can branch from one shared base.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from ..ir import CircuitGraph, NodeType
from ..obs import span
from ..synth.elaborate import _Elaborator
from ..synth.library import DEFAULT_LIBRARY, CellLibrary
from ..synth.netlist import Gate, Netlist

_SOURCE_TYPES = (NodeType.IN, NodeType.CONST, NodeType.REG)
_STOP_TYPES = (NodeType.REG, NodeType.OUT)


@dataclass(frozen=True)
class NodeArtifact:
    """Everything elaboration produced for one IR node.

    ``bits`` are the node's output bit nets (register Q nets for REG,
    empty for OUT); ``gates`` are the gates owned by the node (the
    lowered logic for operators, the DFFs for a register); ``pis`` /
    ``pos`` are the primary ports contributed by IN / OUT nodes.
    Artifacts are immutable and shared across deltas, so the mapped
    area at the default (library, strength) is cached per artifact.
    """

    node: int
    bits: tuple[int, ...]
    gates: tuple[Gate, ...]
    pis: tuple[tuple[str, int], ...] = ()
    pos: tuple[tuple[str, int], ...] = ()

    def area(
        self,
        library: CellLibrary = DEFAULT_LIBRARY,
        strength: int = 1,
    ) -> float:
        if library is DEFAULT_LIBRARY and strength == 1:
            cached = self.__dict__.get("_area_x1")
            if cached is None:
                cached = sum(
                    library.cell(g.kind, 1).area for g in self.gates
                )
                # Lazy memo on the frozen instance (reward hot path).
                object.__setattr__(self, "_area_x1", cached)
            return cached
        return sum(
            library.cell(g.kind, strength).area for g in self.gates
        )


def comb_topo_order(graph: CircuitGraph, subset: set[int]) -> list[int]:
    """Topological order of the combinational nodes in ``subset``.

    Edges are graph parent edges restricted to ``subset``; sources
    (IN/CONST/REG) and sinks (OUT) must not be members.  Raises on a
    combinational cycle, which a valid circuit cannot contain.
    """
    indegree = {v: 0 for v in subset}
    children: dict[int, list[int]] = {v: [] for v in subset}
    for v in subset:
        for p in graph.filled_parents(v):
            if p in indegree and p != v:
                indegree[v] += 1
                children[p].append(v)
    order: list[int] = []
    frontier = sorted((v for v in subset if indegree[v] == 0), reverse=True)
    while frontier:
        v = frontier.pop()
        order.append(v)
        for c in children[v]:
            indegree[c] -= 1
            if indegree[c] == 0:
                frontier.append(c)
    if len(order) != len(subset):
        raise ValueError("combinational cycle in dirty cone")
    return order


class DeltaNetlist:
    """Tracked elaboration of a graph with incremental re-elaboration."""

    __slots__ = (
        "graph", "name", "num_nets", "const0", "const1",
        "artifacts", "patched", "parent", "_children",
        "_comb_mask", "_stop_mask",
    )

    def __init__(
        self,
        graph: CircuitGraph,
        *,
        num_nets: int,
        const0: int,
        const1: int,
        artifacts: dict[int, NodeArtifact],
        patched: frozenset[int],
        parent: "DeltaNetlist | None",
        kind_masks: tuple[list[bool], list[bool]] | None = None,
    ):
        self.graph = graph
        self.name = graph.name
        self.num_nets = num_nets
        self.const0 = const0
        self.const1 = const1
        self.artifacts = artifacts
        #: Nodes re-lowered by the edit that produced this delta
        #: (empty for a freshly elaborated base).
        self.patched = patched
        #: The delta this one was derived from (``None`` for a base);
        #: :class:`repro.incr.timing.IncrementalTiming` walks this chain.
        self.parent = parent
        #: Lazily built fanout map of ``graph`` (apply_edit hot path).
        self._children: list[list[int]] | None = None
        if kind_masks is None:
            kind_masks = (
                [n.type not in (*_SOURCE_TYPES, NodeType.OUT)
                 for n in graph.nodes()],
                [n.type in _STOP_TYPES for n in graph.nodes()],
            )
        #: Schema-static per-node type masks shared along the lineage.
        self._comb_mask, self._stop_mask = kind_masks

    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: CircuitGraph, check: bool = True) -> "DeltaNetlist":
        """Full, tracked elaboration of ``graph`` (the base of a lineage)."""
        if check:
            from ..ir import assert_valid

            assert_valid(graph)
        ela = _Elaborator(graph)
        nl = ela.netlist
        artifacts: dict[int, NodeArtifact] = {}

        def capture(
            node_id: int, lower: Callable[..., None], *args: object
        ) -> None:
            gate_mark = len(nl.gates)
            pi_mark = len(nl.primary_inputs)
            po_mark = len(nl.primary_outputs)
            lower(*args)
            artifacts[node_id] = NodeArtifact(
                node=node_id,
                bits=tuple(ela.bits.get(node_id, ())),
                gates=tuple(nl.gates[gate_mark:]),
                pis=tuple(nl.primary_inputs[pi_mark:]),
                pos=tuple(nl.primary_outputs[po_mark:]),
            )

        for node in graph.nodes():
            if node.type in _SOURCE_TYPES:
                capture(node.id, ela.lower_source, node.id)
        comb = {
            n.id for n in graph.nodes()
            if n.type not in (*_SOURCE_TYPES, NodeType.OUT)
        }
        for node_id in comb_topo_order(graph, comb):
            capture(node_id, ela._lower_comb, node_id)
        for reg in graph.registers():
            q_bits = artifacts[reg].bits
            gate_mark = len(nl.gates)
            ela.lower_reg_dffs(reg)
            artifacts[reg] = NodeArtifact(
                node=reg, bits=q_bits, gates=tuple(nl.gates[gate_mark:])
            )
        for out in graph.outputs():
            capture(out, ela.lower_output, out)

        delta = cls(
            graph,
            num_nets=nl.num_nets,
            const0=nl.const0,
            const1=nl.const1,
            artifacts=artifacts,
            patched=frozenset(),
            parent=None,
        )
        if check:
            delta.materialize(check=True)
        return delta

    # ------------------------------------------------------------------
    def dirty_cone(
        self, new_graph: CircuitGraph, touched: Iterable[int]
    ) -> set[int]:
        """Transitive combinational fanout of ``touched`` in ``new_graph``.

        Propagation stops *at* registers and outputs: a register's Q
        nets are stable across edits, so consumers of an edited
        register's output are clean even though the register's own DFF
        gates are rebuilt.
        """
        return self._propagate_dirty(
            new_graph, touched, new_graph.child_map().__getitem__
        )

    def _propagate_dirty(
        self,
        new_graph: CircuitGraph,
        touched: Iterable[int],
        children: Callable[[int], Iterable[int]],
    ) -> set[int]:
        dirty: set[int] = set(touched)
        comb_mask, stop_mask = self._comb_mask, self._stop_mask
        frontier = [v for v in touched if comb_mask[v]]
        while frontier:
            v = frontier.pop()
            for child in children(v):
                if child not in dirty:
                    dirty.add(child)
                    if not stop_mask[child]:
                        frontier.append(child)
        return dirty

    def _patched_children(
        self, new_graph: CircuitGraph, touched: Iterable[int]
    ) -> Callable[[int], Iterable[int]]:
        """Fanout lookup for ``new_graph`` built from the cached base
        fanout map plus the edge corrections implied by ``touched``."""
        if self._children is None:
            self._children = self.graph.child_map()
        base_map = self._children
        corrections: dict[int, set[int]] = {}
        base_parents = self.graph.filled_parents
        new_parents = new_graph.filled_parents
        for v in touched:
            old, new = set(base_parents(v)), set(new_parents(v))
            for a in old - new:
                corrections.setdefault(a, set(base_map[a])).discard(v)
            for b in new - old:
                corrections.setdefault(b, set(base_map[b])).add(v)
        if not corrections:
            return base_map.__getitem__

        def children(v: int) -> Iterable[int]:
            patched = corrections.get(v)
            return base_map[v] if patched is None else patched

        return children

    def apply_edit(
        self, new_graph: CircuitGraph, touched: list[int] | None = None
    ) -> "DeltaNetlist":
        """Delta for ``new_graph``: re-elaborate the dirty cone only.

        Traced as an ``incr.apply_edit`` span carrying the dirty-node
        and patched-gate counts (a no-op without an active recorder).

        ``touched`` (node ids whose parents changed) is computed with
        :meth:`CircuitGraph.structural_delta` when not supplied.  Falls
        back to a full tracked elaboration when the node schema changed
        (different node count, types, widths, params or names) -- parent
        rewires, the move set of the MCTS search, always patch.

        Re-lowered nodes are *net-anchored*: when every output bit of a
        re-lowered node is driven by one of its own new gates, those
        gates are renamed to drive the node's previous output nets, so
        consumers observe identical bit nets and stay clean.  Only nodes
        with pass-through output bits (slices, concats, constant
        padding) propagate dirt to their fanout.
        """
        with span("incr.apply_edit") as edit_span:
            delta = self._apply_edit(new_graph, touched)
            edit_span.add(
                patched=len(delta.patched), nets=delta.num_nets
            )
            return delta

    def _apply_edit(
        self, new_graph: CircuitGraph, touched: list[int] | None
    ) -> "DeltaNetlist":
        if touched is None:
            touched = new_graph.structural_delta(self.graph)
            if touched is None:
                return DeltaNetlist.from_graph(new_graph, check=False)
        if not touched:
            return DeltaNetlist(
                new_graph,
                num_nets=self.num_nets,
                const0=self.const0,
                const1=self.const1,
                artifacts=self.artifacts,
                patched=frozenset(),
                parent=self,
                kind_masks=(self._comb_mask, self._stop_mask),
            )
        # Patch context: the net counter continues past the base's nets
        # (nets are never reused); operand bit lists are pulled from the
        # cached artifacts on demand.
        nl = Netlist(
            name=self.name,
            num_nets=self.num_nets,
            const0=self.const0,
            const1=self.const1,
        )
        new_parents = new_graph.filled_parents
        artifacts_map = self.artifacts
        bits: dict[int, list[int]] = {}
        ela = _Elaborator(new_graph, netlist=nl, bits=bits)

        def ensure_bits(nodes: Iterable[int]) -> None:
            for u in nodes:
                if u not in bits:
                    bits[u] = list(artifacts_map[u].bits)

        artifacts = dict(artifacts_map)
        rebuilt: set[int] = set()
        #: nodes whose output bit nets actually changed (unsealed).
        moved: set[int] = set()
        comb_mask = self._comb_mask
        gates_list = nl.gates
        children = None
        # Worklist: rebuild the touched nodes, then fan out only through
        # nodes that could not be net-anchored (the rare case -- an
        # anchored rebuild leaves its consumers' artifacts valid).
        pending = {v for v in touched if comb_mask[v]}
        sink_pending = {v for v in touched if not comb_mask[v]}
        rebuild_events = 0
        rebuild_budget = 4 * len(artifacts_map) + 16
        while pending:
            rebuild_events += len(pending)
            if rebuild_events > rebuild_budget:
                # Pathological pass-through wavefront (converging
                # unanchorable chains re-rebuilding repeatedly): a full
                # tracked elaboration is cheaper and always correct.
                return DeltaNetlist.from_graph(new_graph, check=False)
            if len(pending) == 1:
                batch = list(pending)
            elif len(pending) == 2:
                a, b = sorted(pending)
                batch = [b, a] if b in new_parents(a) else [a, b]
            else:
                batch = comb_topo_order(new_graph, pending)
            pending = set()
            newly_moved: list[int] = []
            for v in batch:
                ensure_bits(new_parents(v))
                gate_mark = len(gates_list)
                ela._lower_comb(v)
                new_gates = gates_list[gate_mark:]
                del gates_list[gate_mark:]
                new_bits = ela.bits[v]
                if self._anchor(artifacts_map[v].bits, new_bits, new_gates):
                    ela.bits[v] = new_bits = list(artifacts_map[v].bits)
                else:
                    # Every unanchored rebuild allocates fresh output
                    # nets, so consumers must be (re-)notified even if
                    # the node already moved in an earlier batch --
                    # pass-through chains can rebuild a node repeatedly.
                    moved.add(v)
                    newly_moved.append(v)
                rebuilt.add(v)
                artifacts[v] = NodeArtifact(
                    node=v, bits=tuple(new_bits), gates=tuple(new_gates),
                )
            if newly_moved:
                if children is None:
                    children = self._patched_children(new_graph, touched)
                for m in newly_moved:
                    for c in children(m):
                        if comb_mask[c]:
                            # Consumers re-lower against the moved bits
                            # (a node may rebuild more than once when a
                            # later batch moves one of its operands).
                            pending.add(c)
                        else:
                            sink_pending.add(c)
        for v in sorted(sink_pending):
            node = new_graph.node(v)
            rebuilt.add(v)
            if node.type is NodeType.REG:
                ensure_bits((v, *new_parents(v)))
                gate_mark = len(gates_list)
                ela.lower_reg_dffs(v)
                artifacts[v] = NodeArtifact(
                    node=v, bits=artifacts_map[v].bits,
                    gates=tuple(gates_list[gate_mark:]),
                )
                del gates_list[gate_mark:]
            elif node.type is NodeType.OUT:
                ensure_bits(new_parents(v))
                po_mark = len(nl.primary_outputs)
                ela.lower_output(v)
                artifacts[v] = NodeArtifact(
                    node=v, bits=(), gates=(),
                    pos=tuple(nl.primary_outputs[po_mark:]),
                )
            else:  # pragma: no cover - IN/CONST have no parents to edit
                raise ValueError(f"source node {v} cannot be dirty")

        return DeltaNetlist(
            new_graph,
            num_nets=nl.num_nets,
            const0=self.const0,
            const1=self.const1,
            artifacts=artifacts,
            patched=frozenset(rebuilt),
            parent=self,
            kind_masks=(self._comb_mask, self._stop_mask),
        )

    @staticmethod
    def _anchor(
        old_bits: Sequence[int],
        new_bits: Sequence[int],
        new_gates: Sequence[Gate],
    ) -> bool:
        """Rename a re-lowered node's gates onto its previous output nets.

        Possible iff every output bit is driven by one of the node's own
        new gates and neither bit list repeats a net.  The gates were
        freshly created for this patch and are exclusively owned, so
        they are renamed *in place*; returns whether anchoring happened
        (pass-through bits keep their source nets and cannot anchor).
        """
        if len(old_bits) != len(new_bits):
            return False
        owned = {g.output for g in new_gates}
        rename: dict[int, int] = {}
        for old, new in zip(old_bits, new_bits):
            if new not in owned:
                return False
            if rename.setdefault(new, old) != old:
                return False  # duplicated output net: ambiguous rename
        if len(set(old_bits)) != len(old_bits):
            return False
        get = rename.get
        for g in new_gates:
            out = get(g.output)
            if out is not None:
                g.output = out
            ins = g.inputs
            for net in ins:
                if net in rename:
                    g.inputs = tuple(get(i, i) for i in ins)
                    break
        return True

    # ------------------------------------------------------------------
    def materialize(self, check: bool = False) -> Netlist:
        """Assemble a plain :class:`Netlist` for this delta's graph.

        Gates, ports and DFF origins are concatenated in node-id order;
        the result is equivalent to ``elaborate(self.graph)`` in
        function, gate counts, port names, area and timing (net ids and
        gate order may differ after edits).
        """
        nl = Netlist(
            name=self.name,
            num_nets=self.num_nets,
            const0=self.const0,
            const1=self.const1,
        )
        graph = self.graph
        for v in sorted(self.artifacts):
            art = self.artifacts[v]
            nl.gates.extend(art.gates)
            nl.primary_inputs.extend(art.pis)
            nl.primary_outputs.extend(art.pos)
            if graph.node(v).type is NodeType.REG:
                for b, q in enumerate(art.bits):
                    nl.dff_origin[q] = (v, b)
        if check:
            nl.check()
        return nl

    # ------------------------------------------------------------------
    @property
    def num_gates(self) -> int:
        return sum(len(a.gates) for a in self.artifacts.values())

    @property
    def live_nets(self) -> int:
        """Nets actually referenced (vs ``num_nets``, which only grows)."""
        return 2 + sum(
            len(a.bits) + len(a.gates) for a in self.artifacts.values()
        )

    def gate_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for art in self.artifacts.values():
            for gate in art.gates:
                counts[gate.kind] = counts.get(gate.kind, 0) + 1
        return counts

    def node_area(
        self,
        node_id: int,
        library: CellLibrary = DEFAULT_LIBRARY,
        strength: int = 1,
    ) -> float:
        return self.artifacts[node_id].area(library, strength)

    def total_area(
        self,
        library: CellLibrary = DEFAULT_LIBRARY,
        strength: int = 1,
    ) -> float:
        """Raw (pre-optimization) mapped area of the full netlist."""
        return sum(
            art.area(library, strength) for art in self.artifacts.values()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeltaNetlist({self.name!r}, nodes={len(self.artifacts)}, "
            f"gates={self.num_gates}, patched={len(self.patched)})"
        )
