"""The 22-design benchmark corpus (the paper's Table I dataset stand-in).

The paper assembles 22 open-source designs from ITC'99 (6, VHDL),
OpenCores (8, Verilog) and Chipyard (8, Chisel).  This suite provides 22
generated designs in the same three families, a deterministic train/test
split (15 train / 7 test, as in the paper), and the size statistics that
Table I reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ir import CircuitGraph
from . import chipyard_like, itc_like, opencores_like
from .reference import core_like, tinyrocket_like


@dataclass(frozen=True)
class DesignSpec:
    name: str
    family: str        # "itc99" | "opencores" | "chipyard"
    hdl_type: str      # the family's original HDL, for the Table I column
    build: callable

    def instantiate(self) -> CircuitGraph:
        graph = self.build()
        graph.name = self.name
        return graph


def _specs() -> list[DesignSpec]:
    specs: list[DesignSpec] = []
    for name, fn in itc_like.GENERATORS.items():
        specs.append(DesignSpec(name, "itc99", "VHDL", fn))
    for name, fn in opencores_like.GENERATORS.items():
        specs.append(DesignSpec(name, "opencores", "Verilog", fn))
    for name, fn in chipyard_like.GENERATORS.items():
        specs.append(DesignSpec(name, "chipyard", "Chisel", fn))
    return specs


SPECS: tuple[DesignSpec, ...] = tuple(_specs())
assert len(SPECS) == 22, "the corpus must contain exactly 22 designs"


def load_corpus() -> list[CircuitGraph]:
    """Instantiate all 22 designs."""
    return [spec.instantiate() for spec in SPECS]


def load_design(name: str) -> CircuitGraph:
    for spec in SPECS:
        if spec.name == name:
            return spec.instantiate()
    raise KeyError(f"unknown design {name!r}")


def reference_designs() -> dict[str, CircuitGraph]:
    """The two Table II evaluation designs."""
    return {
        "tinyrocket_like": tinyrocket_like(),
        "core_like": core_like(),
    }


def train_test_split(
    seed: int = 2025, num_test: int = 7
) -> tuple[list[CircuitGraph], list[CircuitGraph]]:
    """The paper's 15/7 random split, deterministic under ``seed``."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(SPECS))
    test_idx = set(order[:num_test].tolist())
    train, test = [], []
    for i, spec in enumerate(SPECS):
        (test if i in test_idx else train).append(spec.instantiate())
    return train, test


def corpus_statistics(gate_counts: dict[str, int]) -> list[dict]:
    """Table I rows: per-family design count and {min, median, max} size.

    ``gate_counts`` maps design name to synthesized cell count (the
    Table I "Design Scale" column uses post-synthesis gate counts).
    """
    rows = []
    for family, hdl in (
        ("itc99", "VHDL"), ("opencores", "Verilog"), ("chipyard", "Chisel")
    ):
        names = [s.name for s in SPECS if s.family == family]
        sizes = [gate_counts[n] for n in names if n in gate_counts]
        if not sizes:
            continue
        rows.append(
            {
                "source": family,
                "num_designs": len(names),
                "hdl_type": hdl,
                "min_gates": int(np.min(sizes)),
                "median_gates": int(np.median(sizes)),
                "max_gates": int(np.max(sizes)),
            }
        )
    return rows
