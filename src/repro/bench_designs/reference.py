"""Reference designs for the Table II structural-similarity experiment.

The paper reports Table II on two designs, "TinyRocket" and "Core".
These constructors build their stand-ins: larger compositions of the
corpus idioms (fetch counter, decoder, register file, ALU, branch unit)
so that the generative models are trained/evaluated on graphs with
realistic heterogeneous structure.
"""

from __future__ import annotations

from ..ir import CircuitGraph, GraphBuilder
from .common import equals_const


def tinyrocket_like(width: int = 16, regfile_entries: int = 8) -> CircuitGraph:
    """A single-issue in-order core skeleton (TinyRocket stand-in)."""
    idx_w = max(1, regfile_entries.bit_length() - 1)
    b = GraphBuilder("tinyrocket_like")
    instr = b.input("instr", 32)

    # Fetch: program counter.
    pc = b.reg("pc", width)

    # Decode: field extraction.
    opcode = b.slice_(instr, 6, 0)
    rd = b.slice_(instr, 7 + idx_w - 1, 7)
    rs1 = b.slice_(instr, 15 + idx_w - 1, 15)
    rs2 = b.slice_(instr, 20 + idx_w - 1, 20)
    imm = b.slice_(instr, 31, 20)
    is_alu = equals_const(b, opcode, 0x33, 7)
    is_imm = equals_const(b, opcode, 0x13, 7)
    is_branch = equals_const(b, opcode, 0x63, 7)

    # Register file with write-back.
    regs = [b.reg(f"x{i}", width) for i in range(regfile_entries)]

    def read(addr: int) -> int:
        value = regs[0]
        for i in range(1, regfile_entries):
            value = b.mux(equals_const(b, addr, i, idx_w), regs[i], value)
        return value

    op_a = read(rs1)
    op_b_reg = read(rs2)
    imm_ext = b.slice_(imm, width - 1, 0) if width <= 12 else imm
    op_b = b.mux(is_imm, imm_ext, op_b_reg)

    # Execute: ALU.
    funct = b.slice_(instr, 14, 12)
    alu_results = [
        b.add(op_a, op_b, width=width),
        b.sub(op_a, op_b, width=width),
        b.xor(op_a, op_b, width=width),
        b.or_(op_a, op_b, width=width),
        b.and_(op_a, op_b, width=width),
    ]
    alu_out = alu_results[-1]
    for i in reversed(range(len(alu_results) - 1)):
        alu_out = b.mux(equals_const(b, funct, i, 3), alu_results[i], alu_out)

    # Branch resolution.
    eq = b.eq(op_a, op_b_reg)
    lt = b.lt(op_a, op_b_reg)
    take = b.mux(b.bit(funct, 0), b.not_(eq), b.mux(b.bit(funct, 2), lt, eq))
    taken = b.and_(is_branch, take, width=1)
    target = b.add(pc, imm_ext, width=width)
    seq_pc = b.add(pc, b.const(4, width), width=width)
    b.drive_reg(pc, b.mux(taken, target, seq_pc))

    # Write-back.
    wb_en = b.or_(is_alu, is_imm, width=1)
    for i, reg in enumerate(regs):
        hit = b.and_(wb_en, equals_const(b, rd, i, idx_w), width=1)
        b.drive_reg(reg, b.mux(hit, alu_out, reg))

    result_q = b.reg("wb_q", width)
    b.drive_reg(result_q, alu_out)
    b.output("pc_out", pc)
    b.output("wb_value", result_q)
    b.output("branch_taken", taken)
    return b.build()


def core_like(width: int = 12) -> CircuitGraph:
    """A small accumulator machine with FSM control (Core stand-in)."""
    b = GraphBuilder("core_like")
    cmd = b.input("cmd", 3)
    operand = b.input("operand", width)
    start = b.input("start", 1)

    state = b.reg("core_state", 2)
    acc = b.reg("acc", width)
    cnt = b.reg("step_cnt", 4)

    idle = equals_const(b, state, 0, 2)
    running = equals_const(b, state, 1, 2)
    flushing = equals_const(b, state, 2, 2)
    go = b.and_(idle, start, width=1)
    steps_done = b.eq(cnt, b.const(12, 4))
    b.drive_reg(
        state,
        b.mux(go, b.const(1, 2),
              b.mux(b.and_(running, steps_done, width=1), b.const(2, 2),
                    b.mux(flushing, b.const(0, 2), state))),
    )
    b.drive_reg(
        cnt,
        b.mux(go, b.const(0, 4),
              b.mux(running, b.add(cnt, b.const(1, 4), width=4), cnt)),
    )

    alu = [
        b.add(acc, operand, width=width),
        b.sub(acc, operand, width=width),
        b.xor(acc, operand, width=width),
        b.shl(acc, b.slice_(operand, 1, 0), width=width),
        b.mul(acc, operand, width=width),
    ]
    chosen = alu[-1]
    for i in reversed(range(len(alu) - 1)):
        chosen = b.mux(equals_const(b, cmd, i, 3), alu[i], chosen)
    b.drive_reg(acc, b.mux(running, chosen, b.mux(flushing, b.const(0, width), acc)))

    zero = b.eq(acc, b.const(0, width))
    flag_q = b.reg("zero_q", 1)
    b.drive_reg(flag_q, zero)
    b.output("acc_out", acc)
    b.output("acc_zero", flag_q)
    b.output("core_busy", b.not_(idle))
    return b.build()
