"""Benchmark design corpus: the Table I dataset substitute."""

from .reference import core_like, tinyrocket_like
from .suite import (
    SPECS,
    DesignSpec,
    corpus_statistics,
    load_corpus,
    load_design,
    reference_designs,
    train_test_split,
)

__all__ = [
    "SPECS",
    "DesignSpec",
    "core_like",
    "corpus_statistics",
    "load_corpus",
    "load_design",
    "reference_designs",
    "tinyrocket_like",
    "train_test_split",
]
