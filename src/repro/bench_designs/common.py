"""Shared building blocks for the benchmark design generators."""

from __future__ import annotations

from ..ir import GraphBuilder


def binary_counter(
    b: GraphBuilder, name: str, width: int, enable: int | None = None
) -> int:
    """Free-running (or enabled) binary up-counter; returns the count reg."""
    count = b.reg(name, width)
    one = b.const(1, width)
    inc = b.add(count, one, width=width)
    if enable is None:
        b.drive_reg(count, inc)
    else:
        b.drive_reg(count, b.mux(enable, inc, count))
    return count


def lfsr(b: GraphBuilder, name: str, width: int, taps: tuple[int, ...]) -> int:
    """Fibonacci LFSR register; feedback is the XOR of the tap bits."""
    state = b.reg(name, width)
    feedback = b.bit(state, taps[0])
    for tap in taps[1:]:
        feedback = b.xor(feedback, b.bit(state, tap), width=1)
    # Invert the feedback so the all-zero reset state still evolves.
    feedback = b.not_(feedback)
    shifted = b.slice_(state, width - 2, 0) if width > 1 else None
    if shifted is None:
        b.drive_reg(state, feedback)
    else:
        b.drive_reg(state, b.concat(shifted, feedback))
    return state


def equals_const(b: GraphBuilder, signal: int, value: int, width: int) -> int:
    """1-bit flag: ``signal == value``."""
    return b.eq(signal, b.const(value, width))


def onehot_state_next(
    b: GraphBuilder,
    state: int,
    width: int,
    transitions: list[tuple[int, int, int]],
    default: int,
) -> int:
    """Priority-encoded next-state logic.

    ``transitions`` is a list of ``(current_value, condition_node, next_value)``;
    the first matching row wins, otherwise ``default`` (a value) is kept.
    """
    nxt = b.const(default, width)
    for current, cond, target in reversed(transitions):
        here = equals_const(b, state, current, width)
        take = b.and_(here, cond, width=1)
        nxt = b.mux(take, b.const(target, width), nxt)
    return nxt
