"""Chipyard-style benchmark generators: pipelined CPU-flavoured datapaths.

The Chipyard designs in the paper's corpus are Chisel-generated RISC-V
components; these generators emit the same structural idioms -- wide
registered pipelines, register files with bypass muxes, instruction field
decoders and multiply-accumulate units.
"""

from __future__ import annotations

from ..ir import CircuitGraph, GraphBuilder
from .common import binary_counter, equals_const


def pipeline_alu(width: int = 16, stages: int = 3) -> CircuitGraph:
    """N-stage registered ALU pipeline with per-stage transforms."""
    b = GraphBuilder("pipeline_alu")
    a = b.input("a", width)
    c = b.input("b", width)
    op = b.input("op", 2)

    stage_val = b.add(a, c, width=width)
    alt = b.xor(a, c)
    stage_val = b.mux(b.bit(op, 0), stage_val, alt)
    for s in range(stages):
        reg = b.reg(f"stage{s}", width)
        b.drive_reg(reg, stage_val)
        rotated = b.concat(b.slice_(reg, width - 2, 0), b.bit(reg, width - 1))
        bumped = b.add(reg, b.const(s + 1, width), width=width)
        stage_val = b.mux(b.bit(op, 1), rotated, bumped)
    out_reg = b.reg("pipe_out", width)
    b.drive_reg(out_reg, stage_val)
    b.output("result", out_reg)
    return b.build()


def regfile_bypass(entries: int = 4, width: int = 16) -> CircuitGraph:
    """Small register file with write decoder and read-after-write bypass."""
    if entries & (entries - 1):
        raise ValueError("entries must be a power of two")
    idx_w = max(1, entries.bit_length() - 1)
    b = GraphBuilder("regfile_bypass")
    waddr = b.input("waddr", idx_w)
    wdata = b.input("wdata", width)
    wen = b.input("wen", 1)
    raddr = b.input("raddr", idx_w)

    regs = [b.reg(f"x{i}", width) for i in range(entries)]
    for i, reg in enumerate(regs):
        hit = b.and_(wen, equals_const(b, waddr, i, idx_w), width=1)
        b.drive_reg(reg, b.mux(hit, wdata, reg))

    rdata = regs[0]
    for i in range(1, entries):
        rdata = b.mux(equals_const(b, raddr, i, idx_w), regs[i], rdata)
    same_addr = b.eq(raddr, waddr)
    bypass = b.and_(wen, same_addr, width=1)
    rdata = b.mux(bypass, wdata, rdata)
    out_reg = b.reg("rdata_q", width)
    b.drive_reg(out_reg, rdata)
    b.output("rdata", out_reg)
    return b.build()


def mul_pipe(width: int = 8) -> CircuitGraph:
    """Two-stage pipelined multiplier with an accumulate option."""
    b = GraphBuilder("mul_pipe")
    a = b.input("a", width)
    c = b.input("b", width)
    acc_en = b.input("acc_en", 1)
    a_q = b.reg("a_q", width)
    b_q = b.reg("b_q", width)
    b.drive_reg(a_q, a)
    b.drive_reg(b_q, c)
    product = b.mul(a_q, b_q, width=2 * width)
    prod_q = b.reg("prod_q", 2 * width)
    b.drive_reg(prod_q, product)
    acc = b.reg("acc", 2 * width)
    summed = b.add(acc, prod_q, width=2 * width)
    b.drive_reg(acc, b.mux(acc_en, summed, prod_q))
    b.output("product", prod_q)
    b.output("accumulated", acc)
    return b.build()


def branch_unit(width: int = 16) -> CircuitGraph:
    """Branch resolution: comparators, target adder, taken/target regs."""
    b = GraphBuilder("branch_unit")
    rs1 = b.input("rs1", width)
    rs2 = b.input("rs2", width)
    pc = b.input("pc", width)
    offset = b.input("offset", width)
    kind = b.input("kind", 2)

    eq = b.eq(rs1, rs2)
    lt = b.lt(rs1, rs2)
    ne = b.not_(eq)
    ge = b.not_(lt)
    taken = b.mux(
        equals_const(b, kind, 0, 2), eq,
        b.mux(equals_const(b, kind, 1, 2), ne,
              b.mux(equals_const(b, kind, 2, 2), lt, ge)),
    )
    target = b.add(pc, offset, width=width)
    fallthrough = b.add(pc, b.const(4, width), width=width)
    next_pc = b.mux(taken, target, fallthrough)
    taken_q = b.reg("taken_q", 1)
    next_pc_q = b.reg("next_pc_q", width)
    b.drive_reg(taken_q, taken)
    b.drive_reg(next_pc_q, next_pc)
    b.output("branch_taken", taken_q)
    b.output("branch_target", next_pc_q)
    return b.build()


def cache_ctrl(tag_width: int = 8, ways: int = 2) -> CircuitGraph:
    """Cache controller: tag compare per way, valid bits, miss FSM."""
    b = GraphBuilder("cache_ctrl")
    req = b.input("req", 1)
    tag_in = b.input("tag", tag_width)
    state = b.reg("cc_state", 2)

    hits = []
    for w in range(ways):
        tag_reg = b.reg(f"tag_way{w}", tag_width)
        valid = b.reg(f"valid_way{w}", 1)
        refill_this = b.and_(
            equals_const(b, state, 2, 2),
            equals_const(b, binary_counter(b, f"lru{w}", 1), w % 2, 1),
            width=1,
        )
        b.drive_reg(tag_reg, b.mux(refill_this, tag_in, tag_reg))
        b.drive_reg(valid, b.or_(valid, refill_this, width=1))
        hits.append(b.and_(b.eq(tag_reg, tag_in), valid, width=1))
    hit = hits[0]
    for h in hits[1:]:
        hit = b.or_(hit, h, width=1)

    miss = b.and_(req, b.not_(hit), width=1)
    idle = equals_const(b, state, 0, 2)
    fetching = equals_const(b, state, 1, 2)
    refilling = equals_const(b, state, 2, 2)
    nxt = b.mux(
        b.and_(idle, miss, width=1), b.const(1, 2),
        b.mux(fetching, b.const(2, 2),
              b.mux(refilling, b.const(0, 2), state)),
    )
    b.drive_reg(state, nxt)
    b.output("cache_hit", hit)
    b.output("cache_busy", b.not_(idle))
    return b.build()


def decode_unit(width: int = 32) -> CircuitGraph:
    """Instruction decoder: field slices, opcode compares, control regs."""
    b = GraphBuilder("decode_unit")
    instr = b.input("instr", width)
    opcode = b.slice_(instr, 6, 0)
    rd = b.slice_(instr, 11, 7)
    funct3 = b.slice_(instr, 14, 12)
    rs1 = b.slice_(instr, 19, 15)
    rs2 = b.slice_(instr, 24, 20)
    imm = b.slice_(instr, min(31, width - 1), 20)

    is_op = equals_const(b, opcode, 0x33, 7)
    is_imm = equals_const(b, opcode, 0x13, 7)
    is_load = equals_const(b, opcode, 0x03, 7)
    is_store = equals_const(b, opcode, 0x23, 7)
    is_branch = equals_const(b, opcode, 0x63, 7)

    uses_imm = b.or_(is_imm, b.or_(is_load, is_store, width=1), width=1)
    writes_rd = b.or_(is_op, b.or_(is_imm, is_load, width=1), width=1)

    ctrl = b.concat(uses_imm, writes_rd)
    ctrl = b.concat(is_branch, ctrl)
    ctrl_q = b.reg("ctrl_q", 3)
    b.drive_reg(ctrl_q, ctrl)
    rd_q = b.reg("rd_q", 5)
    b.drive_reg(rd_q, rd)
    operands = b.concat(rs1, rs2)
    operands_q = b.reg("operands_q", 10)
    b.drive_reg(operands_q, operands)
    imm_q = b.reg("imm_q", 12)
    b.drive_reg(imm_q, imm)
    sel3 = b.reg("funct3_q", 3)
    b.drive_reg(sel3, funct3)
    b.output("ctrl", ctrl_q)
    b.output("rd_out", rd_q)
    b.output("operands", operands_q)
    b.output("imm_out", imm_q)
    b.output("funct3_out", sel3)
    return b.build()


def mac_unit(width: int = 8) -> CircuitGraph:
    """Multiply-accumulate with saturation, systolic-array flavour."""
    b = GraphBuilder("mac_unit")
    a = b.input("a", width)
    w_in = b.input("w", width)
    clear = b.input("clear", 1)
    product = b.mul(a, w_in, width=2 * width)
    acc = b.reg("mac_acc", 2 * width)
    summed = b.add(acc, product, width=2 * width)
    limit = b.const((1 << (2 * width)) - 1, 2 * width)
    overflow = b.lt(summed, acc)  # wraparound detector
    saturated = b.mux(overflow, limit, summed)
    b.drive_reg(acc, b.mux(clear, b.const(0, 2 * width), saturated))
    b.output("mac_out", acc)
    b.output("mac_sat", overflow)
    return b.build()


def scrambler(width: int = 16) -> CircuitGraph:
    """LFSR-based data scrambler with registered output stage."""
    b = GraphBuilder("scrambler")
    data = b.input("data", width)
    from .common import lfsr

    state = lfsr(b, "scramble_lfsr", width, taps=(width - 1, width // 2, 0))
    mixed = b.xor(data, state)
    out_q = b.reg("scrambled_q", width)
    b.drive_reg(out_q, mixed)
    b.output("scrambled", out_q)
    b.output("lfsr_state", state)
    return b.build()


GENERATORS = {
    "pipeline_alu": pipeline_alu,
    "regfile_bypass": regfile_bypass,
    "mul_pipe": mul_pipe,
    "branch_unit": branch_unit,
    "cache_ctrl": cache_ctrl,
    "decode_unit": decode_unit,
    "mac_unit": mac_unit,
    "scrambler": scrambler,
}
