"""ITC'99-style benchmark generators: small control-dominated FSM designs.

The ITC'99 suite (b01..b15) consists of compact sequential controllers;
these generators produce circuits with the same flavour -- a state
register, next-state priority logic, counters and serial data paths.
"""

from __future__ import annotations

from ..ir import CircuitGraph, GraphBuilder
from .common import equals_const, onehot_state_next


def sequence_detector(pattern_width: int = 4) -> CircuitGraph:
    """b01-like serial pattern detector with a shift register and FSM."""
    b = GraphBuilder("seq_detector")
    serial = b.input("serial_in", 1)
    shift = b.reg("shift", pattern_width)
    upper = b.slice_(shift, pattern_width - 2, 0)
    b.drive_reg(shift, b.concat(upper, serial))
    pattern = b.const((1 << pattern_width) - 2, pattern_width)  # e.g. 1110
    hit = b.eq(shift, pattern)
    hits = b.reg("hit_count", 4)
    one = b.const(1, 4)
    b.drive_reg(hits, b.mux(hit, b.add(hits, one, width=4), hits))
    b.output("match", hit)
    b.output("match_count", hits)
    return b.build()


def bcd_recognizer() -> CircuitGraph:
    """b02-like serial BCD recognizer: 3-bit FSM over a serial input."""
    b = GraphBuilder("bcd_recognizer")
    bit_in = b.input("bit_in", 1)
    state = b.reg("state", 3)
    not_bit = b.not_(bit_in)
    transitions = [
        (0, bit_in, 1), (0, not_bit, 2),
        (1, bit_in, 3), (1, not_bit, 4),
        (2, bit_in, 4), (2, not_bit, 0),
        (3, bit_in, 0), (3, not_bit, 5),
        (4, bit_in, 5), (4, not_bit, 1),
        (5, bit_in, 2), (5, not_bit, 0),
    ]
    b.drive_reg(state, onehot_state_next(b, state, 3, transitions, 0))
    b.output("valid", equals_const(b, state, 5, 3))
    b.output("state_out", state)
    return b.build()


def traffic_light(timer_width: int = 6) -> CircuitGraph:
    """Traffic-light controller: 2-bit phase FSM plus a dwell timer."""
    b = GraphBuilder("traffic_light")
    phase = b.reg("phase", 2)
    timer = b.reg("timer", timer_width)
    one = b.const(1, timer_width)
    green_time = b.const(40 % (1 << timer_width), timer_width)
    yellow_time = b.const(8, timer_width)
    red_time = b.const(32 % (1 << timer_width), timer_width)
    limit = b.mux(
        equals_const(b, phase, 0, 2), green_time,
        b.mux(equals_const(b, phase, 1, 2), yellow_time, red_time),
    )
    expired = b.eq(timer, limit)
    zero = b.const(0, timer_width)
    b.drive_reg(timer, b.mux(expired, zero, b.add(timer, one, width=timer_width)))
    two = b.const(2, 2)
    wrap = b.eq(phase, two)
    inc_phase = b.add(phase, b.const(1, 2), width=2)
    next_phase = b.mux(wrap, b.const(0, 2), inc_phase)
    b.drive_reg(phase, b.mux(expired, next_phase, phase))
    b.output("phase_out", phase)
    b.output("change", expired)
    return b.build()


def arbiter(requesters: int = 4) -> CircuitGraph:
    """Rotating-priority arbiter: grant register + request masking."""
    b = GraphBuilder("arbiter")
    req = b.input("req", requesters)
    last = b.reg("last_grant", requesters)
    grant_bits = []
    taken = None
    for i in range(requesters):
        r = b.bit(req, i)
        was_last = b.bit(last, i)
        eligible = b.and_(r, b.not_(was_last), width=1)
        if taken is None:
            grant = eligible
            taken = eligible
        else:
            grant = b.and_(eligible, b.not_(taken), width=1)
            taken = b.or_(taken, eligible, width=1)
        grant_bits.append(grant)
    grant_word = grant_bits[0]
    for g in grant_bits[1:]:
        grant_word = b.concat(g, grant_word)
    any_grant = b.reduce_or(grant_word)
    b.drive_reg(last, b.mux(any_grant, grant_word, last))
    b.output("grant", grant_word)
    b.output("busy", any_grant)
    return b.build()


def counter_timer(width: int = 8) -> CircuitGraph:
    """Loadable timer with terminal-count flag (b03 flavour)."""
    b = GraphBuilder("counter_timer")
    load = b.input("load", 1)
    load_value = b.input("load_value", width)
    enable = b.input("enable", 1)
    count = b.reg("count", width)
    zero = b.const(0, width)
    terminal = b.eq(count, zero)
    dec = b.sub(count, b.const(1, width), width=width)
    running = b.mux(terminal, count, dec)
    gated = b.mux(enable, running, count)
    b.drive_reg(count, b.mux(load, load_value, gated))
    b.output("expired", terminal)
    b.output("current", count)
    return b.build()


def shift_control(width: int = 8) -> CircuitGraph:
    """b04-like shift unit: FSM-controlled parallel-load shift register."""
    b = GraphBuilder("shift_control")
    start = b.input("start", 1)
    data = b.input("data", width)
    state = b.reg("ctl_state", 2)
    shreg = b.reg("shreg", width)
    bits_left = b.reg("bits_left", 4)

    idle = equals_const(b, state, 0, 2)
    shifting = equals_const(b, state, 1, 2)
    done_count = b.eq(bits_left, b.const(0, 4))

    go = b.and_(idle, start, width=1)
    finish = b.and_(shifting, done_count, width=1)
    nxt_state = b.mux(go, b.const(1, 2), b.mux(finish, b.const(0, 2), state))
    b.drive_reg(state, nxt_state)

    shifted = b.concat(b.slice_(shreg, width - 2, 0), b.const(0, 1))
    b.drive_reg(shreg, b.mux(go, data, b.mux(shifting, shifted, shreg)))
    dec = b.sub(bits_left, b.const(1, 4), width=4)
    b.drive_reg(
        bits_left,
        b.mux(go, b.const(width % 16, 4), b.mux(shifting, dec, bits_left)),
    )
    b.output("serial_out", b.bit(shreg, width - 1))
    b.output("busy", shifting)
    return b.build()


#: name -> zero-argument constructor with default parameters.
GENERATORS = {
    "seq_detector": sequence_detector,
    "bcd_recognizer": bcd_recognizer,
    "traffic_light": traffic_light,
    "arbiter": arbiter,
    "counter_timer": counter_timer,
    "shift_control": shift_control,
}
