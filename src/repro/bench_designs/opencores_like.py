"""OpenCores-style benchmark generators: communication and DSP blocks.

These mirror the Verilog peripheral cores the paper samples from the
OpenCores / IWLS 2005 collection: UARTs, SPI, FIFOs, CRC, ALUs and pulse
generators -- mixed control and datapath at moderate widths.
"""

from __future__ import annotations

from ..ir import CircuitGraph, GraphBuilder
from .common import binary_counter, equals_const


def uart_tx(data_bits: int = 8, baud_width: int = 4) -> CircuitGraph:
    """UART transmitter: baud counter, bit counter, shift register, FSM."""
    b = GraphBuilder("uart_tx")
    start = b.input("start", 1)
    data = b.input("data", data_bits)
    busy = b.reg("busy", 1)
    baud = b.reg("baud", baud_width)
    bitcnt = b.reg("bitcnt", 4)
    shifter = b.reg("shifter", data_bits + 1)

    baud_top = b.const((1 << baud_width) - 1, baud_width)
    tick = b.eq(baud, baud_top)
    b.drive_reg(
        baud,
        b.mux(busy, b.add(baud, b.const(1, baud_width), width=baud_width),
              b.const(0, baud_width)),
    )

    go = b.and_(start, b.not_(busy), width=1)
    frame = b.concat(data, b.const(0, 1))  # data plus start bit
    shifted = b.concat(b.const(1, 1), b.slice_(shifter, data_bits, 1))
    advance = b.and_(busy, tick, width=1)
    b.drive_reg(shifter, b.mux(go, frame, b.mux(advance, shifted, shifter)))

    last_bit = b.eq(bitcnt, b.const((data_bits + 1) % 16, 4))
    b.drive_reg(
        bitcnt,
        b.mux(go, b.const(0, 4),
              b.mux(advance, b.add(bitcnt, b.const(1, 4), width=4), bitcnt)),
    )
    done = b.and_(advance, last_bit, width=1)
    b.drive_reg(busy, b.or_(go, b.and_(busy, b.not_(done), width=1), width=1))
    b.output("tx", b.bit(shifter, 0))
    b.output("tx_busy", busy)
    return b.build()


def uart_rx(data_bits: int = 8, sample_width: int = 4) -> CircuitGraph:
    """UART receiver: edge detect, mid-bit sampling, shift assembly."""
    b = GraphBuilder("uart_rx")
    rx = b.input("rx", 1)
    active = b.reg("active", 1)
    sampler = b.reg("sampler", sample_width)
    bitcnt = b.reg("rx_bitcnt", 4)
    assembled = b.reg("assembled", data_bits)
    valid = b.reg("valid", 1)

    start_edge = b.and_(b.not_(rx), b.not_(active), width=1)
    sample_top = b.const((1 << sample_width) - 1, sample_width)
    tick = b.eq(sampler, sample_top)
    b.drive_reg(
        sampler,
        b.mux(active,
              b.add(sampler, b.const(1, sample_width), width=sample_width),
              b.const(0, sample_width)),
    )
    shifted = b.concat(rx, b.slice_(assembled, data_bits - 1, 1))
    capture = b.and_(active, tick, width=1)
    b.drive_reg(assembled, b.mux(capture, shifted, assembled))

    frame_done = b.eq(bitcnt, b.const(data_bits % 16, 4))
    b.drive_reg(
        bitcnt,
        b.mux(start_edge, b.const(0, 4),
              b.mux(capture, b.add(bitcnt, b.const(1, 4), width=4), bitcnt)),
    )
    stop = b.and_(capture, frame_done, width=1)
    b.drive_reg(
        active,
        b.or_(start_edge, b.and_(active, b.not_(stop), width=1), width=1),
    )
    b.drive_reg(valid, stop)
    b.output("data_out", assembled)
    b.output("data_valid", valid)
    return b.build()


def spi_master(width: int = 8, div_width: int = 3) -> CircuitGraph:
    """SPI master: clock divider, MOSI shift register, transfer counter."""
    b = GraphBuilder("spi_master")
    start = b.input("start", 1)
    mosi_data = b.input("mosi_data", width)
    miso = b.input("miso", 1)
    div = b.reg("clk_div", div_width)
    sck = b.reg("sck", 1)
    tx_shift = b.reg("tx_shift", width)
    rx_shift = b.reg("rx_shift", width)
    remaining = b.reg("remaining", 4)

    div_top = b.const((1 << div_width) - 1, div_width)
    tick = b.eq(div, div_top)
    b.drive_reg(
        div, b.mux(tick, b.const(0, div_width),
                   b.add(div, b.const(1, div_width), width=div_width))
    )
    b.drive_reg(sck, b.mux(tick, b.not_(sck), sck))

    busy = b.not_(b.eq(remaining, b.const(0, 4)))
    go = b.and_(start, b.not_(busy), width=1)
    shift_en = b.and_(b.and_(busy, tick, width=1), sck, width=1)
    tx_next = b.concat(b.slice_(tx_shift, width - 2, 0), b.const(0, 1))
    b.drive_reg(tx_shift, b.mux(go, mosi_data, b.mux(shift_en, tx_next, tx_shift)))
    rx_next = b.concat(b.slice_(rx_shift, width - 2, 0), miso)
    b.drive_reg(rx_shift, b.mux(shift_en, rx_next, rx_shift))
    dec = b.sub(remaining, b.const(1, 4), width=4)
    b.drive_reg(
        remaining,
        b.mux(go, b.const(width % 16, 4), b.mux(shift_en, dec, remaining)),
    )
    b.output("mosi", b.bit(tx_shift, width - 1))
    b.output("spi_busy", busy)
    b.output("rx_data", rx_shift)
    return b.build()


def fifo_sync(depth: int = 4, width: int = 8) -> CircuitGraph:
    """Synchronous FIFO with register storage and pointer math."""
    if depth & (depth - 1):
        raise ValueError("depth must be a power of two")
    ptr_width = max(1, depth.bit_length() - 1)
    b = GraphBuilder("fifo_sync")
    push = b.input("push", 1)
    pop = b.input("pop", 1)
    data_in = b.input("data_in", width)

    wptr = b.reg("wptr", ptr_width)
    rptr = b.reg("rptr", ptr_width)
    count = b.reg("count", ptr_width + 1)
    slots = [b.reg(f"slot{i}", width) for i in range(depth)]

    full = b.eq(count, b.const(depth, ptr_width + 1))
    empty = b.eq(count, b.const(0, ptr_width + 1))
    do_push = b.and_(push, b.not_(full), width=1)
    do_pop = b.and_(pop, b.not_(empty), width=1)

    for i, slot in enumerate(slots):
        here = b.and_(do_push, equals_const(b, wptr, i, ptr_width), width=1)
        b.drive_reg(slot, b.mux(here, data_in, slot))

    one_p = b.const(1, ptr_width)
    b.drive_reg(wptr, b.mux(do_push, b.add(wptr, one_p, width=ptr_width), wptr))
    b.drive_reg(rptr, b.mux(do_pop, b.add(rptr, one_p, width=ptr_width), rptr))
    one_c = b.const(1, ptr_width + 1)
    up = b.add(count, one_c, width=ptr_width + 1)
    down = b.sub(count, one_c, width=ptr_width + 1)
    only_push = b.and_(do_push, b.not_(do_pop), width=1)
    only_pop = b.and_(do_pop, b.not_(do_push), width=1)
    b.drive_reg(count, b.mux(only_push, up, b.mux(only_pop, down, count)))

    head = slots[0]
    for i in range(1, depth):
        head = b.mux(equals_const(b, rptr, i, ptr_width), slots[i], head)
    b.output("data_out", head)
    b.output("fifo_full", full)
    b.output("fifo_empty", empty)
    return b.build()


def crc_generator(data_width: int = 8, crc_width: int = 8,
                  polynomial: int = 0x07) -> CircuitGraph:
    """Parallel CRC: XOR network over the CRC register and input word."""
    b = GraphBuilder("crc_gen")
    data = b.input("data", data_width)
    enable = b.input("enable", 1)
    crc = b.reg("crc_state", crc_width)

    # Bit-serial CRC unrolled data_width times over single-bit nodes.
    state_bits = [b.bit(crc, i) for i in range(crc_width)]
    for j in range(data_width):
        din = b.bit(data, j)
        feedback = b.xor(state_bits[crc_width - 1], din, width=1)
        new_bits = []
        for i in range(crc_width):
            prev = state_bits[i - 1] if i > 0 else b.const(0, 1)
            if (polynomial >> i) & 1:
                new_bits.append(b.xor(prev, feedback, width=1))
            else:
                new_bits.append(prev if i > 0 else feedback)
        state_bits = new_bits
    word = state_bits[0]
    for bit in state_bits[1:]:
        word = b.concat(bit, word)
    b.drive_reg(crc, b.mux(enable, word, crc))
    b.output("crc_out", crc)
    return b.build()


def alu(width: int = 8) -> CircuitGraph:
    """Registered ALU: add/sub/and/or/xor/shift ops behind an op mux."""
    b = GraphBuilder("alu")
    op = b.input("op", 3)
    a = b.input("a", width)
    c = b.input("b", width)
    results = [
        b.add(a, c, width=width),
        b.sub(a, c, width=width),
        b.and_(a, c),
        b.or_(a, c),
        b.xor(a, c),
        b.shl(a, b.slice_(c, 2, 0)),
        b.shr(a, b.slice_(c, 2, 0)),
        b.not_(a),
    ]
    selected = results[-1]
    for i in reversed(range(len(results) - 1)):
        selected = b.mux(equals_const(b, op, i, 3), results[i], selected)
    out_reg = b.reg("result", width)
    b.drive_reg(out_reg, selected)
    flag_zero = b.eq(selected, b.const(0, width))
    flag_reg = b.reg("zero_flag", 1)
    b.drive_reg(flag_reg, flag_zero)
    b.output("alu_result", out_reg)
    b.output("alu_zero", flag_reg)
    return b.build()


def pwm(width: int = 8) -> CircuitGraph:
    """PWM generator: free counter compared against a latched duty cycle."""
    b = GraphBuilder("pwm")
    duty_in = b.input("duty", width)
    update = b.input("update", 1)
    counter = binary_counter(b, "pwm_counter", width)
    duty = b.reg("duty_reg", width)
    b.drive_reg(duty, b.mux(update, duty_in, duty))
    out = b.lt(counter, duty)
    out_reg = b.reg("pwm_out", 1)
    b.drive_reg(out_reg, out)
    b.output("pwm", out_reg)
    b.output("position", counter)
    return b.build()


def gray_counter(width: int = 8) -> CircuitGraph:
    """Binary counter with registered Gray-code output."""
    b = GraphBuilder("gray_counter")
    enable = b.input("en", 1)
    binary = binary_counter(b, "bin_count", width, enable=enable)
    gray = b.xor(binary, b.shr(binary, b.const(1, 1)), width=width)
    gray_reg = b.reg("gray_reg", width)
    b.drive_reg(gray_reg, gray)
    b.output("gray", gray_reg)
    return b.build()


GENERATORS = {
    "uart_tx": uart_tx,
    "uart_rx": uart_rx,
    "spi_master": spi_master,
    "fifo_sync": fifo_sync,
    "crc_gen": crc_generator,
    "alu": alu,
    "pwm": pwm,
    "gray_counter": gray_counter,
}
