"""Verilog subset -> circuit graph (the ``f`` direction of the bijection).

Accepts the synthesizable subset emitted by :mod:`repro.hdl.codegen` plus a
little hand-written slack: nested expressions are decomposed into
intermediate operator nodes, plain-wire aliases are folded away, and
``_pad`` helper wires produced by the code generator are resolved back to
their drivers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..ir import CircuitGraph, NodeType

# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>//[^\n]*)
  | (?P<SIZED>\d+\s*'[bdh][0-9a-fA-F_xzXZ]+)
  | (?P<NUM>\d+)
  | (?P<ID>[A-Za-z_][A-Za-z0-9_$]*)
  | (?P<OP><<|>>|==|!=|<=|[~|&^+\-*<>?:\[\]{}(),;=@])
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m:
            raise HDLSyntaxError(f"unexpected character {text[pos]!r} at offset {pos}")
        pos = m.end()
        kind = m.lastgroup
        if kind in ("WS", "COMMENT"):
            continue
        tokens.append(m.group().replace(" ", ""))
    return tokens


class HDLSyntaxError(ValueError):
    """Raised when the input is outside the supported Verilog subset."""


# ---------------------------------------------------------------------------
# Expression AST
# ---------------------------------------------------------------------------


@dataclass
class Ident:
    name: str


@dataclass
class Literal:
    value: int
    width: int


@dataclass
class UnOp:
    op: str  # "~" or "|"
    operand: "Expr"


@dataclass
class BinOp:
    op: str
    left: "Expr"
    right: "Expr"


@dataclass
class Concat:
    parts: list


@dataclass
class Ternary:
    cond: "Expr"
    if_true: "Expr"
    if_false: "Expr"


@dataclass
class Slice:
    source: "Expr"
    hi: int
    lo: int


Expr = Ident | Literal | UnOp | BinOp | Concat | Ternary | Slice


_BINOP_TYPES = {
    "+": NodeType.ADD,
    "-": NodeType.SUB,
    "*": NodeType.MUL,
    "&": NodeType.AND,
    "|": NodeType.OR,
    "^": NodeType.XOR,
    "==": NodeType.EQ,
    "<": NodeType.LT,
    "<<": NodeType.SHL,
    ">>": NodeType.SHR,
}

# Precedence (low to high); ternary handled separately above these.
_PRECEDENCE = [
    {"|"},
    {"^"},
    {"&"},
    {"==", "!="},
    {"<", ">"},
    {"<<", ">>"},
    {"+", "-"},
    {"*"},
]


class _ExprParser:
    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise HDLSyntaxError("unexpected end of expression")
        self.pos += 1
        return tok

    def expect(self, tok: str) -> None:
        got = self.next()
        if got != tok:
            raise HDLSyntaxError(f"expected {tok!r}, got {got!r}")

    def parse(self) -> Expr:
        expr = self.parse_ternary()
        if self.peek() is not None:
            raise HDLSyntaxError(f"trailing tokens: {self.tokens[self.pos:]}")
        return expr

    def parse_ternary(self) -> Expr:
        cond = self.parse_binary(0)
        if self.peek() == "?":
            self.next()
            if_true = self.parse_ternary()
            self.expect(":")
            if_false = self.parse_ternary()
            return Ternary(cond, if_true, if_false)
        return cond

    def parse_binary(self, level: int) -> Expr:
        if level >= len(_PRECEDENCE):
            return self.parse_unary()
        left = self.parse_binary(level + 1)
        while self.peek() in _PRECEDENCE[level]:
            op = self.next()
            right = self.parse_binary(level + 1)
            left = BinOp(op, left, right)
        return left

    def parse_unary(self) -> Expr:
        tok = self.peek()
        if tok in ("~", "|"):
            self.next()
            return UnOp(tok, self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        expr = self.parse_primary()
        while self.peek() == "[":
            self.next()
            hi = int(self.next())
            if self.peek() == ":":
                self.next()
                lo = int(self.next())
            else:
                lo = hi
            self.expect("]")
            expr = Slice(expr, hi, lo)
        return expr

    def parse_primary(self) -> Expr:
        tok = self.next()
        if tok == "(":
            inner = self.parse_ternary()
            self.expect(")")
            return inner
        if tok == "{":
            parts = [self.parse_ternary()]
            while self.peek() == ",":
                self.next()
                parts.append(self.parse_ternary())
            self.expect("}")
            return Concat(parts)
        if "'" in tok:
            return _parse_sized_literal(tok)
        if tok.isdigit():
            value = int(tok)
            return Literal(value, max(1, value.bit_length()))
        if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_$]*", tok):
            return Ident(tok)
        raise HDLSyntaxError(f"unexpected token {tok!r} in expression")


def _parse_sized_literal(tok: str) -> Literal:
    width_str, rest = tok.split("'", 1)
    base_char, digits = rest[0].lower(), rest[1:].replace("_", "")
    base = {"d": 10, "b": 2, "h": 16}[base_char]
    return Literal(int(digits, base), int(width_str))


def parse_expression(text: str) -> Expr:
    return _ExprParser(tokenize(text)).parse()


# ---------------------------------------------------------------------------
# Module parser
# ---------------------------------------------------------------------------


@dataclass
class _Signal:
    name: str
    kind: str  # "input" | "output" | "wire" | "reg"
    width: int
    order: int


_DECL_RE = re.compile(
    r"^(input|output|wire|reg)\s*(?:\[\s*(\d+)\s*:\s*(\d+)\s*\])?\s*"
    r"([A-Za-z_][A-Za-z0-9_$]*)\s*(?:=\s*(.*))?$",
    re.DOTALL,
)
_ASSIGN_RE = re.compile(
    r"^assign\s+([A-Za-z_][A-Za-z0-9_$]*)\s*=\s*(.*)$", re.DOTALL
)
_NONBLOCKING_RE = re.compile(
    r"^([A-Za-z_][A-Za-z0-9_$]*)\s*<=\s*(.*)$", re.DOTALL
)
_MODULE_RE = re.compile(
    r"module\s+([A-Za-z_][A-Za-z0-9_$]*)\s*\(([^)]*)\)\s*;", re.DOTALL
)


def parse_verilog(text: str) -> CircuitGraph:
    """Parse one module of the supported subset into a circuit graph."""
    text = re.sub(r"//[^\n]*", "", text)
    m = _MODULE_RE.search(text)
    if not m:
        raise HDLSyntaxError("no module declaration found")
    module_name = m.group(1)
    body = text[m.end():]
    end = body.find("endmodule")
    if end < 0:
        raise HDLSyntaxError("missing endmodule")
    body = body[:end]

    # Pull out always blocks first (they contain ';' internally).
    seq_assigns: dict[str, str] = {}
    def _grab_always(match: re.Match) -> str:
        block = match.group(1)
        for stmt in block.split(";"):
            stmt = stmt.strip()
            if not stmt:
                continue
            nb = _NONBLOCKING_RE.match(stmt)
            if not nb:
                raise HDLSyntaxError(f"unsupported sequential statement: {stmt!r}")
            seq_assigns[nb.group(1)] = nb.group(2).strip()
        return ""

    body = re.sub(
        r"always\s*@\s*\(\s*posedge\s+clk\s*\)\s*begin(.*?)end",
        _grab_always,
        body,
        flags=re.DOTALL,
    )

    signals: dict[str, _Signal] = {}
    comb_assigns: dict[str, str] = {}
    order = 0
    for raw_stmt in body.split(";"):
        stmt = " ".join(raw_stmt.split())
        if not stmt:
            continue
        decl = _DECL_RE.match(stmt)
        if decl:
            kind, hi, lo, name, init = decl.groups()
            width = 1 if hi is None else int(hi) - int(lo) + 1
            if name == "clk":
                continue
            signals[name] = _Signal(name, kind, width, order)
            order += 1
            if init:
                comb_assigns[name] = init.strip()
            continue
        assign = _ASSIGN_RE.match(stmt)
        if assign:
            comb_assigns[assign.group(1)] = assign.group(2).strip()
            continue
        raise HDLSyntaxError(f"unsupported statement: {stmt!r}")

    return _GraphBuilderFromAST(
        module_name, signals, comb_assigns, seq_assigns
    ).build()


class _GraphBuilderFromAST:
    """Second pass: signals + expression ASTs -> CircuitGraph."""

    def __init__(
        self,
        module_name: str,
        signals: dict[str, _Signal],
        comb_assigns: dict[str, str],
        seq_assigns: dict[str, str],
    ):
        self.graph = CircuitGraph(module_name)
        self.signals = signals
        self.comb_assigns = comb_assigns
        self.seq_assigns = seq_assigns
        self.node_of: dict[str, int] = {}
        self.alias_of: dict[str, str] = {}
        self._in_progress: set[str] = set()

    def build(self) -> CircuitGraph:
        # Fold plain aliases (assign x = y with no operator), incl. _pad wires.
        for name, expr_text in list(self.comb_assigns.items()):
            sig = self.signals.get(name)
            if sig is None:
                raise HDLSyntaxError(f"assignment to undeclared signal {name!r}")
            if sig.kind == "wire":
                expr = parse_expression(expr_text)
                if isinstance(expr, Ident) and expr.name in self.signals:
                    src = self.signals[expr.name]
                    if src.width == sig.width or name.endswith("_pad"):
                        self.alias_of[name] = expr.name
                        del self.comb_assigns[name]

        # Inputs become IN nodes immediately (declaration order).
        for sig in sorted(self.signals.values(), key=lambda s: s.order):
            if sig.kind == "input":
                self.node_of[sig.name] = self.graph.add_node(
                    NodeType.IN, sig.width, name=sig.name
                )

        # Registers get placeholder nodes first so feedback can resolve.
        for sig in sorted(self.signals.values(), key=lambda s: s.order):
            if sig.kind == "reg":
                if sig.name not in self.seq_assigns:
                    raise HDLSyntaxError(
                        f"register {sig.name!r} has no sequential assignment"
                    )
                self.node_of[sig.name] = self.graph.add_node(
                    NodeType.REG, sig.width, name=sig.name
                )

        # Wires with defining expressions.
        for sig in sorted(self.signals.values(), key=lambda s: s.order):
            if sig.kind == "wire" and sig.name not in self.alias_of:
                self._resolve(sig.name)

        # Register D inputs.
        for name, expr_text in self.seq_assigns.items():
            reg_node = self.node_of[name]
            driver = self._build_expr(
                parse_expression(expr_text), self.signals[name].width
            )
            self.graph.set_parent(reg_node, 0, driver)

        # Outputs last.
        for sig in sorted(self.signals.values(), key=lambda s: s.order):
            if sig.kind == "output":
                if sig.name not in self.comb_assigns:
                    raise HDLSyntaxError(f"output {sig.name!r} is never assigned")
                driver = self._build_expr(
                    parse_expression(self.comb_assigns[sig.name]), sig.width
                )
                out_node = self.graph.add_node(NodeType.OUT, sig.width, name=sig.name)
                self.graph.set_parent(out_node, 0, driver)
        return self.graph

    # -- signal resolution ------------------------------------------------
    def _resolve(self, name: str) -> int:
        """Node id driving signal ``name`` (following aliases)."""
        while name in self.alias_of:
            name = self.alias_of[name]
        if name in self.node_of:
            return self.node_of[name]
        if name in self._in_progress:
            raise HDLSyntaxError(f"combinational cycle through wire {name!r}")
        sig = self.signals.get(name)
        if sig is None:
            raise HDLSyntaxError(f"use of undeclared signal {name!r}")
        if name not in self.comb_assigns:
            raise HDLSyntaxError(f"wire {name!r} is never assigned")
        self._in_progress.add(name)
        node = self._build_expr(
            parse_expression(self.comb_assigns[name]), sig.width, target=name
        )
        self._in_progress.discard(name)
        self.node_of[name] = node
        return node

    # -- expression lowering ------------------------------------------------
    def _build_expr(self, expr: Expr, width: int, target: str | None = None) -> int:
        """Create graph nodes for ``expr``; result node has ``width``."""
        g = self.graph
        if isinstance(expr, Ident):
            return self._resolve(expr.name)
        if isinstance(expr, Literal):
            node = g.add_node(
                NodeType.CONST, max(expr.width, 1),
                params={"value": expr.value}, name=target,
            )
            return node
        if isinstance(expr, UnOp):
            if expr.op == "~":
                operand = self._build_expr(expr.operand, width)
                node = g.add_node(NodeType.NOT, width, name=target)
                g.set_parent(node, 0, operand)
                return node
            if expr.op == "|":
                operand = self._build_expr(expr.operand, width)
                node = g.add_node(NodeType.REDUCE_OR, 1, name=target)
                g.set_parent(node, 0, operand)
                return node
            raise HDLSyntaxError(f"unsupported unary operator {expr.op!r}")
        if isinstance(expr, BinOp):
            ntype = _BINOP_TYPES.get(expr.op)
            if ntype is None:
                raise HDLSyntaxError(f"unsupported operator {expr.op!r}")
            out_width = 1 if ntype in (NodeType.EQ, NodeType.LT) else width
            left = self._build_expr(expr.left, width)
            right = self._build_expr(expr.right, width)
            node = g.add_node(ntype, out_width, name=target)
            g.set_parent(node, 0, left)
            g.set_parent(node, 1, right)
            return node
        if isinstance(expr, Concat):
            parts = [
                self._build_expr(p, self._expr_width(p, width)) for p in expr.parts
            ]
            node = parts[0]
            # Left-fold into binary CONCAT nodes ({a, b, c} == {{a, b}, c}).
            # The outermost node takes the *declared* width: assignment
            # semantics truncate/extend the concatenation to the target.
            for k, nxt in enumerate(parts[1:]):
                last = k == len(parts) - 2
                w = width if last else g.node(node).width + g.node(nxt).width
                cc = g.add_node(NodeType.CONCAT, w, name=target)
                g.set_parent(cc, 0, node)
                g.set_parent(cc, 1, nxt)
                node = cc
            return node
        if isinstance(expr, Ternary):
            cond_expr = expr.cond
            # Codegen always emits (|sel) ? a : b; fold the reduction into
            # the MUX select when the operand is a plain signal.
            if isinstance(cond_expr, UnOp) and cond_expr.op == "|":
                sel = self._build_expr(
                    cond_expr.operand,
                    self._expr_width(cond_expr.operand, width),
                )
            else:
                sel = self._build_expr(
                    cond_expr, self._expr_width(cond_expr, width)
                )
            if_true = self._build_expr(expr.if_true, width)
            if_false = self._build_expr(expr.if_false, width)
            node = g.add_node(NodeType.MUX, width, name=target)
            g.set_parents(node, [sel, if_true, if_false])
            return node
        if isinstance(expr, Slice):
            src_width_hint = max(expr.hi + 1, width)
            src = self._build_expr(expr.source, src_width_hint)
            node = g.add_node(
                NodeType.SLICE,
                expr.hi - expr.lo + 1,
                params={"lo": expr.lo},
                name=target,
            )
            g.set_parent(node, 0, src)
            return node
        raise HDLSyntaxError(f"unsupported expression node {expr!r}")

    def _expr_width(self, expr: Expr, default: int) -> int:
        """Best-effort width of a sub-expression for intermediate nodes."""
        if isinstance(expr, Ident):
            name = expr.name
            while name in self.alias_of:
                name = self.alias_of[name]
            sig = self.signals.get(name)
            return sig.width if sig else default
        if isinstance(expr, Literal):
            return expr.width
        if isinstance(expr, Slice):
            return expr.hi - expr.lo + 1
        if isinstance(expr, (UnOp,)) and expr.op == "|":
            return 1
        return default
