"""Circuit graph -> synthesizable Verilog subset.

This is one direction of the paper's bijection ``f : D <-> G`` between HDL
code and circuit graphs.  The emitted subset uses only:

* ``module``/``endmodule`` with a ``clk`` port plus the graph's IO ports,
* ``wire``/``reg`` declarations,
* continuous ``assign`` statements over the operator set of
  :class:`~repro.ir.node_types.NodeType`,
* one ``always @(posedge clk)`` block with non-blocking assignments.

Width adaptation relies on standard Verilog assignment semantics
(zero-extend / truncate on assignment).  The only construct needing an
explicit helper is a bit-selection whose range exceeds the driver's width;
those get a ``_pad`` intermediate wire which the parser folds back.
"""

from __future__ import annotations

import re

from ..ir import CircuitGraph, NodeType

_IDENT_RE = re.compile(r"[^A-Za-z0-9_]")


def signal_name(graph: CircuitGraph, node_id: int) -> str:
    """Stable, unique Verilog identifier for a node."""
    node = graph.node(node_id)
    if node.name:
        base = _IDENT_RE.sub("_", node.name)
        if base and not base[0].isdigit():
            return f"{base}_n{node_id}"
    return f"n{node_id}"


def _port_name(graph: CircuitGraph, node_id: int) -> str:
    """Ports keep the user-facing name when available (made unique)."""
    return signal_name(graph, node_id)


def _literal(value: int, width: int) -> str:
    return f"{width}'d{value}"


def generate_verilog(graph: CircuitGraph, module_name: str | None = None) -> str:
    """Emit the graph as a Verilog module (the ``f^-1`` direction)."""
    module_name = module_name or _IDENT_RE.sub("_", graph.name) or "design"
    names = {n.id: signal_name(graph, n.id) for n in graph.nodes()}

    in_ports = graph.inputs()
    out_ports = graph.outputs()
    port_list = ["clk"] + [names[i] for i in in_ports + out_ports]

    lines: list[str] = []
    lines.append(f"module {module_name}({', '.join(port_list)});")
    lines.append("  input clk;")
    for i in in_ports:
        w = graph.node(i).width
        rng = f" [{w - 1}:0]" if w > 1 else ""
        lines.append(f"  input{rng} {names[i]};")
    for o in out_ports:
        w = graph.node(o).width
        rng = f" [{w - 1}:0]" if w > 1 else ""
        lines.append(f"  output{rng} {names[o]};")

    # Declarations.
    for node in graph.nodes():
        if node.type in (NodeType.IN, NodeType.OUT):
            continue
        rng = f" [{node.width - 1}:0]" if node.width > 1 else ""
        kind = "reg" if node.type is NodeType.REG else "wire"
        lines.append(f"  {kind}{rng} {names[node.id]};")

    # Combinational assigns (and pad helpers).
    body: list[str] = []
    always: list[str] = []
    for node in graph.nodes():
        nid, t = node.id, node.type
        parents = graph.filled_parents(nid)
        pnames = [names[p] for p in parents]
        target = names[nid]
        if t is NodeType.IN:
            continue
        elif t is NodeType.CONST:
            body.append(
                f"  assign {target} = "
                f"{_literal(node.params.get('value', 0), node.width)};"
            )
        elif t is NodeType.OUT:
            body.append(f"  assign {target} = {pnames[0]};")
        elif t is NodeType.REG:
            always.append(f"    {target} <= {pnames[0]};")
        elif t is NodeType.NOT:
            body.append(f"  assign {target} = ~{pnames[0]};")
        elif t is NodeType.REDUCE_OR:
            body.append(f"  assign {target} = |{pnames[0]};")
        elif t is NodeType.SLICE:
            lo = int(node.params.get("lo", 0))
            hi = lo + node.width - 1
            src_width = graph.node(parents[0]).width
            if hi >= src_width:
                pad = f"{target}_pad"
                rng = f" [{hi}:0]" if hi > 0 else ""
                body.append(f"  wire{rng} {pad};")
                body.append(f"  assign {pad} = {pnames[0]};")
                src = pad
            else:
                src = pnames[0]
            sel = f"[{hi}:{lo}]" if hi != lo else f"[{lo}]"
            body.append(f"  assign {target} = {src}{sel};")
        elif t is NodeType.CONCAT:
            body.append(f"  assign {target} = {{{pnames[0]}, {pnames[1]}}};")
        elif t is NodeType.MUX:
            body.append(
                f"  assign {target} = (|{pnames[0]}) ? {pnames[1]} : {pnames[2]};"
            )
        else:
            op = _BINOP_SYMBOL[t]
            body.append(f"  assign {target} = {pnames[0]} {op} {pnames[1]};")

    lines.extend(body)
    if always:
        lines.append("  always @(posedge clk) begin")
        lines.extend(always)
        lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


_BINOP_SYMBOL = {
    NodeType.ADD: "+",
    NodeType.SUB: "-",
    NodeType.MUL: "*",
    NodeType.AND: "&",
    NodeType.OR: "|",
    NodeType.XOR: "^",
    NodeType.EQ: "==",
    NodeType.LT: "<",
    NodeType.SHL: "<<",
    NodeType.SHR: ">>",
}
