"""HDL <-> circuit graph bijection (Verilog subset)."""

from .codegen import generate_verilog, signal_name
from .parser import HDLSyntaxError, parse_expression, parse_verilog

__all__ = [
    "HDLSyntaxError",
    "generate_verilog",
    "parse_expression",
    "parse_verilog",
    "signal_name",
]
