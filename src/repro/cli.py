"""Command-line interface over :mod:`repro.api`.

Usage (after ``pip install -e .``; ``repro`` and ``python -m repro``
are equivalent)::

    repro corpus                          # list the 22 designs
    repro presets                         # list scenario presets
    repro synth uart_tx --period 1.0      # PPA report (store-cached)
    repro lint --all --json               # diagnostic rules over the corpus
    repro emit uart_tx -o uart_tx.v       # design -> Verilog
    repro generate -n 5 --nodes 60 -o out_dir --workers 4
                                          # fit (cached) + batch generate
    repro trace -n 1 -o trace.json        # traced run -> Perfetto JSON
    repro cache --stats                   # inspect the artifact store

``-v`` / ``-vv`` (or ``REPRO_LOG=DEBUG``) turns on the ``repro.*``
diagnostic log stream; everything is quiet by default.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def _session(args: argparse.Namespace, config=None):
    from .api import Session

    return Session(
        preset=getattr(args, "preset", "fast"),
        config=config,
        cache_dir=getattr(args, "cache_dir", None),
        use_cache=not getattr(args, "no_cache", False),
    )


def _cmd_corpus(args: argparse.Namespace) -> int:
    from .api import SynthRequest
    from .bench_designs import SPECS, load_design

    session = _session(args)
    print(f"{'name':<18s}{'family':<12s}{'nodes':>7s}{'edges':>7s}"
          f"{'regs':>6s}{'cells':>7s}{'scpr':>7s}")
    for spec in SPECS:
        g = load_design(spec.name)
        summary = session.synth(SynthRequest(g, clock_period=args.period))
        print(
            f"{spec.name:<18s}{spec.family:<12s}{g.num_nodes:>7d}"
            f"{g.num_edges:>7d}{len(g.registers()):>6d}"
            f"{summary.num_cells:>7d}{summary.scpr:>7.2f}"
        )
    return 0


def _cmd_presets(args: argparse.Namespace) -> int:
    from .api import list_presets, resolve_preset

    print(f"{'preset':<22s}{'epochs':>7s}{'sims':>6s}{'reward':>15s}"
          f"{'diff':>6s}  description")
    for name, description in list_presets().items():
        config = resolve_preset(name)
        print(
            f"{name:<22s}{config.diffusion.epochs:>7d}"
            f"{config.mcts.num_simulations:>6d}{config.reward:>15s}"
            f"{'yes' if config.use_diffusion else 'no':>6s}  {description}"
        )
    return 0


def _load_graph(source: str):
    from .bench_designs import SPECS, load_design
    from .hdl import parse_verilog
    from .ir import CircuitGraph

    if source in {s.name for s in SPECS}:
        return load_design(source)
    path = pathlib.Path(source)
    if not path.exists():
        raise SystemExit(f"error: {source!r} is neither a corpus design "
                         "nor a readable file")
    text = path.read_text()
    if path.suffix == ".json":
        return CircuitGraph.from_json(text)
    return parse_verilog(text)


def _cmd_synth(args: argparse.Namespace) -> int:
    from .api import SynthRequest

    graph = _load_graph(args.design)
    session = _session(args)
    s = session.synth(SynthRequest(graph, clock_period=args.period))
    print(f"design:      {graph.name}")
    print(f"rtl nodes:   {s.rtl_nodes} ({s.rtl_edges} edges)")
    print(f"cells:       {s.num_cells}")
    print(f"flip-flops:  {s.num_dffs} / {s.rtl_register_bits} "
          f"bits (SCPR {s.scpr:.2f})")
    print(f"area:        {s.area:.2f} um^2 (PCS {s.pcs:.3f})")
    print(f"WNS:         {s.wns:+.3f} ns @ {args.period} ns")
    print(f"TNS:         {s.tns:+.3f} ns over {s.nvp} paths")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .api import LintRequest
    from .lint import ERROR, WARNING

    if args.all:
        from .bench_designs import SPECS

        designs = [s.name for s in SPECS]
    elif args.designs:
        designs = args.designs
    else:
        raise SystemExit("error: name designs to lint, or pass --all")
    session = _session(args)
    reports = [
        session.lint(LintRequest(
            _load_graph(design) if not args.all else design,
            netlist=not args.no_netlist,
            rules=args.rules.split(",") if args.rules else None,
        ))
        for design in designs
    ]
    failed = 0
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    for report in reports:
        bad = bool(report.errors) or (args.strict and report.warnings)
        failed += bool(bad)
        if not args.json:
            print(report.summary())
            shown = (
                report.diagnostics if args.verbose
                else [d for d in report.diagnostics
                      if d.severity in (ERROR, WARNING)]
            )
            for diagnostic in shown:
                print(f"  {diagnostic}")
    if not args.json:
        print(f"{len(reports)} design(s) linted, {failed} failing"
              + (" (strict)" if args.strict else ""))
    return 1 if failed else 0


def _cmd_emit(args: argparse.Namespace) -> int:
    from .hdl import generate_verilog

    graph = _load_graph(args.design)
    if args.netlist:
        from .synth import emit_netlist_verilog, synthesize

        result = synthesize(graph, clock_period=args.period)
        text = emit_netlist_verilog(result.netlist)
    else:
        text = generate_verilog(graph)
    if args.output:
        pathlib.Path(args.output).write_text(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from .api import GenerateRequest, resolve_preset
    from .hdl import generate_verilog

    diffusion = {}
    mcts = {"clock_period": args.period}
    if args.epochs is not None:
        diffusion["epochs"] = args.epochs
    if args.simulations is not None:
        mcts["num_simulations"] = args.simulations
    if args.full_resynthesis:
        mcts["incremental"] = False
    if args.require_equivalence:
        mcts["require_functional_equivalence"] = True
    if args.sanitize:
        mcts["sanitize"] = True
    try:
        config = resolve_preset(
            args.preset, seed=args.seed, diffusion=diffusion, mcts=mcts
        )
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}")
    session = _session(args, config=config)

    print(f"fitting preset {args.preset!r} "
          f"({config.diffusion.epochs} epochs; artifact cache "
          f"{'on' if session.use_cache else 'off'}) ...")
    session.fit()
    result = session.generate_batch(GenerateRequest(
        count=args.count,
        nodes=args.nodes,
        optimize=not args.no_optimize,
        seed=args.seed,
        workers=args.workers,
        synth_period=args.period,
        tier=args.tier,
    ))

    out_dir = pathlib.Path(args.output)
    out_dir.mkdir(parents=True, exist_ok=True)
    manifest = []
    # One synthesis summary per record, computed once by the session
    # (and store-cached) -- reused for both the manifest and the log.
    for graph, summary in zip(result.graphs, result.synth):
        (out_dir / f"{graph.name}.v").write_text(generate_verilog(graph))
        (out_dir / f"{graph.name}.json").write_text(graph.to_json())
        manifest.append({
            "name": graph.name,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "cells": summary.num_cells,
            "area": summary.area,
            "wns": summary.wns,
            "scpr": summary.scpr,
        })
        print(f"  {graph.name}: {graph.num_nodes} nodes, "
              f"SCPR {summary.scpr:.2f}, area {summary.area:.1f}")
    (out_dir / "manifest.json").write_text(json.dumps(manifest, indent=2))
    print(f"wrote {len(result.records)} circuits to {out_dir}/ "
          f"in {result.elapsed:.1f}s ({args.workers} workers)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .api import Session, resolve_preset
    from .serve import ReproServer

    try:
        config = resolve_preset(args.preset, seed=args.seed)
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}")
    if not args.no_prefit:
        # Fit once in-process so the N spawned workers boot from the
        # artifact cache instead of training N times concurrently.
        print(f"pre-fitting preset {args.preset!r} into the artifact "
              "store ...")
        Session(config=config, cache_dir=args.cache_dir).fit()
    server = ReproServer(
        config=config,
        workers=args.workers,
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        queue_dir=args.queue_dir,
    )

    async def main() -> None:
        task = asyncio.create_task(server.run())
        # run() rebinds server.port once the socket is listening.
        while server.port == 0 and not task.done():
            await asyncio.sleep(0.01)
        if not task.done():
            print(f"repro serve: listening on "
                  f"http://{server.host}:{server.port} "
                  f"({args.workers} workers, queue {server.queue.root})")
        await task

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("repro serve: interrupted, draining workers ...")
        server.pool.stop()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .serve import ServeClient

    client = ServeClient(args.url)
    request = {
        "count": args.count,
        "nodes": args.nodes,
        "seed": args.seed,
        "optimize": not args.no_optimize,
    }
    if args.synth_period is not None:
        request["synth_period"] = args.synth_period
    if args.tier is not None:
        request["tier"] = args.tier
    accepted = client.submit(request, dedupe=not args.no_dedupe)
    print(f"job {accepted['job_id']}: {accepted['state']}"
          + (" (deduplicated)" if accepted["deduplicated"] else ""))
    if args.follow:
        for event in client.stream(accepted["job_id"]):
            if event["type"] == "progress":
                timings = event.get("timings", {})
                phases = " ".join(
                    f"{phase} {seconds * 1000:.0f}ms"
                    for phase, seconds in timings.items()
                )
                print(f"  record {event['index'] + 1}/{event['count']}"
                      f"  {phases}")
            elif event["type"] in ("done", "failed"):
                print(f"  {event['type']}"
                      + (f" in {event['elapsed']:.2f}s"
                         if event["type"] == "done" else
                         f": {event['error']}"))
    status = client.wait(accepted["job_id"])
    if status["state"] != "done":
        print(f"job failed: {status.get('error')}")
        return 1
    result = client.result(accepted["job_id"])
    if args.json:
        print(json.dumps(result.to_dict()))
    else:
        for graph in result.graphs:
            print(f"  {graph.name}: {graph.num_nodes} nodes, "
                  f"{graph.num_edges} edges")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from .serve import ServeClient, run_top

    return run_top(
        ServeClient(args.url), interval=args.interval, once=args.once
    )


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import (
        BenchReport,
        compare,
        render_profile,
        run_serve_suite,
        run_suite,
    )

    if args.suite == "serve":
        report = run_serve_suite(
            preset=args.preset,
            seed=args.seed,
            repeats=args.repeats,
            warmup=args.warmup,
            workers=args.serve_workers,
            filter_pattern=args.filter,
            progress=print,
        )
    else:
        report = run_suite(
            preset=args.preset,
            seed=args.seed,
            repeats=args.repeats,
            warmup=args.warmup,
            filter_pattern=args.filter,
            progress=print,
        )
    # Load the baseline *before* writing: with the default output path
    # `repro bench --compare BENCH_smoke.json` would otherwise overwrite
    # the baseline and then compare the fresh report against itself.
    baseline = BenchReport.load(args.compare) if args.compare else None
    if args.profile:
        # The hot-loop profile view: per-op cost plus drift against the
        # committed baseline (explicit --compare, or BENCH_<suite>.json
        # next to the working directory when present).
        profile_base = baseline
        if profile_base is None:
            default_baseline = pathlib.Path(f"BENCH_{report.suite}.json")
            if default_baseline.exists():
                profile_base = BenchReport.load(default_baseline)
        print(render_profile(report, profile_base))
    else:
        print(report.render())
    output = args.output or f"BENCH_{report.suite}.json"
    report.write(output)
    print(f"wrote {output} (rev {report.git_rev}, "
          f"config {report.config_fingerprint[:12]})")

    if baseline is not None:
        if baseline.config_fingerprint != report.config_fingerprint:
            print(f"note: baseline {args.compare} was produced by a "
                  "different scenario config; comparing anyway")
        regressions = compare(
            report, baseline, max_regression=args.max_regression
        )
        if regressions:
            print(f"PERF REGRESSION (>{args.max_regression:g}x vs "
                  f"{args.compare}):")
            for regression in regressions:
                print(f"  {regression}")
            return 1
        print(f"no regression >{args.max_regression:g}x vs {args.compare}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .api import GenerateRequest, resolve_preset
    from .obs import TraceRecorder, tracing

    try:
        config = resolve_preset(args.preset, seed=args.seed)
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}")
    session = _session(args, config=config)
    print(f"fitting preset {args.preset!r} (artifact cache "
          f"{'on' if session.use_cache else 'off'}) ...")
    session.fit()
    recorder = TraceRecorder()
    with tracing(recorder):
        result = session.generate(GenerateRequest(
            count=args.count,
            nodes=args.nodes,
            seed=args.seed,
            optimize=not args.no_optimize,
        ))
    path = recorder.write_chrome_trace(
        args.output,
        metadata={"preset": args.preset, "seed": args.seed,
                  "count": args.count},
    )
    print(f"{len(result.records)} circuit(s) in {result.elapsed:.2f}s; "
          f"{recorder.recorded} spans ({recorder.dropped} dropped) "
          f"-> {path}")
    print(f"{'span':<24s}{'count':>8s}{'total ms':>12s}")
    for name, (count, total_ms) in sorted(
        recorder.totals().items(), key=lambda kv: -kv[1][1]
    ):
        print(f"{name:<24s}{count:>8d}{total_ms:>12.2f}")
    print("load the JSON at https://ui.perfetto.dev to explore the "
          "timeline")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from .api import ArtifactStore

    store = ArtifactStore(args.cache_dir)
    if args.clear:
        removed = store.clear()
        print(f"removed {removed} artifacts from {store.root}")
        return 0
    stats = store.stats()
    print(f"store:   {stats['root']}")
    print(f"entries: {stats['entries']}")
    print(f"bytes:   {stats['bytes']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SynCircuit reproduction CLI"
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="artifact store location (default: $REPRO_CACHE_DIR "
             "or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the artifact store entirely",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0, dest="verbosity",
        help="enable repro.* diagnostics on stderr (-v INFO, -vv DEBUG; "
             "the REPRO_LOG env var overrides, e.g. "
             "REPRO_LOG=serve=DEBUG,mcts=INFO)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_corpus = sub.add_parser("corpus", help="list the 22-design corpus")
    p_corpus.add_argument("--period", type=float, default=1.0)
    p_corpus.set_defaults(func=_cmd_corpus)

    p_presets = sub.add_parser("presets", help="list scenario presets")
    p_presets.set_defaults(func=_cmd_presets)

    p_synth = sub.add_parser("synth", help="synthesize a design and report PPA")
    p_synth.add_argument("design", help="corpus name, .v file or .json file")
    p_synth.add_argument("--period", type=float, default=1.0)
    p_synth.set_defaults(func=_cmd_synth)

    p_lint = sub.add_parser(
        "lint", help="run the diagnostic rules (L0xx/N0xx) on designs"
    )
    p_lint.add_argument(
        "designs", nargs="*",
        help="corpus names, .v files or .json files",
    )
    p_lint.add_argument("--all", action="store_true",
                        help="lint the whole benchmark corpus")
    p_lint.add_argument(
        "--no-netlist", action="store_true",
        help="skip elaboration and the netlist-scope (N0xx) rules",
    )
    p_lint.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    p_lint.add_argument(
        "--strict", action="store_true",
        help="fail (exit 1) on warnings, not only errors",
    )
    p_lint.add_argument("--verbose", action="store_true",
                        help="print info-severity findings too")
    p_lint.add_argument("--json", action="store_true",
                        help="emit the reports as JSON")
    p_lint.set_defaults(func=_cmd_lint)

    p_emit = sub.add_parser("emit", help="emit a design as Verilog")
    p_emit.add_argument("design")
    p_emit.add_argument("-o", "--output", default=None)
    p_emit.add_argument(
        "--netlist", action="store_true",
        help="emit the mapped gate-level netlist instead of the RTL",
    )
    p_emit.add_argument("--period", type=float, default=1.0)
    p_emit.set_defaults(func=_cmd_emit)

    p_gen = sub.add_parser("generate", help="generate synthetic circuits")
    p_gen.add_argument("-n", "--count", type=int, default=5)
    p_gen.add_argument("--nodes", type=int, default=60)
    p_gen.add_argument(
        "--preset", default="fast",
        help="scenario preset (see `repro presets`)",
    )
    p_gen.add_argument(
        "--epochs", type=int, default=None,
        help="override the preset's diffusion epochs",
    )
    p_gen.add_argument(
        "--simulations", type=int, default=None,
        help="override the preset's MCTS simulation budget",
    )
    p_gen.add_argument(
        "--workers", type=int, default=1,
        help="parallel generation workers (bit-identical to sequential)",
    )
    p_gen.add_argument("--period", type=float, default=1.0)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--no-optimize", action="store_true")
    p_gen.add_argument(
        "--full-resynthesis", action="store_true",
        help="disable the incremental reward engine: every MCTS reward "
             "runs a full synthesize() (the reference oracle path)",
    )
    p_gen.add_argument(
        "--require-equivalence", action="store_true",
        help="reject cone rewrites whose simulated function changes "
             "(promotes the cone-function diagnostic to a hard gate)",
    )
    p_gen.add_argument(
        "--sanitize", action="store_true",
        help="audit the search's incremental structures against "
             "from-scratch recomputation (bit-identical output; raises "
             "on any invariant violation)",
    )
    p_gen.add_argument(
        "--tier", choices=["exact", "fast"], default=None,
        help="numeric contract: exact (byte-stable goldens, default) or "
             "fast (fused cross-graph GEMMs + estimate-driven search, "
             "tolerance-gated; see repro.tiers)",
    )
    p_gen.add_argument("-o", "--output", default="generated")
    p_gen.set_defaults(func=_cmd_generate)

    p_serve = sub.add_parser(
        "serve", help="run the async generation job server (HTTP + websocket)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8760)
    p_serve.add_argument(
        "--workers", type=int, default=4,
        help="worker processes (artifacts are bit-identical at any count)",
    )
    p_serve.add_argument(
        "--preset", default="fast",
        help="scenario preset every job runs under (see `repro presets`)",
    )
    p_serve.add_argument("--seed", type=int, default=None)
    p_serve.add_argument(
        "--queue-dir", default=None,
        help="persistent job-queue directory (default: <store>/serve-queue; "
             "unfinished jobs found here are replayed on boot)",
    )
    p_serve.add_argument(
        "--no-prefit", action="store_true",
        help="skip the in-process warmup fit (workers then train on boot)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit a generation job to a running `repro serve`"
    )
    p_submit.add_argument("--url", default="http://127.0.0.1:8760")
    p_submit.add_argument("-n", "--count", type=int, default=1)
    p_submit.add_argument("--nodes", type=int, default=60)
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument("--synth-period", type=float, default=None)
    p_submit.add_argument("--no-optimize", action="store_true")
    p_submit.add_argument(
        "--tier", choices=["exact", "fast"], default=None,
        help="numeric contract for the job (part of the dedup key)",
    )
    p_submit.add_argument(
        "--no-dedupe", action="store_true",
        help="force a worker run even if the identical request is cached",
    )
    p_submit.add_argument(
        "--follow", action="store_true",
        help="stream per-record progress over the websocket channel",
    )
    p_submit.add_argument("--json", action="store_true",
                          help="print the full GenerateResult JSON")
    p_submit.set_defaults(func=_cmd_submit)

    p_top = sub.add_parser(
        "top", help="live status view of a running `repro serve`"
    )
    p_top.add_argument("--url", default="http://127.0.0.1:8760")
    p_top.add_argument("--interval", type=float, default=1.0)
    p_top.add_argument("--once", action="store_true",
                       help="render one frame and exit (no screen clear)")
    p_top.set_defaults(func=_cmd_top)

    p_trace = sub.add_parser(
        "trace",
        help="run a traced generation and write Perfetto-loadable "
             "Chrome trace-event JSON",
    )
    p_trace.add_argument("-n", "--count", type=int, default=1)
    p_trace.add_argument("--nodes", type=int, default=60)
    p_trace.add_argument(
        "--preset", default="fast",
        help="scenario preset (see `repro presets`)",
    )
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--no-optimize", action="store_true")
    p_trace.add_argument(
        "-o", "--output", default="trace.json",
        help="trace JSON path (default: trace.json)",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_bench = sub.add_parser(
        "bench", help="run the microbenchmark suite, write BENCH_<suite>.json"
    )
    p_bench.add_argument(
        "--preset", default="smoke",
        help="scenario preset sizing the workloads (see `repro presets`)",
    )
    p_bench.add_argument(
        "--suite", choices=("standard", "serve"), default="standard",
        help="'serve' measures the job server (requests/s, p50/p99) "
             "and writes BENCH_serve.json",
    )
    p_bench.add_argument(
        "--serve-workers", type=int, default=2,
        help="worker processes for --suite serve",
    )
    p_bench.add_argument("--repeats", type=int, default=3,
                         help="timed runs per benchmark (best is reported)")
    p_bench.add_argument("--warmup", type=int, default=1,
                         help="untimed warmup runs per benchmark")
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument(
        "--filter", default=None,
        help="only run benchmarks whose name contains this substring",
    )
    p_bench.add_argument(
        "-o", "--output", default=None,
        help="report path (default: BENCH_<suite>.json)",
    )
    p_bench.add_argument(
        "--compare", default=None, metavar="BASELINE",
        help="baseline BENCH_*.json; exit 1 on regression",
    )
    p_bench.add_argument(
        "--profile", action="store_true",
        help="print per-op costs and drift vs the committed baseline "
             "(BENCH_<suite>.json or --compare) instead of the raw table",
    )
    p_bench.add_argument(
        "--max-regression", type=float, default=2.0,
        help="fail --compare when wall time grows past this factor",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_cache = sub.add_parser("cache", help="inspect the artifact store")
    # SUPPRESS: when omitted here, keep the value parsed from the global
    # --cache-dir instead of clobbering it with a subparser default.
    p_cache.add_argument(
        "--cache-dir", default=argparse.SUPPRESS,
        help="artifact store location (also accepted before the command)",
    )
    p_cache.add_argument("--stats", action="store_true",
                         help="print store statistics (default)")
    p_cache.add_argument("--clear", action="store_true",
                         help="delete all stored artifacts")
    p_cache.set_defaults(func=_cmd_cache)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from .obs import configure_logging

    configure_logging(verbose=getattr(args, "verbosity", 0))
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
