"""Command-line interface: generate, synthesize and inspect circuits.

Usage (after ``pip install -e .``)::

    python -m repro.cli corpus                       # list the 22 designs
    python -m repro.cli synth uart_tx --period 1.0   # PPA report
    python -m repro.cli emit uart_tx -o uart_tx.v    # design -> Verilog
    python -m repro.cli generate -n 5 --nodes 60 -o out_dir
                                                     # train + generate
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def _cmd_corpus(args: argparse.Namespace) -> int:
    from .bench_designs import SPECS, load_design
    from .synth import synthesize

    print(f"{'name':<18s}{'family':<12s}{'nodes':>7s}{'edges':>7s}"
          f"{'regs':>6s}{'cells':>7s}{'scpr':>7s}")
    for spec in SPECS:
        g = load_design(spec.name)
        result = synthesize(g, clock_period=args.period)
        print(
            f"{spec.name:<18s}{spec.family:<12s}{g.num_nodes:>7d}"
            f"{g.num_edges:>7d}{len(g.registers()):>6d}"
            f"{result.num_cells:>7d}{result.scpr:>7.2f}"
        )
    return 0


def _load_graph(source: str):
    from .bench_designs import SPECS, load_design
    from .hdl import parse_verilog
    from .ir import CircuitGraph

    if source in {s.name for s in SPECS}:
        return load_design(source)
    path = pathlib.Path(source)
    if not path.exists():
        raise SystemExit(f"error: {source!r} is neither a corpus design "
                         "nor a readable file")
    text = path.read_text()
    if path.suffix == ".json":
        return CircuitGraph.from_json(text)
    return parse_verilog(text)


def _cmd_synth(args: argparse.Namespace) -> int:
    from .synth import synthesize

    graph = _load_graph(args.design)
    result = synthesize(graph, clock_period=args.period)
    print(f"design:      {graph.name}")
    print(f"rtl nodes:   {graph.num_nodes} ({graph.num_edges} edges)")
    print(f"cells:       {result.num_cells}")
    print(f"flip-flops:  {result.num_dffs} / {graph.total_register_bits()} "
          f"bits (SCPR {result.scpr:.2f})")
    print(f"area:        {result.area:.2f} um^2 (PCS {result.pcs:.3f})")
    print(f"WNS:         {result.wns:+.3f} ns @ {args.period} ns")
    print(f"TNS:         {result.tns:+.3f} ns over {result.nvp} paths")
    return 0


def _cmd_emit(args: argparse.Namespace) -> int:
    from .hdl import generate_verilog

    graph = _load_graph(args.design)
    if args.netlist:
        from .synth import emit_netlist_verilog, synthesize

        result = synthesize(graph, clock_period=args.period)
        text = emit_netlist_verilog(result.netlist)
    else:
        text = generate_verilog(graph)
    if args.output:
        pathlib.Path(args.output).write_text(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from .bench_designs import train_test_split
    from .diffusion import DiffusionConfig
    from .hdl import generate_verilog
    from .mcts import MCTSConfig
    from .pipeline import SynCircuit, SynCircuitConfig
    from .synth import synthesize

    train, _ = train_test_split(seed=2025)
    config = SynCircuitConfig(
        diffusion=DiffusionConfig(
            epochs=args.epochs, hidden=48, num_layers=4, neg_ratio=8, seed=args.seed
        ),
        mcts=MCTSConfig(
            num_simulations=args.simulations, max_depth=8, branching=6,
            clock_period=args.period, seed=args.seed,
        ),
        degree_guidance=0.5,
        reward="synthesis",
        seed=args.seed,
    )
    print(f"training SynCircuit on {len(train)} designs "
          f"({args.epochs} epochs) ...")
    pipeline = SynCircuit(config).fit(train)
    records = pipeline.generate(
        args.count, num_nodes=args.nodes, optimize=not args.no_optimize,
        seed=args.seed,
    )
    out_dir = pathlib.Path(args.output)
    out_dir.mkdir(parents=True, exist_ok=True)
    manifest = []
    for rec in records:
        graph = rec.graph
        result = synthesize(graph, clock_period=args.period)
        (out_dir / f"{graph.name}.v").write_text(generate_verilog(graph))
        (out_dir / f"{graph.name}.json").write_text(graph.to_json())
        manifest.append({
            "name": graph.name,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "cells": result.num_cells,
            "area": result.area,
            "wns": result.wns,
            "scpr": result.scpr,
        })
        print(f"  {graph.name}: {graph.num_nodes} nodes, "
              f"SCPR {result.scpr:.2f}, area {result.area:.1f}")
    (out_dir / "manifest.json").write_text(json.dumps(manifest, indent=2))
    print(f"wrote {len(records)} circuits to {out_dir}/")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SynCircuit reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_corpus = sub.add_parser("corpus", help="list the 22-design corpus")
    p_corpus.add_argument("--period", type=float, default=1.0)
    p_corpus.set_defaults(func=_cmd_corpus)

    p_synth = sub.add_parser("synth", help="synthesize a design and report PPA")
    p_synth.add_argument("design", help="corpus name, .v file or .json file")
    p_synth.add_argument("--period", type=float, default=1.0)
    p_synth.set_defaults(func=_cmd_synth)

    p_emit = sub.add_parser("emit", help="emit a design as Verilog")
    p_emit.add_argument("design")
    p_emit.add_argument("-o", "--output", default=None)
    p_emit.add_argument(
        "--netlist", action="store_true",
        help="emit the mapped gate-level netlist instead of the RTL",
    )
    p_emit.add_argument("--period", type=float, default=1.0)
    p_emit.set_defaults(func=_cmd_emit)

    p_gen = sub.add_parser("generate", help="generate synthetic circuits")
    p_gen.add_argument("-n", "--count", type=int, default=5)
    p_gen.add_argument("--nodes", type=int, default=60)
    p_gen.add_argument("--epochs", type=int, default=120)
    p_gen.add_argument("--simulations", type=int, default=60)
    p_gen.add_argument("--period", type=float, default=1.0)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--no-optimize", action="store_true")
    p_gen.add_argument("-o", "--output", default="generated")
    p_gen.set_defaults(func=_cmd_generate)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
