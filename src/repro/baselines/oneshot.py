"""One-shot undirected baselines: GraphMaker-v and SparseDigress-v.

Both models generate an *undirected* graph in one shot, then receive the
paper's two adaptation steps: gravity-inspired direction assignment
(Salha et al. 2019) and node-ordered validity refinement.

GraphMaker-v here is a degree-corrected, type-conditioned edge model
(the structural core of GraphMaker's one-shot attributed-graph denoiser):
``p_uv ~ d_u d_v theta[type_u, type_v] / 2E`` with degrees sampled from
the per-type empirical degree distribution.  SparseDigress-v shares the
probability model but samples a *fixed edge budget* without replacement,
mirroring the sparsity-preserving training of SparseDiGress.  Both
simplifications are recorded in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..diffusion import AttributeSampler
from ..ir import CircuitGraph, NUM_TYPES, type_index
from ..metrics import undirected_simple
from ..nn import sigmoid_np
from ..postprocess import refine_to_valid


class GravityDirectioner:
    """Learned direction assignment for undirected edges.

    Gravity-inspired graph autoencoders score a directed edge (u -> v) by
    the target's "mass"; we learn one mass per node type by maximising
    the likelihood of the real edges' directions, then orient each
    undirected edge toward the higher-scoring endpoint (stochastically).
    """

    def __init__(self, lr: float = 0.5, epochs: int = 200):
        self.mass = np.zeros(NUM_TYPES)
        self.lr = lr
        self.epochs = epochs

    def fit(self, graphs: list[CircuitGraph]) -> "GravityDirectioner":
        src_types: list[int] = []
        dst_types: list[int] = []
        for g in graphs:
            for u, v in g.edges():
                src_types.append(type_index(g.node(u).type))
                dst_types.append(type_index(g.node(v).type))
        if not src_types:
            raise ValueError("no edges in training graphs")
        src = np.array(src_types)
        dst = np.array(dst_types)
        for _ in range(self.epochs):
            score = self.mass[dst] - self.mass[src]
            p = sigmoid_np(score)
            grad = np.zeros(NUM_TYPES)
            np.add.at(grad, dst, 1.0 - p)
            np.add.at(grad, src, -(1.0 - p))
            self.mass += self.lr * grad / len(src)
        return self

    def orientation_probability(
        self, types_u: np.ndarray, types_v: np.ndarray
    ) -> np.ndarray:
        """P(edge points u -> v) for arrays of endpoint types."""
        return sigmoid_np(self.mass[types_v] - self.mass[types_u])


@dataclass
class _EdgeModel:
    """Degree-corrected type-pair affinity fitted by counting."""

    theta: np.ndarray              # (T, T) symmetric affinity
    degree_samples: dict[int, np.ndarray]   # type -> empirical degrees
    mean_edges_per_node: float

    @classmethod
    def fit(cls, graphs: list[CircuitGraph]) -> "_EdgeModel":
        pair_counts = np.zeros((NUM_TYPES, NUM_TYPES))
        class_degree = np.zeros(NUM_TYPES)
        degree_samples: dict[int, list[float]] = {t: [] for t in range(NUM_TYPES)}
        total_edges = 0.0
        total_nodes = 0
        for g in graphs:
            u = undirected_simple(g.adjacency())
            deg = u.sum(axis=1)
            types = g.type_indices()
            total_nodes += g.num_nodes
            for node, d in zip(types, deg):
                degree_samples[int(node)].append(float(d))
                class_degree[int(node)] += d
            src, dst = np.nonzero(np.triu(u, k=1))
            total_edges += len(src)
            for s, d in zip(types[src], types[dst]):
                pair_counts[s, d] += 1
                pair_counts[d, s] += 1
        with np.errstate(divide="ignore", invalid="ignore"):
            theta = np.where(
                np.outer(class_degree, class_degree) > 0,
                pair_counts * (2.0 * total_edges)
                / np.maximum(np.outer(class_degree, class_degree), 1e-9),
                0.0,
            )
        return cls(
            theta=theta,
            degree_samples={
                t: np.array(v) if v else np.array([1.0])
                for t, v in degree_samples.items()
            },
            mean_edges_per_node=total_edges / max(total_nodes, 1),
        )

    def probability_matrix(
        self, types: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Symmetric edge probabilities for a sampled degree sequence."""
        degrees = np.array([
            self.degree_samples[int(t)][
                rng.integers(0, len(self.degree_samples[int(t)]))
            ]
            for t in types
        ])
        two_e = max(degrees.sum(), 1.0)
        p = (
            np.outer(degrees, degrees)
            * self.theta[np.ix_(types, types)]
            / two_e
        )
        np.fill_diagonal(p, 0.0)
        return np.clip(p, 0.0, 1.0)


class _OneShotBase:
    """Shared fit/orient/refine scaffolding for the two one-shot models."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.edge_model: _EdgeModel | None = None
        self.gravity = GravityDirectioner()
        self.attributes: AttributeSampler | None = None

    def fit(self, graphs: list[CircuitGraph], verbose: bool = False):
        if not graphs:
            raise ValueError("need at least one training graph")
        self.edge_model = _EdgeModel.fit(graphs)
        self.gravity.fit(graphs)
        self.attributes = AttributeSampler(graphs)
        return self

    def _sample_undirected(
        self, p: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        raise NotImplementedError

    def generate(
        self, num_nodes: int, rng: np.random.Generator, name: str = "oneshot"
    ) -> CircuitGraph:
        if self.edge_model is None or self.attributes is None:
            raise RuntimeError("call fit() first")
        types, widths = self.attributes.sample(num_nodes, rng)
        p_sym = self.edge_model.probability_matrix(types, rng)
        undirected = self._sample_undirected(p_sym, rng)

        # Gravity direction assignment.
        adjacency = np.zeros((num_nodes, num_nodes), dtype=bool)
        probability = np.zeros((num_nodes, num_nodes))
        us, vs = np.nonzero(np.triu(undirected, k=1))
        p_uv = self.gravity.orientation_probability(types[us], types[vs])
        forward = rng.random(len(us)) < p_uv
        adjacency[us[forward], vs[forward]] = True
        adjacency[vs[~forward], us[~forward]] = True
        # Directed probabilities inform the validity refinement ranking.
        probability[us, vs] = p_sym[us, vs] * p_uv
        probability[vs, us] = p_sym[us, vs] * (1.0 - p_uv)

        return refine_to_valid(
            types, widths, adjacency, probability, name=name, rng=rng
        )


class GraphMakerV(_OneShotBase):
    """GraphMaker-v: independent Bernoulli edges from the one-shot model."""

    def _sample_undirected(
        self, p: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        sample = rng.random(p.shape) < p
        return np.triu(sample, k=1) | np.triu(sample, k=1).T


class SparseDigressV(_OneShotBase):
    """SparseDigress-v: fixed edge budget, sampled without replacement."""

    def _sample_undirected(
        self, p: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        n = p.shape[0]
        budget = int(round(self.edge_model.mean_edges_per_node * n))
        iu, ju = np.triu_indices(n, k=1)
        weights = p[iu, ju]
        total = weights.sum()
        out = np.zeros((n, n), dtype=bool)
        if total <= 0 or budget == 0:
            return out
        budget = min(budget, int((weights > 0).sum()))
        chosen = rng.choice(
            len(weights), size=budget, replace=False, p=weights / total
        )
        out[iu[chosen], ju[chosen]] = True
        return out | out.T
