"""Shared machinery for the baseline generators.

The paper adapts every baseline to circuit generation:

* GraphRNN / D-VAE are node-ordering autoregressive models that only
  handle DAGs, so training circuits are *DAG-ified* (cycles broken) and
  nodes sorted topologically; a validity checker then enforces the
  circuit constraints during sequential generation.
* One-shot undirected models get a direction-assignment step and the
  same per-node validity refinement in a fixed node order.
"""

from __future__ import annotations

import numpy as np

from ..ir import (
    CircuitGraph,
    NodeType,
    arity_of,
    type_from_index,
    type_index,
)
from ..postprocess import refine_to_valid


def dagify(graph: CircuitGraph) -> np.ndarray:
    """Adjacency with back edges removed (cycles broken), via DFS.

    Returns a boolean adjacency matrix that is acyclic.  Circuit cycles
    always pass through registers, so the removed edges are register
    feedback edges -- exactly the information the autoregressive
    baselines lose, which the paper highlights.
    """
    n = graph.num_nodes
    a = graph.adjacency()
    color = np.zeros(n, dtype=np.int8)  # 0 white, 1 grey, 2 black
    order_children = [list(np.flatnonzero(a[v])) for v in range(n)]
    for root in range(n):
        if color[root] != 0:
            continue
        stack: list[tuple[int, int]] = [(root, 0)]
        color[root] = 1
        while stack:
            v, idx = stack[-1]
            if idx < len(order_children[v]):
                stack[-1] = (v, idx + 1)
                w = order_children[v][idx]
                if color[w] == 1:
                    a[v, w] = False        # back edge: drop it
                elif color[w] == 0:
                    color[w] = 1
                    stack.append((w, 0))
            else:
                color[v] = 2
                stack.pop()
    return a


def topological_order(adjacency: np.ndarray) -> np.ndarray:
    """Kahn order of a DAG adjacency (ties broken by node id)."""
    n = adjacency.shape[0]
    indeg = adjacency.sum(axis=0).astype(np.int64)
    frontier = sorted(np.flatnonzero(indeg == 0).tolist())
    order = []
    indeg = indeg.copy()
    while frontier:
        v = frontier.pop(0)
        order.append(v)
        for w in np.flatnonzero(adjacency[v]):
            indeg[w] -= 1
            if indeg[w] == 0:
                frontier.append(int(w))
        frontier.sort()
    if len(order) != n:
        raise ValueError("adjacency is not acyclic")
    return np.array(order, dtype=np.int64)


def type_position_prior(graphs: list[CircuitGraph]) -> np.ndarray:
    """Mean normalised topological position of each node type.

    Used to order sampled attribute vectors realistically before
    autoregressive generation (inputs early, outputs late).
    """
    from ..ir import NUM_TYPES

    sums = np.zeros(NUM_TYPES)
    counts = np.zeros(NUM_TYPES)
    for g in graphs:
        a = dagify(g)
        order = topological_order(a)
        n = max(len(order) - 1, 1)
        for pos, node in enumerate(order):
            t = type_index(g.node(int(node)).type)
            sums[t] += pos / n
            counts[t] += 1
    prior = np.where(counts > 0, sums / np.maximum(counts, 1), 0.5)
    return prior


def order_attributes(
    types: np.ndarray,
    widths: np.ndarray,
    position_prior: np.ndarray,
    rng: np.random.Generator,
    jitter: float = 0.08,
) -> tuple[np.ndarray, np.ndarray]:
    """Sort sampled attributes by the learned positional prior + noise."""
    keys = position_prior[types] + rng.normal(0.0, jitter, size=len(types))
    order = np.argsort(keys)
    return types[order], widths[order]


def sequential_validity_refine(
    types: np.ndarray,
    widths: np.ndarray,
    edge_probability: np.ndarray,
    name: str,
    rng: np.random.Generator,
    sampled_adjacency: np.ndarray | None = None,
) -> CircuitGraph:
    """The paper's validity checker for sequential baselines.

    Nodes arrive in generation order; every node's parents are drawn only
    from *earlier* nodes, ranked by the model's probabilities (sampled
    edges are honoured first), with exact arity.  The result is a DAG, so
    combinational-loop freedom is automatic -- and register feedback is
    structurally impossible, which is precisely the deficiency the paper
    attributes to these baselines.
    """
    n = len(types)
    masked = np.array(edge_probability, dtype=np.float64)
    upper = np.triu(np.ones((n, n), dtype=bool), k=0)
    masked[upper] = 0.0  # only earlier nodes (strictly lower index) drive
    if sampled_adjacency is None:
        adjacency = np.zeros((n, n), dtype=bool)
    else:
        adjacency = np.asarray(sampled_adjacency, dtype=bool) & ~upper
    return refine_to_valid(
        types, widths, adjacency, masked, name=name, rng=rng,
    )


def guaranteed_attributes(
    types: np.ndarray, widths: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Ensure the first node can legally be a source (IN/CONST).

    Sequential generation requires node 0 to have arity 0.
    """
    types = types.copy()
    widths = widths.copy()
    if arity_of(type_from_index(int(types[0]))) != 0:
        source = type_index(NodeType.IN)
        for i, t in enumerate(types):
            if arity_of(type_from_index(int(t))) == 0:
                types[0], types[i] = types[i], types[0]
                widths[0], widths[i] = widths[i], widths[0]
                break
        else:
            types[0] = source
    return types, widths
