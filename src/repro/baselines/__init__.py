"""Baseline graph generative models, adapted to circuits as in the paper."""

from .common import (
    dagify,
    guaranteed_attributes,
    order_attributes,
    sequential_validity_refine,
    topological_order,
    type_position_prior,
)
from .dvae import DVAEBaseline, DVAEConfig
from .graphrnn import GraphRNNBaseline, GraphRNNConfig
from .oneshot import GraphMakerV, GravityDirectioner, SparseDigressV

__all__ = [
    "DVAEBaseline",
    "DVAEConfig",
    "GraphMakerV",
    "GraphRNNBaseline",
    "GraphRNNConfig",
    "GravityDirectioner",
    "SparseDigressV",
    "dagify",
    "guaranteed_attributes",
    "order_attributes",
    "sequential_validity_refine",
    "topological_order",
    "type_position_prior",
]
