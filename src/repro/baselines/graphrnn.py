"""GraphRNN baseline (You et al. 2018), adapted to circuit graphs.

GraphRNN-S structure: a graph-level GRU consumes nodes in topological
order; each step's input is the node's type embedding concatenated with
the previous node's connection vector, and an output MLP predicts
Bernoulli connection probabilities to the ``window`` most recent nodes.

Adaptation per the paper: training circuits are DAG-ified (register
feedback edges removed), node order is topological, edge direction is
implied by the ordering, and a validity checker enforces the circuit
constraints during generation.  The generated graphs are DAGs -- they
contain no register feedback loops, unlike real designs.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from ..diffusion import AttributeSampler
from ..ir import CircuitGraph, NUM_TYPES, type_index
from ..obs import get_logger
from ..nn import GRUCell, MLP, Adam, Embedding, Tensor, bce_with_logits, sigmoid_np
from .common import (
    dagify,
    guaranteed_attributes,
    order_attributes,
    sequential_validity_refine,
    topological_order,
    type_position_prior,
)

logger = get_logger(__name__)


@dataclass
class GraphRNNConfig:
    window: int = 24
    hidden: int = 48
    type_dim: int = 16
    epochs: int = 40
    lr: float = 3e-3
    seed: int = 0


@dataclass
class _Sequence:
    """One DAG-ified training graph as (types, window adjacency rows)."""

    types: np.ndarray          # (n,) type indices in topo order
    windows: np.ndarray        # (n, window) 1 if connected to i-k-1


def _to_sequences(graphs: list[CircuitGraph], window: int) -> list[_Sequence]:
    sequences = []
    for g in graphs:
        a = dagify(g)
        order = topological_order(a)
        n = len(order)
        types = np.array(
            [type_index(g.node(int(v)).type) for v in order], dtype=np.int64
        )
        windows = np.zeros((n, window), dtype=np.float64)
        pos = {int(v): i for i, v in enumerate(order)}
        for src, dst in zip(*np.nonzero(a)):
            i, j = pos[int(src)], pos[int(dst)]
            k = j - i - 1
            if 0 <= k < window:
                windows[j, k] = 1.0
        sequences.append(_Sequence(types, windows))
    return sequences


class GraphRNNBaseline:
    """Autoregressive circuit generator with GraphRNN-S structure."""

    def __init__(self, config: GraphRNNConfig | None = None):
        self.config = config or GraphRNNConfig()
        rng = np.random.default_rng(self.config.seed)
        c = self.config
        self.type_emb = Embedding(NUM_TYPES, c.type_dim, rng)
        self.gru = GRUCell(c.type_dim + c.window, c.hidden, rng)
        self.edge_mlp = MLP([c.hidden, c.hidden, c.window], rng)
        self.attributes: AttributeSampler | None = None
        self.position_prior: np.ndarray | None = None
        self.losses: list[float] = []

    def _parameters(self):
        return (
            self.type_emb.parameters()
            + self.gru.parameters()
            + self.edge_mlp.parameters()
        )

    # ------------------------------------------------------------------
    def fit(self, graphs: list[CircuitGraph], verbose: bool = False
            ) -> "GraphRNNBaseline":
        if not graphs:
            raise ValueError("need at least one training graph")
        c = self.config
        rng = np.random.default_rng(c.seed)
        self.attributes = AttributeSampler(graphs)
        self.position_prior = type_position_prior(graphs)
        sequences = _to_sequences(graphs, c.window)
        optimizer = Adam(self._parameters(), lr=c.lr)

        for epoch in range(c.epochs):
            epoch_loss = 0.0
            for si in rng.permutation(len(sequences)):
                seq = sequences[si]
                optimizer.zero_grad()
                loss = self._sequence_loss(seq)
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
            self.losses.append(epoch_loss / len(sequences))
            if epoch % 10 == 0:
                logger.log(
                    logging.INFO if verbose else logging.DEBUG,
                    "[graphrnn] epoch %d loss %.4f", epoch, self.losses[-1],
                )
        return self

    def _sequence_loss(self, seq: _Sequence) -> Tensor:
        c = self.config
        n = len(seq.types)
        h = Tensor(np.zeros((1, c.hidden)))
        prev = np.zeros((1, c.window))
        logit_rows = []
        for i in range(n):
            emb = self.type_emb(np.array([seq.types[i]]))
            x = emb.concat(Tensor(prev), axis=-1)
            h = self.gru(x, h)
            logit_rows.append(self.edge_mlp(h))
            prev = seq.windows[i:i + 1]
        from ..nn import concat_all

        logits = concat_all(logit_rows, axis=0)
        return bce_with_logits(logits, seq.windows)

    # ------------------------------------------------------------------
    def generate(
        self, num_nodes: int, rng: np.random.Generator, name: str = "graphrnn"
    ) -> CircuitGraph:
        """Sample a valid circuit DAG of ``num_nodes`` nodes."""
        if self.attributes is None:
            raise RuntimeError("call fit() first")
        c = self.config
        types, widths = self.attributes.sample(num_nodes, rng)
        types, widths = order_attributes(
            types, widths, self.position_prior, rng
        )
        types, widths = guaranteed_attributes(types, widths)

        h_np = np.zeros((1, c.hidden))
        prev = np.zeros((1, c.window))
        probs = np.zeros((num_nodes, num_nodes))
        sampled = np.zeros((num_nodes, num_nodes), dtype=bool)
        for i in range(num_nodes):
            x = np.concatenate(
                [self.type_emb.weight.data[types[i]][None, :], prev], axis=-1
            )
            h_np = self._gru_np(x, h_np)
            row_logits = self._mlp_np(h_np)[0]
            row_probs = sigmoid_np(row_logits)
            connect = rng.random(c.window) < row_probs
            prev = np.zeros((1, c.window))
            for k in range(c.window):
                j = i - k - 1
                if j < 0:
                    break
                probs[j, i] = row_probs[k]
                if connect[k]:
                    sampled[j, i] = True
                    prev[0, k] = 1.0
        return sequential_validity_refine(
            types, widths, probs, name, rng, sampled_adjacency=sampled
        )

    # -- numpy inference helpers -------------------------------------------
    def _gru_np(self, x: np.ndarray, h: np.ndarray) -> np.ndarray:
        xh = np.concatenate([x, h], axis=-1)
        z = sigmoid_np(xh @ self.gru.w_z.weight.data + self.gru.w_z.bias.data)
        r = sigmoid_np(xh @ self.gru.w_r.weight.data + self.gru.w_r.bias.data)
        xrh = np.concatenate([x, r * h], axis=-1)
        h_tilde = np.tanh(
            xrh @ self.gru.w_h.weight.data + self.gru.w_h.bias.data
        )
        return (1 - z) * h + z * h_tilde

    def _mlp_np(self, x: np.ndarray) -> np.ndarray:
        out = x
        for layer in self.edge_mlp.layers[:-1]:
            out = np.maximum(out @ layer.weight.data + layer.bias.data, 0.0)
        last = self.edge_mlp.layers[-1]
        return out @ last.weight.data + last.bias.data
