"""D-VAE baseline (Zhang et al. 2019), adapted to circuit graphs.

A variational autoencoder over node sequences: a GRU encoder reads the
DAG-ified circuit in topological order into a latent code z; a GRU
decoder conditioned on z regenerates the window connection probabilities
autoregressively.  (The original D-VAE uses asynchronous message passing
for encoding; the topological GRU here is the sequence approximation of
that scheme -- recorded as a simplification in DESIGN.md.)

Like GraphRNN, the adaptation can only produce DAGs; generated circuits
lack register feedback, the deficiency the paper measures in Figure 5.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

import numpy as np

from ..diffusion import AttributeSampler
from ..ir import CircuitGraph, NUM_TYPES
from ..obs import get_logger
from ..nn import (
    GRUCell,
    Linear,
    MLP,
    Adam,
    Embedding,
    Tensor,
    bce_with_logits,
    concat_all,
    sigmoid_np,
)
from .common import (
    guaranteed_attributes,
    order_attributes,
    sequential_validity_refine,
    type_position_prior,
)
from .graphrnn import _to_sequences

logger = get_logger(__name__)


@dataclass
class DVAEConfig:
    window: int = 24
    hidden: int = 48
    latent: int = 16
    type_dim: int = 16
    epochs: int = 40
    lr: float = 3e-3
    beta: float = 0.05   # KL weight
    seed: int = 0


class DVAEBaseline:
    """Variational autoencoder over topologically-ordered circuit DAGs."""

    def __init__(self, config: DVAEConfig | None = None):
        self.config = config or DVAEConfig()
        c = self.config
        rng = np.random.default_rng(c.seed)
        self.type_emb = Embedding(NUM_TYPES, c.type_dim, rng)
        self.encoder_gru = GRUCell(c.type_dim + c.window, c.hidden, rng)
        self.mu_head = Linear(c.hidden, c.latent, rng)
        self.logvar_head = Linear(c.hidden, c.latent, rng)
        self.init_head = Linear(c.latent, c.hidden, rng)
        self.decoder_gru = GRUCell(c.type_dim + c.window, c.hidden, rng)
        self.edge_mlp = MLP([c.hidden, c.hidden, c.window], rng)
        self.attributes: AttributeSampler | None = None
        self.position_prior: np.ndarray | None = None
        self.losses: list[float] = []

    def _parameters(self):
        params = []
        for module in (
            self.type_emb, self.encoder_gru, self.mu_head, self.logvar_head,
            self.init_head, self.decoder_gru, self.edge_mlp,
        ):
            params.extend(module.parameters())
        return params

    # ------------------------------------------------------------------
    def fit(self, graphs: list[CircuitGraph], verbose: bool = False
            ) -> "DVAEBaseline":
        if not graphs:
            raise ValueError("need at least one training graph")
        c = self.config
        rng = np.random.default_rng(c.seed)
        self.attributes = AttributeSampler(graphs)
        self.position_prior = type_position_prior(graphs)
        sequences = _to_sequences(graphs, c.window)
        optimizer = Adam(self._parameters(), lr=c.lr)

        for epoch in range(c.epochs):
            epoch_loss = 0.0
            for si in rng.permutation(len(sequences)):
                seq = sequences[si]
                optimizer.zero_grad()
                loss = self._elbo_loss(seq, rng)
                loss.backward()
                optimizer.step()
                epoch_loss += loss.item()
            self.losses.append(epoch_loss / len(sequences))
            if epoch % 10 == 0:
                logger.log(
                    logging.INFO if verbose else logging.DEBUG,
                    "[dvae] epoch %d loss %.4f", epoch, self.losses[-1],
                )
        return self

    def _elbo_loss(self, seq, rng: np.random.Generator) -> Tensor:
        c = self.config
        n = len(seq.types)
        # Encode.
        h = Tensor(np.zeros((1, c.hidden)))
        prev = np.zeros((1, c.window))
        for i in range(n):
            emb = self.type_emb(np.array([seq.types[i]]))
            x = emb.concat(Tensor(prev), axis=-1)
            h = self.encoder_gru(x, h)
            prev = seq.windows[i:i + 1]
        mu = self.mu_head(h)
        logvar = self.logvar_head(h)
        eps = Tensor(rng.standard_normal((1, c.latent)))
        z = mu + eps * (logvar * 0.5).exp()
        # KL(q(z|G) || N(0, I)).
        one = Tensor(np.ones((1, c.latent)))
        kl = ((mu * mu) + logvar.exp() - logvar - one).sum() * 0.5
        # Decode.
        h = self.init_head(z).tanh()
        prev = np.zeros((1, c.window))
        rows = []
        for i in range(n):
            emb = self.type_emb(np.array([seq.types[i]]))
            x = emb.concat(Tensor(prev), axis=-1)
            h = self.decoder_gru(x, h)
            rows.append(self.edge_mlp(h))
            prev = seq.windows[i:i + 1]
        logits = concat_all(rows, axis=0)
        recon = bce_with_logits(logits, seq.windows)
        return recon + kl * (c.beta / max(n, 1))

    # ------------------------------------------------------------------
    def generate(
        self, num_nodes: int, rng: np.random.Generator, name: str = "dvae"
    ) -> CircuitGraph:
        """Decode a valid circuit DAG from a prior latent sample."""
        if self.attributes is None:
            raise RuntimeError("call fit() first")
        c = self.config
        types, widths = self.attributes.sample(num_nodes, rng)
        types, widths = order_attributes(
            types, widths, self.position_prior, rng
        )
        types, widths = guaranteed_attributes(types, widths)

        z = rng.standard_normal((1, c.latent))
        h = np.tanh(z @ self.init_head.weight.data + self.init_head.bias.data)
        prev = np.zeros((1, c.window))
        probs = np.zeros((num_nodes, num_nodes))
        sampled = np.zeros((num_nodes, num_nodes), dtype=bool)
        for i in range(num_nodes):
            x = np.concatenate(
                [self.type_emb.weight.data[types[i]][None, :], prev], axis=-1
            )
            h = _gru_np(self.decoder_gru, x, h)
            row = sigmoid_np(_mlp_np(self.edge_mlp, h)[0])
            connect = rng.random(c.window) < row
            prev = np.zeros((1, c.window))
            for k in range(c.window):
                j = i - k - 1
                if j < 0:
                    break
                probs[j, i] = row[k]
                if connect[k]:
                    sampled[j, i] = True
                    prev[0, k] = 1.0
        return sequential_validity_refine(
            types, widths, probs, name, rng, sampled_adjacency=sampled
        )


def _gru_np(gru: GRUCell, x: np.ndarray, h: np.ndarray) -> np.ndarray:
    xh = np.concatenate([x, h], axis=-1)
    z = sigmoid_np(xh @ gru.w_z.weight.data + gru.w_z.bias.data)
    r = sigmoid_np(xh @ gru.w_r.weight.data + gru.w_r.bias.data)
    xrh = np.concatenate([x, r * h], axis=-1)
    h_tilde = np.tanh(xrh @ gru.w_h.weight.data + gru.w_h.bias.data)
    return (1 - z) * h + z * h_tilde


def _mlp_np(mlp: MLP, x: np.ndarray) -> np.ndarray:
    out = x
    for layer in mlp.layers[:-1]:
        out = np.maximum(out @ layer.weight.data + layer.bias.data, 0.0)
    last = mlp.layers[-1]
    return out @ last.weight.data + last.bias.data
