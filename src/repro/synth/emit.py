"""Outputs of the synthesis flow: mapped-netlist Verilog and QoR reports.

``emit_netlist_verilog`` writes the optimized gate-level netlist as
structural Verilog over the mapped library cells (what a synthesis tool
hands to place-and-route); ``qor_report`` renders the familiar
quality-of-results summary.
"""

from __future__ import annotations

import re

from .flow import SynthResult
from .library import DEFAULT_LIBRARY, CellLibrary
from .netlist import Netlist

_IDENT_RE = re.compile(r"[^A-Za-z0-9_]")


def _net_name(netlist: Netlist, net: int, port_names: dict[int, str]) -> str:
    if net == netlist.const0:
        return "1'b0"
    if net == netlist.const1:
        return "1'b1"
    return port_names.get(net, f"n{net}")


def emit_netlist_verilog(
    netlist: Netlist,
    module_name: str | None = None,
    library: CellLibrary = DEFAULT_LIBRARY,
    strength: int = 1,
) -> str:
    """Structural Verilog over library cell instances."""
    module_name = _IDENT_RE.sub("_", module_name or netlist.name) or "netlist"
    port_names: dict[int, str] = {}
    in_ports: list[str] = []
    for name, net in netlist.primary_inputs:
        port = _IDENT_RE.sub("_", name)
        port_names[net] = port
        in_ports.append(port)
    out_ports: list[tuple[str, int]] = []
    for name, net in netlist.primary_outputs:
        port = _IDENT_RE.sub("_", name)
        out_ports.append((port, net))

    lines = [
        f"module {module_name}(clk, "
        + ", ".join(in_ports + [p for p, _ in out_ports])
        + ");",
        "  input clk;",
    ]
    lines.extend(f"  input {p};" for p in in_ports)
    lines.extend(f"  output {p};" for p, _ in out_ports)
    internal = sorted(
        {g.output for g in netlist.gates} - set(port_names)
    )
    for net in internal:
        lines.append(f"  wire n{net};")

    pin_orders = {
        "NOT": ("A",), "AND": ("A1", "A2"), "OR": ("A1", "A2"),
        "XOR": ("A", "B"), "MUX": ("S", "A", "B"), "DFF": ("D",),
    }
    for idx, gate in enumerate(netlist.gates):
        cell = library.cell(gate.kind, strength)
        pins = [
            f".{pin}({_net_name(netlist, net, port_names)})"
            for pin, net in zip(pin_orders[gate.kind], gate.inputs)
        ]
        out_pin = "Q" if gate.kind == "DFF" else "Z"
        pins.append(f".{out_pin}({_net_name(netlist, gate.output, port_names)})")
        if gate.kind == "DFF":
            pins.append(".CK(clk)")
        lines.append(f"  {cell.name} U{idx} ({', '.join(pins)});")

    for port, net in out_ports:
        source = _net_name(netlist, net, port_names)
        if source != port:
            lines.append(f"  assign {port} = {source};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def qor_report(result: SynthResult) -> str:
    """Quality-of-results summary in the familiar synthesis-log shape."""
    counts = result.netlist.gate_counts()
    lines = [
        f"Design: {result.design}",
        f"Clock period: {result.clock_period:.3f} ns "
        f"(drive strength X{result.strength})",
        "",
        "Cell counts:",
    ]
    for kind in sorted(counts):
        lines.append(f"  {kind:<6s}{counts[kind]:>8d}")
    lines.extend([
        f"  {'total':<6s}{result.num_cells:>8d}",
        "",
        f"Area:                 {result.area:12.3f} um^2",
        f"Sequential cells:     {result.num_dffs:8d} "
        f"(of {result.rtl_register_bits} RTL register bits, "
        f"SCPR {result.scpr:.3f})",
        f"Post-synthesis size:  {result.pcs:12.3f} (area / RTL node)",
        "",
        f"Worst negative slack: {result.wns:+12.3f} ns",
        f"Total negative slack: {result.tns:+12.3f} ns "
        f"({result.nvp} violating endpoints)",
        f"Critical path delay:  {result.timing.critical_delay:12.3f} ns",
        "",
        f"Optimization: {result.opt_stats.gates_before} -> "
        f"{result.opt_stats.gates_after} gates in "
        f"{result.opt_stats.rounds} rounds",
    ])
    return "\n".join(lines)
