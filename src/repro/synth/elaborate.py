"""Elaboration: word-level circuit graph -> bit-level gate netlist.

Arithmetic and comparison operators are expanded into classic gate-level
structures (ripple-carry adders, borrow-chain comparators, barrel shifters,
shift-and-add multipliers).  Widths follow Verilog assignment semantics:
operands are zero-extended or truncated to the consumer's width.

Register nodes break the cyclic graph: DFF output nets are created first,
then the combinational cone is walked in topological order (valid circuits
have an acyclic combinational subgraph), then the D inputs are wired up.
"""

from __future__ import annotations

from ..ir import CircuitGraph, NodeType, assert_valid
from .netlist import Gate, Netlist

#: Multiplier operand widths are capped to keep the gate count O(cap^2).
MUL_WIDTH_CAP = 16


def elaborate(graph: CircuitGraph, check: bool = True) -> Netlist:
    """Lower ``graph`` to a gate netlist (the "GTECH" step of synthesis)."""
    if check:
        assert_valid(graph)
    return _Elaborator(graph).run()


class _Elaborator:
    """Per-node lowering context.

    ``run`` performs a full elaboration; the individual ``lower_*``
    methods are also driven one node at a time by the incremental engine
    (:mod:`repro.incr.delta`), which supplies a pre-populated ``bits``
    map for the untouched region and re-lowers only the dirty cone.
    """

    def __init__(
        self,
        graph: CircuitGraph,
        netlist: Netlist | None = None,
        bits: dict[int, list[int]] | None = None,
    ):
        self.graph = graph
        self.netlist = netlist if netlist is not None else Netlist(name=graph.name)
        self.netlist.ensure_consts()
        #: node id -> list of bit nets, LSB first.  Never mutated in
        #: place: every lowering assigns a fresh list, so callers may
        #: share bit lists across elaborations.
        self.bits: dict[int, list[int]] = bits if bits is not None else {}

    # ------------------------------------------------------------------
    def run(self) -> Netlist:
        g, nl = self.graph, self.netlist

        for node in g.nodes():
            if node.type in (NodeType.IN, NodeType.CONST, NodeType.REG):
                self.lower_source(node.id)

        for node_id in self._comb_topo_order():
            self._lower_comb(node_id)

        # Close register feedback: create the DFF gates now that D exists.
        for reg in g.registers():
            self.lower_reg_dffs(reg)

        for out in g.outputs():
            self.lower_output(out)

        nl.check()
        return nl

    # ------------------------------------------------------------------
    def lower_source(self, node_id: int) -> None:
        """Lower an IN / CONST / REG node (REG: Q nets only, no gates)."""
        nl = self.netlist
        node = self.graph.node(node_id)
        if node.type is NodeType.IN:
            self.bits[node_id] = [
                nl.add_input(f"{node.name or 'in'}_{node_id}[{b}]")
                for b in range(node.width)
            ]
        elif node.type is NodeType.CONST:
            value = int(node.params.get("value", 0))
            self.bits[node_id] = [
                nl.const1 if (value >> b) & 1 else nl.const0
                for b in range(node.width)
            ]
        elif node.type is NodeType.REG:
            q_bits = []
            for b in range(node.width):
                q = nl.new_net()
                q_bits.append(q)
                nl.dff_origin[q] = (node_id, b)
            self.bits[node_id] = q_bits
        else:  # pragma: no cover - defensive
            raise ValueError(f"node {node_id} ({node.type}) is not a source")

    def lower_reg_dffs(self, reg: int) -> None:
        """Create the DFF gates of one register (Q nets must exist)."""
        g, nl = self.graph, self.netlist
        node = g.node(reg)
        d_bits = self._operand(g.filled_parents(reg)[0], node.width)
        for d, q in zip(d_bits, self.bits[reg]):
            # DFF gates are created with explicit (pre-allocated) outputs.
            nl.gates.append(Gate("DFF", (d,), q))

    def lower_output(self, out: int) -> None:
        """Wire one OUT node to named primary-output ports."""
        g, nl = self.graph, self.netlist
        node = g.node(out)
        src = self._operand(g.filled_parents(out)[0], node.width)
        for b, net in enumerate(src):
            nl.add_output(f"{node.name or 'out'}_{out}[{b}]", net)

    # ------------------------------------------------------------------
    def _comb_topo_order(self) -> list[int]:
        """Topological order of combinational operator nodes.

        Sources (IN/CONST/REG) are already lowered; OUT and REG sinks are
        handled separately.  Validity guarantees acyclicity here.
        """
        g = self.graph
        comb = [
            n.id
            for n in g.nodes()
            if n.type not in (NodeType.IN, NodeType.CONST, NodeType.REG,
                              NodeType.OUT)
        ]
        comb_set = set(comb)
        indegree = {v: 0 for v in comb}
        children: dict[int, list[int]] = {v: [] for v in comb}
        for v in comb:
            for p in self.graph.filled_parents(v):
                if p in comb_set:
                    indegree[v] += 1
                    children[p].append(v)
        order: list[int] = []
        frontier = [v for v in comb if indegree[v] == 0]
        while frontier:
            v = frontier.pop()
            order.append(v)
            for c in children[v]:
                indegree[c] -= 1
                if indegree[c] == 0:
                    frontier.append(c)
        if len(order) != len(comb):
            raise ValueError("combinational subgraph is cyclic")
        return order

    def _operand(self, node_id: int, width: int) -> list[int]:
        """Bits of ``node_id`` adapted (zero-extend / truncate) to ``width``."""
        bits = self.bits[node_id]
        if len(bits) >= width:
            return bits[:width]
        return bits + [self.netlist.const0] * (width - len(bits))

    # ------------------------------------------------------------------
    def _lower_comb(self, node_id: int) -> None:
        g, nl = self.graph, self.netlist
        node = g.node(node_id)
        parents = g.filled_parents(node_id)
        w = node.width
        t = node.type

        if t is NodeType.NOT:
            a = self._operand(parents[0], w)
            self.bits[node_id] = [nl.add_gate("NOT", bit) for bit in a]
        elif t is NodeType.REDUCE_OR:
            a = self.bits[parents[0]]
            self.bits[node_id] = [self._or_tree(a)]
        elif t is NodeType.SLICE:
            lo = int(node.params.get("lo", 0))
            src = self._operand(parents[0], lo + w)
            self.bits[node_id] = src[lo:lo + w]
        elif t is NodeType.CONCAT:
            hi_bits = self.bits[parents[0]]
            lo_bits = self.bits[parents[1]]
            full = lo_bits + hi_bits
            self.bits[node_id] = (full + [nl.const0] * w)[:w]
        elif t in (NodeType.AND, NodeType.OR, NodeType.XOR):
            a = self._operand(parents[0], w)
            b = self._operand(parents[1], w)
            kind = t.value.upper()
            self.bits[node_id] = [
                nl.add_gate(kind, x, y) for x, y in zip(a, b)
            ]
        elif t is NodeType.ADD:
            a = self._operand(parents[0], w)
            b = self._operand(parents[1], w)
            self.bits[node_id] = self._adder(a, b, carry_in=nl.const0)
        elif t is NodeType.SUB:
            a = self._operand(parents[0], w)
            b = [nl.add_gate("NOT", bit) for bit in self._operand(parents[1], w)]
            self.bits[node_id] = self._adder(a, b, carry_in=nl.const1)
        elif t is NodeType.MUL:
            self.bits[node_id] = self._multiplier(parents[0], parents[1], w)
        elif t is NodeType.EQ:
            wa = g.node(parents[0]).width
            wb = g.node(parents[1]).width
            wide = max(wa, wb)
            a = self._operand(parents[0], wide)
            b = self._operand(parents[1], wide)
            diffs = [nl.add_gate("XOR", x, y) for x, y in zip(a, b)]
            self.bits[node_id] = [nl.add_gate("NOT", self._or_tree(diffs))]
        elif t is NodeType.LT:
            wa = g.node(parents[0]).width
            wb = g.node(parents[1]).width
            wide = max(wa, wb)
            a = self._operand(parents[0], wide)
            b = self._operand(parents[1], wide)
            self.bits[node_id] = [self._borrow(a, b)]
        elif t in (NodeType.SHL, NodeType.SHR):
            self.bits[node_id] = self._shifter(
                parents[0], parents[1], w, left=(t is NodeType.SHL)
            )
        elif t is NodeType.MUX:
            sel = self._or_tree(self.bits[parents[0]])
            a = self._operand(parents[1], w)
            b = self._operand(parents[2], w)
            self.bits[node_id] = [
                nl.add_gate("MUX", sel, x, y) for x, y in zip(a, b)
            ]
        else:  # pragma: no cover - defensive
            raise ValueError(f"cannot lower node type {t}")

    # ------------------------------------------------------------------
    # Gate-level building blocks
    # ------------------------------------------------------------------
    def _or_tree(self, bits: list[int]) -> int:
        nl = self.netlist
        if not bits:
            return nl.const0
        while len(bits) > 1:
            nxt = []
            for i in range(0, len(bits) - 1, 2):
                nxt.append(nl.add_gate("OR", bits[i], bits[i + 1]))
            if len(bits) % 2:
                nxt.append(bits[-1])
            bits = nxt
        return bits[0]

    def _adder(self, a: list[int], b: list[int], carry_in: int) -> list[int]:
        """Ripple-carry adder, result truncated to len(a)."""
        nl = self.netlist
        carry = carry_in
        out = []
        for x, y in zip(a, b):
            axy = nl.add_gate("XOR", x, y)
            out.append(nl.add_gate("XOR", axy, carry))
            gen = nl.add_gate("AND", x, y)
            prop = nl.add_gate("AND", axy, carry)
            carry = nl.add_gate("OR", gen, prop)
        return out

    def _borrow(self, a: list[int], b: list[int]) -> int:
        """Final borrow of a - b, i.e. the unsigned a < b flag."""
        nl = self.netlist
        borrow = nl.const0
        for x, y in zip(a, b):
            nx = nl.add_gate("NOT", x)
            t1 = nl.add_gate("AND", nx, y)
            same = nl.add_gate("NOT", nl.add_gate("XOR", x, y))
            t2 = nl.add_gate("AND", same, borrow)
            borrow = nl.add_gate("OR", t1, t2)
        return borrow

    def _multiplier(self, pa: int, pb: int, w: int) -> list[int]:
        """Shift-and-add array multiplier, truncated to ``w`` bits."""
        nl = self.netlist
        wa = min(self.graph.node(pa).width, MUL_WIDTH_CAP, w)
        wb = min(self.graph.node(pb).width, MUL_WIDTH_CAP, w)
        a = self._operand(pa, wa)
        b = self._operand(pb, wb)
        acc = [nl.const0] * w
        for i, bbit in enumerate(b):
            if i >= w:
                break
            row = [nl.const0] * i
            row += [nl.add_gate("AND", abit, bbit) for abit in a]
            row = (row + [nl.const0] * w)[:w]
            acc = self._adder(acc, row, carry_in=nl.const0)
        return acc

    def _shifter(self, pa: int, pb: int, w: int, left: bool) -> list[int]:
        """Logarithmic barrel shifter by a variable amount."""
        nl = self.netlist
        bits = self._operand(pa, w)
        amount = self.bits[pb]
        stages = max(1, (w - 1).bit_length()) if w > 1 else 1
        for stage in range(min(stages, len(amount))):
            shift = 1 << stage
            sel = amount[stage]
            shifted = []
            for i in range(w):
                src = i - shift if left else i + shift
                shifted.append(bits[src] if 0 <= src < w else nl.const0)
            bits = [
                nl.add_gate("MUX", sel, s, b) for s, b in zip(shifted, bits)
            ]
        # Shift amounts beyond the stage count zero the result.
        extra = amount[min(stages, len(amount)):]
        if extra:
            any_extra = self._or_tree(list(extra))
            bits = [
                nl.add_gate("MUX", any_extra, nl.const0, b) for b in bits
            ]
        return bits
