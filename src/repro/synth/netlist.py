"""Bit-level gate netlist: the output of elaboration, input to optimization.

Nets are dense integers.  Every net is driven by exactly one of: a primary
input, one of the two constant nets, or one gate output.  Gate kinds are
the logical primitives the technology mapper knows how to map:

``NOT a`` / ``AND a b`` / ``OR a b`` / ``XOR a b`` / ``MUX s a b`` /
``DFF d`` (posedge clk, implicit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

GATE_KINDS = ("NOT", "AND", "OR", "XOR", "MUX", "DFF")
_ARITY = {"NOT": 1, "AND": 2, "OR": 2, "XOR": 2, "MUX": 3, "DFF": 1}


@dataclass(slots=True)
class Gate:
    kind: str
    inputs: tuple[int, ...]
    output: int

    def __post_init__(self) -> None:
        if self.kind not in _ARITY:
            raise ValueError(f"unknown gate kind {self.kind!r}")
        if len(self.inputs) != _ARITY[self.kind]:
            raise ValueError(
                f"{self.kind} expects {_ARITY[self.kind]} inputs, "
                f"got {len(self.inputs)}"
            )


@dataclass
class Netlist:
    """Gate-level netlist with named ports.

    ``dff_origin`` maps a DFF's output net to the word-level register node
    (rtl node id, bit index) it came from; the SCPR metric and the
    register-slack labels need this trace through optimization.
    """

    name: str = "design"
    num_nets: int = 0
    gates: list[Gate] = field(default_factory=list)
    const0: int = -1
    const1: int = -1
    primary_inputs: list[tuple[str, int]] = field(default_factory=list)
    primary_outputs: list[tuple[str, int]] = field(default_factory=list)
    dff_origin: dict[int, tuple[int, int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def new_net(self) -> int:
        net = self.num_nets
        self.num_nets += 1
        return net

    def ensure_consts(self) -> None:
        if self.const0 < 0:
            self.const0 = self.new_net()
        if self.const1 < 0:
            self.const1 = self.new_net()

    def add_gate(self, kind: str, *inputs: int) -> int:
        out = self.new_net()
        self.gates.append(Gate(kind, tuple(inputs), out))
        return out

    def add_input(self, name: str) -> int:
        net = self.new_net()
        self.primary_inputs.append((name, net))
        return net

    def add_output(self, name: str, net: int) -> None:
        self.primary_outputs.append((name, net))

    # ------------------------------------------------------------------
    @property
    def num_gates(self) -> int:
        return len(self.gates)

    def dffs(self) -> list[Gate]:
        return [g for g in self.gates if g.kind == "DFF"]

    @property
    def num_dffs(self) -> int:
        return sum(1 for g in self.gates if g.kind == "DFF")

    def driver_map(self) -> dict[int, Gate]:
        drivers: dict[int, Gate] = {}
        for gate in self.gates:
            if gate.output in drivers:
                raise ValueError(f"net {gate.output} has multiple drivers")
            drivers[gate.output] = gate
        return drivers

    def gate_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for gate in self.gates:
            counts[gate.kind] = counts.get(gate.kind, 0) + 1
        return counts

    def check(self) -> None:
        """Structural sanity: single drivers, inputs exist, no PI driving."""
        drivers = self.driver_map()
        sources = {net for _, net in self.primary_inputs}
        sources.add(self.const0)
        sources.add(self.const1)
        for net in sources:
            if net in drivers:
                raise ValueError(f"source net {net} is also gate-driven")
        known = sources | set(drivers)
        for gate in self.gates:
            for net in gate.inputs:
                if net not in known:
                    raise ValueError(
                        f"gate {gate.kind}->{gate.output} reads undriven net {net}"
                    )
        for name, net in self.primary_outputs:
            if net not in known:
                raise ValueError(f"output {name} reads undriven net {net}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Netlist({self.name!r}, nets={self.num_nets}, "
            f"gates={self.num_gates}, dffs={self.num_dffs})"
        )
