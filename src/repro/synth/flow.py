"""One-call synthesis flow: elaborate -> optimize -> map -> time.

``synthesize`` is the repository's stand-in for the paper's Synopsys
Design Compiler runs; ``pareto_sweep`` reproduces the label-generation
protocol ("multiple parameters within the Design Compiler were adjusted,
and a set of the PPA values along the Pareto frontier were utilized as
ground truth labels").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir import CircuitGraph
from .elaborate import elaborate
from .library import DEFAULT_LIBRARY, CellLibrary
from .netlist import Netlist
from .passes import OptStats, optimize
from .timing import TimingReport, analyze_timing, total_area


@dataclass
class SynthResult:
    """Everything the experiments need from one synthesis run."""

    design: str
    clock_period: float
    strength: int
    netlist: Netlist
    area: float
    num_cells: int
    num_dffs: int
    timing: TimingReport
    opt_stats: OptStats
    rtl_nodes: int
    rtl_register_bits: int
    extras: dict = field(default_factory=dict)

    @property
    def wns(self) -> float:
        return self.timing.wns

    @property
    def tns(self) -> float:
        return self.timing.tns

    @property
    def nvp(self) -> int:
        return self.timing.nvp

    @property
    def register_slacks(self) -> dict[int, float]:
        return self.timing.register_slacks

    @property
    def scpr(self) -> float:
        """Sequential cell preservation ratio (paper, Section VI).

        Sequential cells surviving synthesis divided by the total number
        of bits in sequential signals of the pre-synthesis design.
        """
        if self.rtl_register_bits == 0:
            return 1.0
        return self.num_dffs / self.rtl_register_bits

    @property
    def pcs(self) -> float:
        """Post-synthesis circuit size (paper, Section VI-B).

        Post-synthesis area divided by the number of pre-synthesis nodes;
        larger means less logic was optimized away.
        """
        if self.rtl_nodes == 0:
            return 0.0
        return self.area / self.rtl_nodes


def synthesize(
    graph: CircuitGraph,
    clock_period: float = 1.0,
    strength: int = 1,
    library: CellLibrary = DEFAULT_LIBRARY,
    run_optimization: bool = True,
    check: bool = True,
    run_timing: bool = True,
) -> SynthResult:
    """Full flow for one design at one (period, drive-strength) point.

    ``run_timing=False`` skips the STA pass and reports an empty
    :class:`TimingReport`; area, cell counts, SCPR and PCS are
    unaffected.  Callers that only consume the area side (the MCTS
    acceptance oracle, reward calibration) use it to keep full-accuracy
    PCS without paying for slacks nobody reads.
    """
    raw = elaborate(graph, check=check)
    if run_optimization:
        netlist, stats = optimize(raw, check=check)
    else:
        netlist, stats = raw, OptStats(
            rounds=0,
            gates_before=raw.num_gates,
            gates_after=raw.num_gates,
            dffs_before=raw.num_dffs,
            dffs_after=raw.num_dffs,
        )
    timing = (
        analyze_timing(netlist, clock_period, library, strength)
        if run_timing
        else TimingReport(clock_period=clock_period, wns=0.0, tns=0.0, nvp=0)
    )
    return SynthResult(
        design=graph.name,
        clock_period=clock_period,
        strength=strength,
        netlist=netlist,
        area=total_area(netlist, library, strength),
        num_cells=netlist.num_gates,
        num_dffs=netlist.num_dffs,
        timing=timing,
        opt_stats=stats,
        rtl_nodes=graph.num_nodes,
        rtl_register_bits=graph.total_register_bits(),
    )


def pareto_sweep(
    graph: CircuitGraph,
    periods: list[float] | None = None,
    strengths: tuple[int, ...] = (1, 2, 4),
    library: CellLibrary = DEFAULT_LIBRARY,
) -> list[SynthResult]:
    """PPA points along the area/timing Pareto frontier.

    For each target period, every drive strength is evaluated; the cheapest
    implementation that meets timing is kept, or the fastest one when none
    meets timing.  Dominated points (worse area *and* worse WNS) are then
    filtered out.
    """
    base = synthesize(graph, clock_period=1.0, strength=1, library=library)
    if periods is None:
        # Derive a sensible sweep from the design's own critical delay.
        critical = max(base.timing.critical_delay, 0.05)
        periods = [critical * f for f in (0.6, 0.8, 1.0, 1.2, 1.5)]

    candidates: list[SynthResult] = []
    for period in periods:
        best: SynthResult | None = None
        fastest: SynthResult | None = None
        for strength in strengths:
            timing = analyze_timing(base.netlist, period, library, strength)
            result = SynthResult(
                design=graph.name,
                clock_period=period,
                strength=strength,
                netlist=base.netlist,
                area=total_area(base.netlist, library, strength),
                num_cells=base.num_cells,
                num_dffs=base.num_dffs,
                timing=timing,
                opt_stats=base.opt_stats,
                rtl_nodes=base.rtl_nodes,
                rtl_register_bits=base.rtl_register_bits,
            )
            if fastest is None or result.wns > fastest.wns:
                fastest = result
            if result.wns >= 0 and (best is None or result.area < best.area):
                best = result
        candidates.append(best if best is not None else fastest)

    frontier: list[SynthResult] = []
    for result in candidates:
        dominated = any(
            other.area <= result.area and other.wns >= result.wns
            and (other.area < result.area or other.wns > result.wns)
            for other in candidates
        )
        if not dominated:
            frontier.append(result)
    return frontier or candidates
