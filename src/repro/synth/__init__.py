"""Logic synthesis substrate: the Design Compiler substitute."""

from .elaborate import elaborate
from .emit import emit_netlist_verilog, qor_report
from .flow import SynthResult, pareto_sweep, synthesize
from .library import DEFAULT_LIBRARY, Cell, CellLibrary
from .netlist import Gate, Netlist
from .passes import OptStats, optimize
from .timing import TimingReport, analyze_timing, total_area

__all__ = [
    "DEFAULT_LIBRARY",
    "Cell",
    "CellLibrary",
    "Gate",
    "Netlist",
    "OptStats",
    "SynthResult",
    "TimingReport",
    "analyze_timing",
    "elaborate",
    "emit_netlist_verilog",
    "optimize",
    "qor_report",
    "pareto_sweep",
    "synthesize",
    "total_area",
]
