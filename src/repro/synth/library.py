"""Standard-cell library modelled on the NanGate 45nm open cell library.

The paper synthesises with Synopsys Design Compiler and NanGate 45nm; this
library carries the handful of cells our technology mapper targets, with
area (um^2) and pin-to-pin delay (ns) figures in the same ballpark as the
NanGate45 typical corner.  Three drive strengths per cell provide the
area/delay trade-off used to build Pareto-frontier labels.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Cell:
    """One library cell at one drive strength."""

    name: str
    area: float          # um^2
    delay: float         # worst pin-to-output delay, ns
    setup: float = 0.0   # ns; only meaningful for sequential cells
    clk_to_q: float = 0.0


#: Base (X1) cells keyed by netlist gate kind; values approximate NanGate
#: 45nm typical numbers.
_BASE_CELLS = {
    "NOT": Cell("INV_X1", area=0.532, delay=0.012),
    "AND": Cell("AND2_X1", area=1.064, delay=0.034),
    "OR": Cell("OR2_X1", area=1.064, delay=0.036),
    "XOR": Cell("XOR2_X1", area=1.596, delay=0.052),
    "MUX": Cell("MUX2_X1", area=1.862, delay=0.055),
    "DFF": Cell("DFF_X1", area=4.522, delay=0.0, setup=0.040, clk_to_q=0.088),
}

#: Drive-strength scaling: larger cells are faster but bigger.
_STRENGTH_FACTORS = {
    1: (1.00, 1.00),   # (area multiplier, delay multiplier)
    2: (1.45, 0.78),
    4: (2.10, 0.62),
}


class CellLibrary:
    """Lookup of mapped cells by logical gate kind and drive strength."""

    def __init__(self, strengths: tuple[int, ...] = (1, 2, 4)):
        self._cells: dict[tuple[str, int], Cell] = {}
        for kind, base in _BASE_CELLS.items():
            for s in strengths:
                area_f, delay_f = _STRENGTH_FACTORS[s]
                self._cells[(kind, s)] = Cell(
                    name=base.name.replace("_X1", f"_X{s}"),
                    area=base.area * area_f,
                    delay=base.delay * delay_f,
                    setup=base.setup,
                    clk_to_q=base.clk_to_q * delay_f if base.clk_to_q else 0.0,
                )
        self.strengths = strengths

    def cell(self, kind: str, strength: int = 1) -> Cell:
        try:
            return self._cells[(kind, strength)]
        except KeyError:
            raise KeyError(
                f"no cell for gate kind {kind!r} at strength X{strength}"
            ) from None

    def kinds(self) -> list[str]:
        return sorted({k for k, _ in self._cells})


#: Default library instance shared by the flow.
DEFAULT_LIBRARY = CellLibrary()
