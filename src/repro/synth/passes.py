"""Logic optimization passes: the redundancy-removal engine.

These passes reproduce the behaviour of a commercial synthesis tool that
the paper's redundancy metrics depend on: constant propagation, identity
simplification, structural hashing (common sub-expression merging),
sequential sweeping (constant / stuck registers) and dead-code
elimination.  Registers whose logic is redundant disappear here, which is
exactly what drives the SCPR metric of Phase 3.

All passes share a union-find replacement table over nets; constants are
represented by the netlist's dedicated const0/const1 nets, so "becomes
constant" and "becomes an alias" are the same mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass

from .netlist import Gate, Netlist


@dataclass
class OptStats:
    rounds: int
    gates_before: int
    gates_after: int
    dffs_before: int
    dffs_after: int


class _Repl:
    """Union-find over nets with path compression."""

    def __init__(self) -> None:
        self._parent: dict[int, int] = {}

    def find(self, net: int) -> int:
        parent = self._parent
        if net not in parent:
            return net  # fast path: most nets are never aliased
        root = net
        while root in parent:
            root = parent[root]
        while net in parent:
            parent[net], net = root, parent[net]
        return root

    def alias(self, net: int, target: int) -> None:
        root_net, root_target = self.find(net), self.find(target)
        if root_net != root_target:
            self._parent[root_net] = root_target


def optimize(
    netlist: Netlist, max_rounds: int = 25, check: bool = True
) -> tuple[Netlist, OptStats]:
    """Run all passes to fixpoint and return the optimized netlist.

    ``check=False`` skips the defensive structural validation of the
    result (callers in verified inner loops, e.g. the MCTS acceptance
    oracle, opt out; the passes themselves are unchanged).
    """
    repl = _Repl()
    gates = list(netlist.gates)
    c0, c1 = netlist.const0, netlist.const1
    stats = OptStats(
        rounds=0,
        gates_before=len(gates),
        gates_after=len(gates),
        dffs_before=sum(1 for g in gates if g.kind == "DFF"),
        dffs_after=0,
    )

    for round_idx in range(max_rounds):
        gates, changed_simplify = _simplify(gates, repl, c0, c1)
        gates, changed_dedupe = _dedupe(gates, repl)
        gates, changed_dce = _dce(gates, repl, netlist.primary_outputs)
        stats.rounds = round_idx + 1
        if not (changed_simplify or changed_dedupe or changed_dce):
            break

    out = Netlist(
        name=netlist.name,
        num_nets=netlist.num_nets,
        gates=gates,
        const0=c0,
        const1=c1,
        primary_inputs=list(netlist.primary_inputs),
        primary_outputs=[
            (name, repl.find(net)) for name, net in netlist.primary_outputs
        ],
    )
    surviving = {g.output for g in gates if g.kind == "DFF"}
    out.dff_origin = {
        q: origin for q, origin in netlist.dff_origin.items() if q in surviving
    }
    stats.gates_after = len(gates)
    stats.dffs_after = len(surviving)
    if check:
        out.check()
    return out, stats


# ---------------------------------------------------------------------------
# Individual passes
# ---------------------------------------------------------------------------


def _simplify(
    gates: list[Gate], repl: _Repl, c0: int, c1: int
) -> tuple[list[Gate], bool]:
    """Constant propagation + identity rules; one sweep."""
    changed = False
    kept: list[Gate] = []
    find = repl.find
    for gate in gates:
        ins = tuple([find(i) for i in gate.inputs])
        out = gate.output
        kind = gate.kind
        target: int | None = None
        new_kind, new_ins = kind, ins

        if kind == "NOT":
            (a,) = ins
            if a == c0:
                target = c1
            elif a == c1:
                target = c0
        elif kind in ("AND", "OR"):
            a, b = ins
            absorbing = c0 if kind == "AND" else c1
            identity = c1 if kind == "AND" else c0
            if a == absorbing or b == absorbing:
                target = absorbing
            elif a == identity:
                target = b
            elif b == identity:
                target = a
            elif a == b:
                target = a
        elif kind == "XOR":
            a, b = ins
            if a == b:
                target = c0
            elif a == c0:
                target = b
            elif b == c0:
                target = a
            elif a == c1:
                new_kind, new_ins = "NOT", (b,)
            elif b == c1:
                new_kind, new_ins = "NOT", (a,)
        elif kind == "MUX":
            s, a, b = ins
            if s == c1:
                target = a
            elif s == c0:
                target = b
            elif a == b:
                target = a
            elif a == c1 and b == c0:
                target = s
            elif a == c0 and b == c1:
                new_kind, new_ins = "NOT", (s,)
            elif a == s:      # MUX(s, s, b) == s OR b ... == s | b? s=1->1, s=0->b
                new_kind, new_ins = "OR", (s, b)
            elif b == s:      # MUX(s, a, s): s=1->a, s=0->0 == s AND a
                new_kind, new_ins = "AND", (s, a)
        elif kind == "DFF":
            (d,) = ins
            if d in (c0, c1):
                # Register with a constant next-state: swept to the
                # constant.  This matches commercial constant-register
                # sweeping under uninitialised-flop semantics; outputs can
                # differ from a reset-to-0 simulation only during the
                # first #DFF warmup cycles.
                target = d
            elif d == repl.find(out):
                # Next state equals current state: the register never
                # toggles from its reset value; swept to constant 0.
                target = c0

        if target is not None:
            repl.alias(out, target)
            changed = True
            continue
        if new_kind != kind or new_ins != gate.inputs:
            changed = changed or new_kind != kind or new_ins != tuple(
                gate.inputs
            )
            kept.append(Gate(new_kind, new_ins, out))
        else:
            kept.append(gate)
    return kept, changed


def _dedupe(gates: list[Gate], repl: _Repl) -> tuple[list[Gate], bool]:
    """Structural hashing: merge gates with identical function and inputs.

    Also collapses double inversion (NOT of NOT).  Includes DFFs, which
    merges registers that share a next-state function.
    """
    changed = False
    seen: dict[tuple, int] = {}
    not_driver: dict[int, int] = {}
    kept: list[Gate] = []
    find = repl.find
    for gate in gates:
        ins = tuple([find(i) for i in gate.inputs])
        kind = gate.kind
        if kind == "NOT" and ins[0] in not_driver:
            repl.alias(gate.output, not_driver[ins[0]])
            changed = True
            continue
        key_ins = tuple(sorted(ins)) if kind in ("AND", "OR", "XOR") else ins
        key = (kind, key_ins)
        if key in seen:
            repl.alias(gate.output, seen[key])
            changed = True
            continue
        seen[key] = gate.output
        if kind == "NOT":
            not_driver[gate.output] = ins[0]
        kept.append(Gate(kind, ins, gate.output) if ins != gate.inputs else gate)
    return kept, changed


def _dce(
    gates: list[Gate], repl: _Repl, primary_outputs: list[tuple[str, int]]
) -> tuple[list[Gate], bool]:
    """Drop gates not reachable backwards from any primary output.

    DFFs participate like any gate: a register observed by nothing (or
    only by dead logic / itself) is removed, which is the second driver of
    the paper's redundancy measurements.
    """
    driver = {g.output: g for g in gates}
    reachable: set[int] = set()
    stack = [repl.find(net) for _, net in primary_outputs]
    while stack:
        net = stack.pop()
        if net in reachable:
            continue
        reachable.add(net)
        gate = driver.get(net)
        if gate is None:
            continue
        for i in gate.inputs:
            stack.append(repl.find(i))
    kept = [g for g in gates if g.output in reachable]
    return kept, len(kept) != len(gates)
