"""Cycle-accurate netlist simulation (verification substrate).

Used by the test suite to check two invariants the synthesis flow must
uphold: (1) elaboration implements the RTL operator semantics, and
(2) optimization preserves observable behaviour at the primary outputs.
Registers start at 0, matching the constant-register sweep assumption in
:mod:`repro.synth.passes`.

Two backends implement the same contract and are fuzz-tested for
bit-identical outputs (``tests/test_simulate_equivalence.py``):

``scalar``
    The reference implementation: one Python-level gate evaluation per
    gate per cycle.  Simple, obviously correct, slow.

``bitparallel``
    The production backend.  Stimulus cycles are packed into machine
    words (:data:`WORD_BITS` cycles per block, LSB = earliest cycle) and
    every gate is evaluated *word-wise* with native bitwise operations,
    so one ``AND`` processes up to 64 cycles at once.  Sequential
    feedback cannot be resolved in a single pass, so the gate dependency
    graph is split into strongly connected components: the acyclic part
    (typically the vast majority of gates) is evaluated exactly once per
    block, and only the feedback SCCs iterate word-wise to a fixpoint
    (at most ``block_length + 1`` passes, usually far fewer).  Register
    state is carried across blocks, so stimuli of any length work.
"""

from __future__ import annotations

from collections import deque

from .netlist import Netlist

#: Cycles packed per word block in the bit-parallel backend.
WORD_BITS = 64

#: Valid values for ``simulate``'s ``backend`` argument.
BACKENDS = ("bitparallel", "scalar")


def _comb_order(netlist: Netlist) -> list[int]:
    """Indices of non-DFF gates in evaluation order.

    Kahn's algorithm with a FIFO frontier: ready gates are evaluated in
    netlist order, so the evaluation sequence (and any debug trace keyed
    to it) is deterministic and stable across runs.
    """
    driver = {g.output: i for i, g in enumerate(netlist.gates)}
    comb = [i for i, g in enumerate(netlist.gates) if g.kind != "DFF"]
    pending: dict[int, int] = {}
    consumers: dict[int, list[int]] = {}
    for i in comb:
        gate = netlist.gates[i]
        count = 0
        for net in gate.inputs:
            j = driver.get(net)
            if j is not None and netlist.gates[j].kind != "DFF":
                consumers.setdefault(j, []).append(i)
                count += 1
        pending[i] = count
    order: list[int] = []
    frontier = deque(i for i in comb if pending[i] == 0)
    while frontier:
        i = frontier.popleft()
        order.append(i)
        for consumer in consumers.get(i, ()):
            pending[consumer] -= 1
            if pending[consumer] == 0:
                frontier.append(consumer)
    if len(order) != len(comb):
        raise ValueError("combinational loop in netlist")
    return order


_EVAL = {
    "NOT": lambda v: not v[0],
    "AND": lambda v: v[0] and v[1],
    "OR": lambda v: v[0] or v[1],
    "XOR": lambda v: v[0] != v[1],
    "MUX": lambda v: v[1] if v[0] else v[2],
}


def simulate(
    netlist: Netlist,
    stimulus: list[dict[int, bool]],
    backend: str = "bitparallel",
) -> list[dict[str, bool]]:
    """Run the netlist for ``len(stimulus)`` clock cycles.

    Each stimulus entry maps primary-input *net ids* to values; missing
    inputs default to 0.  Returns per-cycle primary-output values keyed by
    port name (sampled after combinational settling, before the clock
    edge).  ``backend`` selects the word-parallel production path
    (default) or the scalar reference path; both produce bit-identical
    results.
    """
    if backend == "bitparallel":
        return BitParallelSimulator(netlist).run(stimulus)
    if backend == "scalar":
        return _simulate_scalar(netlist, stimulus)
    raise ValueError(
        f"unknown simulation backend {backend!r}; expected one of {BACKENDS}"
    )


def _simulate_scalar(
    netlist: Netlist,
    stimulus: list[dict[int, bool]],
) -> list[dict[str, bool]]:
    order = _comb_order(netlist)
    state = {g.output: False for g in netlist.gates if g.kind == "DFF"}
    results: list[dict[str, bool]] = []

    for cycle_inputs in stimulus:
        values: dict[int, bool] = {netlist.const0: False, netlist.const1: True}
        for _, net in netlist.primary_inputs:
            values[net] = bool(cycle_inputs.get(net, False))
        values.update(state)
        for i in order:
            gate = netlist.gates[i]
            values[gate.output] = _EVAL[gate.kind](
                [values[n] for n in gate.inputs]
            )
        results.append(
            {name: values[net] for name, net in netlist.primary_outputs}
        )
        state = {
            g.output: values[g.inputs[0]]
            for g in netlist.gates
            if g.kind == "DFF"
        }
    return results


# ---------------------------------------------------------------------------
# Bit-parallel backend
# ---------------------------------------------------------------------------

# Opcode layout for the compiled gate program: (code, out, a, b, c).
_OP_NOT, _OP_AND, _OP_OR, _OP_XOR, _OP_MUX, _OP_DFF = range(6)
_OP_CODE = {"NOT": _OP_NOT, "AND": _OP_AND, "OR": _OP_OR,
            "XOR": _OP_XOR, "MUX": _OP_MUX, "DFF": _OP_DFF}


def _tarjan_sccs(deps: list[list[int]]) -> list[list[int]]:
    """Strongly connected components, emitted dependencies-first.

    Iterative Tarjan over the gate dependency graph (``deps[i]`` lists the
    gates whose outputs gate ``i`` reads).  Tarjan emits a component only
    after every component it depends on, which is exactly the evaluation
    order the block loop needs.
    """
    n = len(deps)
    index = [-1] * n
    low = [0] * n
    on_stack = [False] * n
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = 0
    for root in range(n):
        if index[root] != -1:
            continue
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        work = [(root, iter(deps[root]))]
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if index[w] == -1:
                    index[w] = low[w] = counter
                    counter += 1
                    stack.append(w)
                    on_stack[w] = True
                    work.append((w, iter(deps[w])))
                    advanced = True
                    break
                if on_stack[w] and index[w] < low[v]:
                    low[v] = index[w]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if low[v] < low[parent]:
                    low[parent] = low[v]
            if low[v] == index[v]:
                component = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component.append(w)
                    if w == v:
                        break
                sccs.append(component)
    return sccs


class _PackedRunner:
    """Word-level execution over a compiled plan.

    Subclasses populate ``_plan`` (the ``("direct", ops)`` /
    ``("loop", ops, dff_ops)`` block list), ``_num_nets``, ``_const1``,
    ``_pi_nets``, ``_dff_nets``, ``_dff_pairs`` and ``_outputs`` (the
    ``(name, net)`` primary-output pairs); the block evaluator is shared
    verbatim, so every compiler -- per-netlist or patch-based -- drives
    stimuli through identical word operations.
    """

    _plan: list[tuple]
    _num_nets: int
    _const1: int
    _pi_nets: list[int]
    _dff_nets: list[int]
    _dff_pairs: list[tuple[int, int]]
    _outputs: list[tuple[str, int]]

    @property
    def primary_inputs(self) -> list[tuple[str, int]]:
        return list(self._pi_list)

    @property
    def primary_outputs(self) -> list[tuple[str, int]]:
        return list(self._outputs)

    # ------------------------------------------------------------------
    def run(self, stimulus: list[dict[int, bool]]) -> list[dict[str, bool]]:
        """Drive ``stimulus`` and return per-cycle output dicts."""
        results: list[dict[str, bool]] = []
        outputs = self._outputs
        pi_nets = self._pi_nets
        state = {net: 0 for net in self._dff_nets}
        total = len(stimulus)
        for start in range(0, total, WORD_BITS):
            block = stimulus[start:start + WORD_BITS]
            packed = {}
            for net in pi_nets:
                word = 0
                for t, cycle_inputs in enumerate(block):
                    if cycle_inputs.get(net):
                        word |= 1 << t
                packed[net] = word
            words = self._run_block(packed, len(block), state)
            for t in range(len(block)):
                results.append(
                    {name: bool((words[net] >> t) & 1) for name, net in outputs}
                )
            for out, d in self._dff_pairs:
                state[out] = (words[d] >> (len(block) - 1)) & 1
        return results

    def run_packed(
        self,
        inputs: dict[int, int],
        num_cycles: int,
    ) -> dict[str, int]:
        """Word-level entry point: packed input words in, packed output
        words out (bit ``t`` = cycle ``t``).  Registers start at 0."""
        state = {net: 0 for net in self._dff_nets}
        out_words = {name: 0 for name, _ in self._outputs}
        for start in range(0, num_cycles, WORD_BITS):
            length = min(WORD_BITS, num_cycles - start)
            mask = (1 << length) - 1
            packed = {
                net: (inputs.get(net, 0) >> start) & mask
                for net in self._pi_nets
            }
            words = self._run_block(packed, length, state)
            for name, net in self._outputs:
                out_words[name] |= (words[net] & mask) << start
            for out, d in self._dff_pairs:
                state[out] = (words[d] >> (length - 1)) & 1
        return out_words

    # ------------------------------------------------------------------
    def _run_block(
        self,
        packed_inputs: dict[int, int],
        length: int,
        state: dict[int, int],
    ) -> list[int]:
        mask = (1 << length) - 1
        words = [0] * self._num_nets
        if self._const1 >= 0:
            words[self._const1] = mask
        for net, word in packed_inputs.items():
            words[net] = word & mask

        for step in self._plan:
            if step[0] == "direct":
                self._eval_ops(step[1], words, mask, state)
            else:
                _, loop_ops, dff_ops = step
                previous = None
                # Each pass settles at least one more cycle bit, so the
                # fixpoint arrives within length + 1 passes; the extra
                # pass detects stability.
                for _ in range(length + 2):
                    self._eval_ops(loop_ops, words, mask, state)
                    current = tuple(words[out] for _, out, *_ in dff_ops)
                    if current == previous:
                        break
                    previous = current
                else:  # pragma: no cover - mathematically unreachable
                    raise RuntimeError("feedback fixpoint did not converge")
        return words

    @staticmethod
    def _eval_ops(
        ops: list[tuple],
        words: list[int],
        mask: int,
        state: dict[int, int],
    ) -> None:
        for code, out, a, b, c in ops:
            if code == _OP_AND:
                words[out] = words[a] & words[b]
            elif code == _OP_XOR:
                words[out] = words[a] ^ words[b]
            elif code == _OP_OR:
                words[out] = words[a] | words[b]
            elif code == _OP_NOT:
                words[out] = words[a] ^ mask
            elif code == _OP_MUX:
                sel = words[a]
                words[out] = (sel & words[b]) | ((sel ^ mask) & words[c])
            else:  # DFF: shift the D word up one cycle, insert the state bit
                words[out] = ((words[a] << 1) | state[out]) & mask


class BitParallelSimulator(_PackedRunner):
    """Compiled word-parallel simulator for one netlist.

    Compiling (SCC analysis + opcode program) is a single O(gates) pass;
    reuse the instance when driving the same netlist with many stimuli.
    ``run`` mirrors :func:`simulate`'s contract; ``run_packed`` exposes
    the word-level interface so callers that already hold packed
    stimulus words (e.g. batched cone evaluation, which shares one
    packed stimulus across many candidate netlists) skip the per-cycle
    dict layer entirely.
    """

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        gates = netlist.gates
        num_gates = len(gates)
        driver = {g.output: i for i, g in enumerate(gates)}
        sources = {netlist.const0, netlist.const1}
        sources.update(net for _, net in netlist.primary_inputs)

        deps: list[list[int]] = []
        ops: list[tuple] = []
        driver_get = driver.get
        for gate in gates:
            gate_deps = []
            for net in gate.inputs:
                j = driver_get(net)
                if j is not None:
                    gate_deps.append(j)
                elif net not in sources:
                    raise KeyError(net)
            deps.append(gate_deps)
            ins = gate.inputs
            arity = len(ins)
            ops.append((
                _OP_CODE[gate.kind],
                gate.output,
                ins[0],
                ins[1] if arity > 1 else 0,
                ins[2] if arity > 2 else 0,
            ))
        for _, net in netlist.primary_outputs:
            if net not in driver and net not in sources:
                raise KeyError(net)

        # Plan: a flat opcode program for the acyclic part, interleaved
        # with fixpoint programs for the sequential-feedback SCCs.
        # ("direct", ops) evaluates once per block; ("loop", ops, dffs)
        # iterates word-wise until the DFF output words stabilize.
        #
        # A cheap Kahn pass peels the acyclic prefix first (usually the
        # vast majority of gates, and the whole netlist for feedforward
        # pipelines); the quadratic-constant Tarjan pass only sees the
        # leftover feedback region.
        self._plan: list[tuple] = []
        pending = [len(d) for d in deps]
        consumers: list[list[int]] = [[] for _ in range(num_gates)]
        for i, gate_deps in enumerate(deps):
            for j in gate_deps:
                consumers[j].append(i)
        placed = [False] * num_gates
        frontier = deque(i for i in range(num_gates) if pending[i] == 0)
        direct: list[tuple] = []
        while frontier:
            i = frontier.popleft()
            placed[i] = True
            direct.append(ops[i])
            for consumer in consumers[i]:
                pending[consumer] -= 1
                if pending[consumer] == 0:
                    frontier.append(consumer)
        leftover = [i for i in range(num_gates) if not placed[i]]
        local_index = {i: k for k, i in enumerate(leftover)}
        local_deps = [
            [local_index[j] for j in deps[i] if not placed[j]]
            for i in leftover
        ]

        for local_component in _tarjan_sccs(local_deps):
            component = [leftover[k] for k in local_component]
            if len(component) == 1:
                i = component[0]
                if i not in deps[i]:
                    direct.append(ops[i])  # downstream of a feedback SCC
                    continue
                if gates[i].kind != "DFF":
                    raise ValueError("combinational loop in netlist")
                # A self-looped DFF is its own one-gate feedback SCC.
            members = set(component)
            comb = [i for i in component if gates[i].kind != "DFF"]
            dffs = [i for i in component if gates[i].kind == "DFF"]
            if not dffs:
                raise ValueError("combinational loop in netlist")
            # Order the SCC's combinational members topologically with
            # DFF outputs as sources; leftovers mean a comb-only cycle.
            comb_pending = {
                i: sum(
                    1 for j in deps[i]
                    if j in members and gates[j].kind != "DFF"
                )
                for i in comb
            }
            comb_consumers: dict[int, list[int]] = {}
            for i in comb:
                for j in deps[i]:
                    if j in members and gates[j].kind != "DFF":
                        comb_consumers.setdefault(j, []).append(i)
            comb_frontier = deque(i for i in comb if comb_pending[i] == 0)
            loop_ops = [ops[i] for i in dffs]
            ordered = 0
            while comb_frontier:
                i = comb_frontier.popleft()
                loop_ops.append(ops[i])
                ordered += 1
                for consumer in comb_consumers.get(i, ()):
                    comb_pending[consumer] -= 1
                    if comb_pending[consumer] == 0:
                        comb_frontier.append(consumer)
            if ordered != len(comb):
                raise ValueError("combinational loop in netlist")
            if direct:
                self._plan.append(("direct", direct))
                direct = []
            self._plan.append(("loop", loop_ops, [ops[i] for i in dffs]))
        if direct:
            self._plan.append(("direct", direct))

        self._num_nets = netlist.num_nets
        self._const1 = netlist.const1
        self._pi_list = list(netlist.primary_inputs)
        self._pi_nets = [net for _, net in netlist.primary_inputs]
        self._outputs = list(netlist.primary_outputs)
        self._dff_nets = [g.output for g in gates if g.kind == "DFF"]
        self._dff_pairs = [
            (g.output, g.inputs[0]) for g in gates if g.kind == "DFF"
        ]


class PatchableSimulator(_PackedRunner):
    """Packed simulator whose compiled plan is *patched* per candidate.

    :class:`BitParallelSimulator` compiles at gate granularity: every
    candidate netlist pays a fresh dependency build, Kahn peel and
    Tarjan pass over hundreds of gates (plus the ``materialize()`` that
    assembles the netlist in the first place).  This class compiles from
    a :class:`repro.incr.delta.DeltaNetlist` instead: per-node opcode
    rows are lowered once per artifact and cached on it (artifacts are
    immutable and structurally shared along a delta lineage, so only the
    dirty cone's rows are ever re-lowered), and ``patch(delta)`` only
    re-links the node-level plan -- topo order and feedback SCC blocks
    over tens of *nodes*, not hundreds of gates -- reusing the net
    anchors the delta preserved.  No intermediate ``Netlist`` is built.

    The node-level plan is coarser than the gate-level one (a feedback
    SCC contains whole nodes), but every block is still evaluated in a
    topologically valid order and loop blocks iterate word-wise to the
    same unique fixpoint, so outputs are bit-exact with a freshly
    compiled :class:`BitParallelSimulator` of ``delta.materialize()``
    (gated by the differential fuzz in ``tests/test_simulate_equivalence``).
    """

    def __init__(self, delta=None):
        self._schema_nodes: list | None = None
        if delta is not None:
            self.patch(delta)

    # ------------------------------------------------------------------
    def _ensure_schema(self, graph) -> None:
        """Node classification; cached while the node storage is shared
        (delta lineages and graph views reuse one node list)."""
        nodes = graph._nodes
        if self._schema_nodes is nodes:
            return
        from ..ir import NodeType, is_sequential

        ins: list[int] = []
        outs: list[int] = []
        regs: list[int] = []
        eval_nodes: list[int] = []
        reg_flags: list[bool] = []
        for node in nodes:
            t = node.type
            if t is NodeType.IN:
                ins.append(node.id)
            elif t is NodeType.OUT:
                outs.append(node.id)
            elif t is NodeType.CONST:
                pass
            else:
                sequential = is_sequential(t)
                if sequential:
                    regs.append(node.id)
                eval_nodes.append(node.id)
                reg_flags.append(sequential)
        self._ins = ins
        self._outs = outs
        self._regs = regs
        self._eval_nodes = eval_nodes
        self._reg_flags = reg_flags
        self._local_index = {v: k for k, v in enumerate(eval_nodes)}
        self._schema_nodes = nodes

    @staticmethod
    def _artifact_ops(artifact) -> list[tuple]:
        """The artifact's gates as opcode rows (cached on the artifact:
        shared artifacts along a lineage are lowered exactly once)."""
        ops = artifact.__dict__.get("_packed_ops")
        if ops is None:
            ops = []
            for gate in artifact.gates:
                ins = gate.inputs
                arity = len(ins)
                ops.append((
                    _OP_CODE[gate.kind],
                    gate.output,
                    ins[0],
                    ins[1] if arity > 1 else 0,
                    ins[2] if arity > 2 else 0,
                ))
            object.__setattr__(artifact, "_packed_ops", ops)
        return ops

    # ------------------------------------------------------------------
    def patch(self, delta) -> "PatchableSimulator":
        """Re-link the plan for ``delta`` and return ``self``.

        O(nodes + node edges) plus one cached-op lookup per node; only
        artifacts the delta actually re-lowered produce new opcode rows.
        """
        graph = delta.graph
        artifacts = delta.artifacts
        self._ensure_schema(graph)
        eval_nodes = self._eval_nodes
        local = self._local_index
        reg_flags = self._reg_flags
        filled = graph.filled_rows()
        artifact_ops = self._artifact_ops

        n = len(eval_nodes)
        deps: list[list[int]] = [
            [local[p] for p in filled[v] if p in local] for v in eval_nodes
        ]
        pending = [len(d) for d in deps]
        consumers: list[list[int]] = [[] for _ in range(n)]
        for k, dep in enumerate(deps):
            for j in dep:
                consumers[j].append(k)
        placed = [False] * n
        frontier = deque(k for k in range(n) if pending[k] == 0)
        plan: list[tuple] = []
        direct: list[tuple] = []
        while frontier:
            k = frontier.popleft()
            placed[k] = True
            direct += artifact_ops(artifacts[eval_nodes[k]])
            for consumer in consumers[k]:
                pending[consumer] -= 1
                if pending[consumer] == 0:
                    frontier.append(consumer)

        leftover = [k for k in range(n) if not placed[k]]
        if leftover:
            local_index = {k: x for x, k in enumerate(leftover)}
            local_deps = [
                [local_index[j] for j in deps[k] if not placed[j]]
                for k in leftover
            ]
            for local_component in _tarjan_sccs(local_deps):
                component = [leftover[x] for x in local_component]
                if len(component) == 1:
                    k = component[0]
                    if k not in deps[k]:
                        # Downstream of a feedback SCC, not in one.
                        direct += artifact_ops(artifacts[eval_nodes[k]])
                        continue
                    if not reg_flags[k]:
                        raise ValueError("combinational loop in netlist")
                members = set(component)
                comb = [k for k in component if not reg_flags[k]]
                dffs = [k for k in component if reg_flags[k]]
                if not dffs:
                    raise ValueError("combinational loop in netlist")
                comb_pending = {
                    k: sum(
                        1 for j in deps[k]
                        if j in members and not reg_flags[j]
                    )
                    for k in comb
                }
                comb_consumers: dict[int, list[int]] = {}
                for k in comb:
                    for j in deps[k]:
                        if j in members and not reg_flags[j]:
                            comb_consumers.setdefault(j, []).append(k)
                comb_frontier = deque(
                    k for k in comb if comb_pending[k] == 0
                )
                dff_ops: list[tuple] = []
                for k in dffs:
                    dff_ops += artifact_ops(artifacts[eval_nodes[k]])
                loop_ops = list(dff_ops)
                ordered = 0
                while comb_frontier:
                    k = comb_frontier.popleft()
                    loop_ops += artifact_ops(artifacts[eval_nodes[k]])
                    ordered += 1
                    for consumer in comb_consumers.get(k, ()):
                        comb_pending[consumer] -= 1
                        if comb_pending[consumer] == 0:
                            comb_frontier.append(consumer)
                if ordered != len(comb):
                    raise ValueError("combinational loop in netlist")
                if direct:
                    plan.append(("direct", direct))
                    direct = []
                plan.append(("loop", loop_ops, dff_ops))
        if direct:
            plan.append(("direct", direct))

        self._plan = plan
        self._num_nets = delta.num_nets
        self._const1 = delta.const1
        pi_list: list[tuple[str, int]] = []
        for v in self._ins:
            pi_list.extend(artifacts[v].pis)
        outputs: list[tuple[str, int]] = []
        for v in self._outs:
            outputs.extend(artifacts[v].pos)
        self._pi_list = pi_list
        self._pi_nets = [net for _, net in pi_list]
        self._outputs = outputs
        dff_pairs: list[tuple[int, int]] = []
        for r in self._regs:
            for gate in artifacts[r].gates:
                dff_pairs.append((gate.output, gate.inputs[0]))
        self._dff_pairs = dff_pairs
        self._dff_nets = [out for out, _ in dff_pairs]
        return self


def packed_stimulus_word(seed: int, key: str, num_cycles: int, salt: int = 0) -> int:
    """Deterministic random packed input word (bit ``t`` = cycle ``t``).

    One recipe shared by every consumer that drives many netlists with
    one stimulus (batched cone evaluation, the incremental candidate
    queue): the word depends only on ``(seed, key, salt)``, never on
    which candidate is being simulated.
    """
    import zlib

    import numpy as np

    sequence = np.random.SeedSequence([seed, zlib.crc32(key.encode()), salt])
    bits = np.random.default_rng(sequence).integers(
        0, 2, size=num_cycles, dtype=np.uint8
    )
    return int.from_bytes(np.packbits(bits, bitorder="little"), "little")


def pack_word(values: dict[str, bool], prefix: str) -> int:
    """Assemble an integer from output bits named ``{prefix}[b]``."""
    word = 0
    for name, bit in values.items():
        if name.startswith(prefix + "["):
            index = int(name[len(prefix) + 1:-1])
            if bit:
                word |= 1 << index
    return word


def drive_word(netlist: Netlist, prefix: str, value: int) -> dict[int, bool]:
    """Stimulus fragment setting input bits named ``{prefix}[b]``."""
    out: dict[int, bool] = {}
    for name, net in netlist.primary_inputs:
        if name.startswith(prefix + "["):
            index = int(name[len(prefix) + 1:-1])
            out[net] = bool((value >> index) & 1)
    return out
