"""Cycle-accurate netlist simulation (verification substrate).

Used by the test suite to check two invariants the synthesis flow must
uphold: (1) elaboration implements the RTL operator semantics, and
(2) optimization preserves observable behaviour at the primary outputs.
Registers start at 0, matching the constant-register sweep assumption in
:mod:`repro.synth.passes`.
"""

from __future__ import annotations

from .netlist import Netlist


def _comb_order(netlist: Netlist) -> list[int]:
    """Indices of non-DFF gates in evaluation order."""
    driver = {g.output: i for i, g in enumerate(netlist.gates)}
    comb = [i for i, g in enumerate(netlist.gates) if g.kind != "DFF"]
    pending: dict[int, int] = {}
    consumers: dict[int, list[int]] = {}
    for i in comb:
        gate = netlist.gates[i]
        count = 0
        for net in gate.inputs:
            j = driver.get(net)
            if j is not None and netlist.gates[j].kind != "DFF":
                consumers.setdefault(j, []).append(i)
                count += 1
        pending[i] = count
    order: list[int] = []
    frontier = [i for i in comb if pending[i] == 0]
    while frontier:
        i = frontier.pop()
        order.append(i)
        for consumer in consumers.get(i, ()):
            pending[consumer] -= 1
            if pending[consumer] == 0:
                frontier.append(consumer)
    if len(order) != len(comb):
        raise ValueError("combinational loop in netlist")
    return order


_EVAL = {
    "NOT": lambda v: not v[0],
    "AND": lambda v: v[0] and v[1],
    "OR": lambda v: v[0] or v[1],
    "XOR": lambda v: v[0] != v[1],
    "MUX": lambda v: v[1] if v[0] else v[2],
}


def simulate(
    netlist: Netlist,
    stimulus: list[dict[int, bool]],
) -> list[dict[str, bool]]:
    """Run the netlist for ``len(stimulus)`` clock cycles.

    Each stimulus entry maps primary-input *net ids* to values; missing
    inputs default to 0.  Returns per-cycle primary-output values keyed by
    port name (sampled after combinational settling, before the clock
    edge).
    """
    order = _comb_order(netlist)
    state = {g.output: False for g in netlist.gates if g.kind == "DFF"}
    results: list[dict[str, bool]] = []

    for cycle_inputs in stimulus:
        values: dict[int, bool] = {netlist.const0: False, netlist.const1: True}
        for _, net in netlist.primary_inputs:
            values[net] = bool(cycle_inputs.get(net, False))
        values.update(state)
        for i in order:
            gate = netlist.gates[i]
            values[gate.output] = _EVAL[gate.kind](
                [values[n] for n in gate.inputs]
            )
        results.append(
            {name: values[net] for name, net in netlist.primary_outputs}
        )
        state = {
            g.output: values[g.inputs[0]]
            for g in netlist.gates
            if g.kind == "DFF"
        }
    return results


def pack_word(values: dict[str, bool], prefix: str) -> int:
    """Assemble an integer from output bits named ``{prefix}[b]``."""
    word = 0
    for name, bit in values.items():
        if name.startswith(prefix + "["):
            index = int(name[len(prefix) + 1:-1])
            if bit:
                word |= 1 << index
    return word


def drive_word(netlist: Netlist, prefix: str, value: int) -> dict[int, bool]:
    """Stimulus fragment setting input bits named ``{prefix}[b]``."""
    out: dict[int, bool] = {}
    for name, net in netlist.primary_inputs:
        if name.startswith(prefix + "["):
            index = int(name[len(prefix) + 1:-1])
            out[net] = bool((value >> index) & 1)
    return out
