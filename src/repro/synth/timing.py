"""Static timing analysis over a mapped netlist.

Arrival times propagate from timing sources (primary inputs at t=0,
register outputs at clk-to-q) through the combinational gates in
topological order.  Endpoints are register D pins (required time =
period - setup) and primary outputs (required time = period).

Reported quantities follow the paper's label set: per-endpoint slack,
per-RTL-register slack (minimum over the register's surviving bits),
worst negative slack (WNS), total negative slack (TNS) and the number of
violated paths (NVP) used for the TNS/NVP statistic of Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .library import DEFAULT_LIBRARY, CellLibrary
from .netlist import Netlist


@dataclass
class TimingReport:
    clock_period: float
    wns: float
    tns: float
    nvp: int
    endpoint_slacks: list[float] = field(default_factory=list)
    #: RTL register node id -> worst slack over its surviving bits.
    register_slacks: dict[int, float] = field(default_factory=dict)
    critical_delay: float = 0.0

    @property
    def tns_per_violation(self) -> float:
        """TNS / NVP, the per-violated-path severity metric of Fig. 5."""
        return self.tns / self.nvp if self.nvp else 0.0


def analyze_timing(
    netlist: Netlist,
    clock_period: float,
    library: CellLibrary = DEFAULT_LIBRARY,
    strength: int = 1,
) -> TimingReport:
    """Compute arrival times and endpoint slacks."""
    driver = netlist.driver_map()
    dff_cell = library.cell("DFF", strength)

    arrival: dict[int, float] = {netlist.const0: 0.0, netlist.const1: 0.0}
    for _, net in netlist.primary_inputs:
        arrival[net] = 0.0
    comb_gates = []
    for gate in netlist.gates:
        if gate.kind == "DFF":
            arrival[gate.output] = dff_cell.clk_to_q
        else:
            comb_gates.append(gate)

    # Kahn levelization of the combinational gates.
    consumers: dict[int, list[int]] = {}
    pending: dict[int, int] = {}
    for idx, gate in enumerate(comb_gates):
        count = 0
        for net in gate.inputs:
            src = driver.get(net)
            if src is not None and src.kind != "DFF":
                consumers.setdefault(net, []).append(idx)
                count += 1
        pending[idx] = count
    frontier = [idx for idx, count in pending.items() if count == 0]
    processed = 0
    while frontier:
        idx = frontier.pop()
        gate = comb_gates[idx]
        processed += 1
        delay = library.cell(gate.kind, strength).delay
        arrival[gate.output] = (
            max(arrival[i] for i in gate.inputs) + delay
            if gate.inputs
            else delay
        )
        for consumer in consumers.get(gate.output, ()):
            pending[consumer] -= 1
            if pending[consumer] == 0:
                frontier.append(consumer)
    if processed != len(comb_gates):
        raise ValueError("combinational loop detected during timing analysis")

    endpoint_slacks: list[float] = []
    register_slacks: dict[int, float] = {}
    critical = 0.0
    for gate in netlist.gates:
        if gate.kind != "DFF":
            continue
        at = arrival[gate.inputs[0]]
        critical = max(critical, at)
        slack = clock_period - dff_cell.setup - at
        endpoint_slacks.append(slack)
        origin = netlist.dff_origin.get(gate.output)
        if origin is not None:
            reg_id = origin[0]
            register_slacks[reg_id] = min(
                register_slacks.get(reg_id, float("inf")), slack
            )
    for _, net in netlist.primary_outputs:
        at = arrival.get(net, 0.0)
        critical = max(critical, at)
        endpoint_slacks.append(clock_period - at)

    negative = [s for s in endpoint_slacks if s < 0]
    return TimingReport(
        clock_period=clock_period,
        wns=min(endpoint_slacks) if endpoint_slacks else 0.0,
        tns=sum(negative),
        nvp=len(negative),
        endpoint_slacks=endpoint_slacks,
        register_slacks=register_slacks,
        critical_delay=critical,
    )


def total_area(
    netlist: Netlist,
    library: CellLibrary = DEFAULT_LIBRARY,
    strength: int = 1,
) -> float:
    """Sum of mapped cell areas."""
    return sum(
        library.cell(gate.kind, strength).area for gate in netlist.gates
    )
