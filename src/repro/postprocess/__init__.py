"""Phase 2: probability-guided validity refinement."""

from .refine import RefinementError, refine_to_valid

__all__ = ["RefinementError", "refine_to_valid"]
