"""Phase 2: probability-guided graph post-processing.

``G_ini`` from the diffusion sampler will most likely violate the circuit
constraints C.  Following the paper (Section V), nodes are processed
sequentially; a node whose parent set already satisfies C keeps it,
otherwise candidate parents are tried in descending order of the
diffusion model's edge probability ``P_E^{(t=0)}``, skipping any edge
that would close a combinational loop (a path check in the register-free
subgraph) until the node's exact fan-in arity is reached.

The refiner operates on raw arrays for speed and emits a validated
:class:`~repro.ir.graph.CircuitGraph` at the end.
"""

from __future__ import annotations

import numpy as np

from ..ir import CircuitGraph, NodeType, arity_of, is_sequential, type_from_index


class RefinementError(RuntimeError):
    """Raised when no constraint-satisfying parent assignment exists."""


def refine_to_valid(
    types: np.ndarray,
    widths: np.ndarray,
    adjacency: np.ndarray,
    edge_probability: np.ndarray,
    name: str = "synthetic",
    rng: np.random.Generator | None = None,
    degree_guidance: float = 0.25,
) -> CircuitGraph:
    """Produce a valid circuit graph ``G_val`` from Phase 1 outputs.

    ``degree_guidance`` implements the paper's out-degree guidance: when
    ranking fallback candidates, drivers that do not yet fan out anywhere
    get a multiplicative score bonus ``(1 + degree_guidance)``.  This
    spreads fanout across the design (registers actually drive logic,
    outputs observe non-constant cones) and pushes the generated
    out-degree distribution towards the scale-free shape of real RTL.
    """
    rng = rng or np.random.default_rng(0)
    node_types = [type_from_index(int(t)) for t in types]
    n = len(node_types)
    if adjacency.shape != (n, n) or edge_probability.shape != (n, n):
        raise ValueError("adjacency/probability shape mismatch with attributes")

    seq = np.array([is_sequential(t) for t in node_types])
    can_drive = np.array([t is not NodeType.OUT for t in node_types])
    arity = np.array([arity_of(t) for t in node_types])

    children: list[set[int]] = [set() for _ in range(n)]
    parents: list[list[int]] = [[] for _ in range(n)]

    def creates_comb_loop(parent: int, child: int) -> bool:
        """Would parent->child close a register-free cycle (paper's check)?"""
        if seq[parent] or seq[child]:
            return False
        if parent == child:
            return True
        frontier = [child]
        seen = {child}
        while frontier:
            v = frontier.pop()
            for w in children[v]:
                if seq[w] or w in seen:
                    continue
                if w == parent:
                    return True
                seen.add(w)
                frontier.append(w)
        return False

    out_degree = np.zeros(n, dtype=np.int64)
    order = np.arange(n)
    for i in order:
        need = int(arity[i])
        if need == 0:
            continue
        proposed = np.flatnonzero(adjacency[:, i])
        # Rank proposed parents by probability, then remaining candidates.
        proposed = proposed[np.argsort(-edge_probability[proposed, i])]
        chosen: list[int] = []
        for j in proposed:
            if len(chosen) == need:
                break
            if not can_drive[j] or creates_comb_loop(int(j), int(i)):
                continue
            chosen.append(int(j))
            children[j].add(int(i))
            out_degree[j] += 1
        if len(chosen) < need:
            score = edge_probability[:, i] * (
                1.0 + degree_guidance * (out_degree == 0)
            )
            ranked = np.argsort(-score)
            for j in ranked:
                if len(chosen) == need:
                    break
                j = int(j)
                if j in chosen or not can_drive[j]:
                    continue
                if creates_comb_loop(j, i):
                    continue
                chosen.append(j)
                children[j].add(i)
                out_degree[j] += 1
        if len(chosen) < need:
            raise RefinementError(
                f"node {i} ({node_types[i]}) cannot reach arity {need}: "
                "every remaining candidate would create a combinational loop"
            )
        parents[i] = chosen

    return _build_graph(node_types, widths, parents, name, rng)


def _build_graph(
    node_types: list[NodeType],
    widths: np.ndarray,
    parents: list[list[int]],
    name: str,
    rng: np.random.Generator,
) -> CircuitGraph:
    """Materialise the refined edge lists as a CircuitGraph.

    Type-specific params that the attribute vector X does not carry
    (constant values, slice offsets) are synthesised deterministically
    from the rng so the HDL emission is well defined.
    """
    g = CircuitGraph(name)
    for i, (t, w) in enumerate(zip(node_types, widths)):
        params: dict = {}
        if t is NodeType.CONST:
            params["value"] = int(rng.integers(0, 1 << min(int(w), 30)))
        elif t is NodeType.SLICE:
            params["lo"] = 0
        g.add_node(t, int(w), params=params)
    for child, plist in enumerate(parents):
        for slot, parent in enumerate(plist):
            g.set_parent(child, slot, parent)
    from ..ir import assert_valid

    assert_valid(g)
    return g
