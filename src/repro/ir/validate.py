"""Deprecated shim: constraint checking moved to :mod:`repro.lint`.

The implementation lives in :mod:`repro.lint.constraints` (and is also
exposed as lint rules ``L001``-``L003``).  Every public name is still
re-exported from the :mod:`repro.ir` package without a warning; only
attribute access through *this* module emits a ``DeprecationWarning``.
New code should write::

    from repro.ir import validate, assert_valid
    # or, for the rule framework:
    from repro.lint import lint_graph
"""

from __future__ import annotations

import sys
import types
import typing
import warnings

_MOVED = (
    "ValidationReport",
    "arity_violations",
    "assert_valid",
    "dangling_outputs",
    "find_combinational_cycles",
    "has_combinational_loop",
    "validate",
    "would_create_combinational_loop",
)

__all__ = list(_MOVED)


def __getattr__(name: str) -> object:
    if name in _MOVED:
        warnings.warn(
            f"repro.ir.validate.{name} is deprecated; import it from "
            "repro.ir or repro.lint instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..lint import constraints

        return getattr(constraints, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)


class _CallableShim(types.ModuleType):
    """Importing this submodule binds it over the package's ``validate``
    *function* re-export (``import repro.ir.validate`` shadows the lazy
    ``repro.ir.__getattr__``).  Making the module itself callable keeps
    ``from repro.ir import validate; validate(graph)`` working -- and
    warning-free, since that spelling is the blessed one -- no matter
    which binding won."""

    def __call__(self, *args: typing.Any, **kwargs: typing.Any) -> typing.Any:
        from ..lint.constraints import validate

        return validate(*args, **kwargs)


sys.modules[__name__].__class__ = _CallableShim
