"""Circuit intermediate representation: typed directed cyclic graphs."""

from .builder import GraphBuilder
from .graph import CircuitGraph, GraphView, Node, from_adjacency
from .node_types import (
    ARITY,
    NUM_TYPES,
    NodeType,
    arity_of,
    is_sequential,
    type_from_index,
    type_index,
)

#: Constraint-checking names re-exported from their canonical home,
#: :mod:`repro.lint.constraints`.  Served lazily (PEP 562): the lint
#: package imports ``repro.ir.graph`` at init, so an eager import here
#: would be a cycle.  ``from repro.ir import validate`` etc. still work.
_CONSTRAINT_NAMES = (
    "ValidationReport",
    "arity_violations",
    "assert_valid",
    "find_combinational_cycles",
    "has_combinational_loop",
    "validate",
    "would_create_combinational_loop",
)

__all__ = [
    "ARITY",
    "NUM_TYPES",
    "CircuitGraph",
    "GraphBuilder",
    "GraphView",
    "Node",
    "NodeType",
    "ValidationReport",
    "arity_of",
    "arity_violations",
    "assert_valid",
    "find_combinational_cycles",
    "from_adjacency",
    "has_combinational_loop",
    "is_sequential",
    "type_from_index",
    "type_index",
    "validate",
    "would_create_combinational_loop",
]


def __getattr__(name: str) -> object:
    if name in _CONSTRAINT_NAMES:
        from ..lint import constraints

        value = getattr(constraints, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
