"""Circuit intermediate representation: typed directed cyclic graphs."""

from .builder import GraphBuilder
from .graph import CircuitGraph, GraphView, Node, from_adjacency
from .node_types import (
    ARITY,
    NUM_TYPES,
    NodeType,
    arity_of,
    is_sequential,
    type_from_index,
    type_index,
)
from .validate import (
    ValidationReport,
    arity_violations,
    assert_valid,
    find_combinational_cycles,
    has_combinational_loop,
    validate,
    would_create_combinational_loop,
)

__all__ = [
    "ARITY",
    "NUM_TYPES",
    "CircuitGraph",
    "GraphBuilder",
    "GraphView",
    "Node",
    "NodeType",
    "ValidationReport",
    "arity_of",
    "arity_violations",
    "assert_valid",
    "find_combinational_cycles",
    "from_adjacency",
    "has_combinational_loop",
    "is_sequential",
    "type_from_index",
    "type_index",
    "validate",
    "would_create_combinational_loop",
]
