"""Node type system for the circuit intermediate representation.

The paper represents HDL code as a directed cyclic graph whose nodes carry a
*type* and a *width* attribute.  The node type uniquely determines the number
of parent nodes (the fan-in arity) -- this is the first circuit constraint in
the paper's constraint set ``C``.  For example a ``MUX`` requires three
parents (select, then the two data inputs) while an ``ADD`` requires two.
"""

from __future__ import annotations

import enum


class NodeType(enum.Enum):
    """Word-level RTL operator types.

    The paper's categories are: IO port, arithmetic operator, register,
    bit selection and concatenate operator.  We enumerate the concrete
    operators inside the "arithmetic" category so that elaboration into a
    gate-level netlist is well defined.
    """

    # IO and leaves (no parents).
    IN = "in"
    CONST = "const"
    # Sinks and state.
    OUT = "out"
    REG = "reg"
    # Unary operators.
    NOT = "not"
    SLICE = "slice"
    REDUCE_OR = "reduce_or"
    # Binary operators.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    AND = "and"
    OR = "or"
    XOR = "xor"
    EQ = "eq"
    LT = "lt"
    SHL = "shl"
    SHR = "shr"
    CONCAT = "concat"
    # Ternary operator.
    MUX = "mux"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Fan-in arity per node type.  This table *is* the arity constraint in C.
ARITY: dict[NodeType, int] = {
    NodeType.IN: 0,
    NodeType.CONST: 0,
    NodeType.OUT: 1,
    NodeType.REG: 1,
    NodeType.NOT: 1,
    NodeType.SLICE: 1,
    NodeType.REDUCE_OR: 1,
    NodeType.ADD: 2,
    NodeType.SUB: 2,
    NodeType.MUL: 2,
    NodeType.AND: 2,
    NodeType.OR: 2,
    NodeType.XOR: 2,
    NodeType.EQ: 2,
    NodeType.LT: 2,
    NodeType.SHL: 2,
    NodeType.SHR: 2,
    NodeType.CONCAT: 2,
    NodeType.MUX: 3,
}

#: Node types that act as sequential elements.  Combinational loops are
#: defined as cycles containing none of these.
SEQUENTIAL_TYPES = frozenset({NodeType.REG})

#: Node types that may not have children (graph sinks).
SINK_TYPES = frozenset({NodeType.OUT})

#: Node types with no parents (graph sources).
SOURCE_TYPES = frozenset({NodeType.IN, NodeType.CONST})

#: Operators whose result is always a single bit regardless of input width.
SINGLE_BIT_TYPES = frozenset({NodeType.EQ, NodeType.LT, NodeType.REDUCE_OR})

#: All types that can be freely sampled when synthesising node attribute
#: vectors for new circuits (everything except IO, which is user specified).
OPERATOR_TYPES = tuple(
    t for t in NodeType if t not in (NodeType.IN, NodeType.OUT)
)


def arity_of(node_type: NodeType) -> int:
    """Return the number of parents required by ``node_type``."""
    return ARITY[node_type]


def is_sequential(node_type: NodeType) -> bool:
    """True if the node type is a state element (breaks timing paths)."""
    return node_type in SEQUENTIAL_TYPES


def type_index(node_type: NodeType) -> int:
    """Stable integer index of a node type, for one-hot feature encodings."""
    return _TYPE_ORDER[node_type]


def type_from_index(index: int) -> NodeType:
    """Inverse of :func:`type_index`."""
    return _TYPES_BY_INDEX[index]


_TYPES_BY_INDEX = tuple(NodeType)
_TYPE_ORDER = {t: i for i, t in enumerate(_TYPES_BY_INDEX)}

#: Number of distinct node types (one-hot feature dimension).
NUM_TYPES = len(_TYPES_BY_INDEX)
