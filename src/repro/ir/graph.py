"""Directed cyclic graph representation of an RTL circuit.

A :class:`CircuitGraph` is the ``G = (V, E, X)`` object of the paper: nodes
carry a type and a width attribute, edges are directed from a parent (driver)
to a child (consumer).  Because HDL semantics distinguish operand order
(``a - b`` is not ``b - a`` and a mux select is not a data input), parents are
stored in *ordered slots*; the unordered edge set used by the generative
models is derived from the slots.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from .node_types import ARITY, NodeType, arity_of, is_sequential


@dataclass
class Node:
    """One word-level RTL node.

    ``params`` holds type-specific extras, e.g. ``{"value": 3}`` for a
    constant or ``{"lo": 2}`` for a bit-selection's low index.
    """

    id: int
    type: NodeType
    width: int
    params: dict = field(default_factory=dict)
    name: str | None = None

    def copy(self) -> "Node":
        return Node(self.id, self.type, self.width, dict(self.params), self.name)


class CircuitGraph:
    """Mutable directed cyclic graph with typed, width-annotated nodes."""

    def __init__(self, name: str = "design"):
        self.name = name
        self._nodes: list[Node] = []
        self._parents: list[list[int | None]] = []
        self._edge_cache: list[tuple[int, int]] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node_type: NodeType,
        width: int,
        params: dict | None = None,
        name: str | None = None,
    ) -> int:
        """Append a node and return its id.  Parent slots start empty."""
        if width < 1:
            raise ValueError(f"node width must be >= 1, got {width}")
        node_id = len(self._nodes)
        self._nodes.append(Node(node_id, node_type, width, params or {}, name))
        self._parents.append([None] * arity_of(node_type))
        return node_id

    def set_parent(self, child: int, slot: int, parent: int) -> None:
        """Connect ``parent -> child`` into the given ordered slot."""
        self._check_id(child)
        self._check_id(parent)
        slots = self._parents[child]
        if not 0 <= slot < len(slots):
            raise IndexError(
                f"node {child} ({self._nodes[child].type}) has "
                f"{len(slots)} parent slots, slot {slot} is out of range"
            )
        slots[slot] = parent
        self._edge_cache = None
        self.__dict__.pop("_structural_fp", None)

    def set_parents(self, child: int, parents: Iterable[int]) -> None:
        """Fill all parent slots of ``child`` at once."""
        parents = list(parents)
        expected = arity_of(self._nodes[child].type)
        if len(parents) != expected:
            raise ValueError(
                f"node {child} ({self._nodes[child].type}) needs {expected} "
                f"parents, got {len(parents)}"
            )
        for slot, parent in enumerate(parents):
            self.set_parent(child, slot, parent)

    def clear_parents(self, child: int) -> None:
        self._check_id(child)
        self._parents[child] = [None] * arity_of(self._nodes[child].type)
        self._edge_cache = None
        self.__dict__.pop("_structural_fp", None)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return sum(1 for slots in self._parents for p in slots if p is not None)

    def node(self, node_id: int) -> Node:
        self._check_id(node_id)
        return self._nodes[node_id]

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes)

    def parents(self, node_id: int) -> list[int | None]:
        """Ordered parent slots (may contain ``None`` while under construction)."""
        self._check_id(node_id)
        return list(self._parents[node_id])

    def filled_parents(self, node_id: int) -> list[int]:
        """Parents that are actually connected."""
        return [p for p in self._parents[node_id] if p is not None]

    def parent_rows(self) -> tuple[tuple[int | None, ...], ...]:
        """All parent slots as one immutable snapshot.

        One call replaces ``num_nodes`` :meth:`parents` calls on paths
        that key on the whole wiring (structural fingerprints).
        """
        return tuple(tuple(slots) for slots in self._parents)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Yield directed edges ``(parent, child)`` including duplicates
        when the same driver feeds several slots of one node."""
        return iter(self.edge_list())

    def edge_list(self) -> list[tuple[int, int]]:
        """All directed edges as a list, memoized until the next parent
        mutation -- the repeated-enumeration path of swap sampling."""
        cached = self._edge_cache
        if cached is None:
            cached = [
                (parent, child)
                for child, slots in enumerate(self._parents)
                for parent in slots
                if parent is not None
            ]
            self._edge_cache = cached
        return cached

    def children(self, node_id: int) -> list[int]:
        """All nodes that consume ``node_id`` (computed, deduplicated)."""
        self._check_id(node_id)
        out = []
        for child, slots in enumerate(self._parents):
            if any(p == node_id for p in slots):
                out.append(child)
        return out

    def child_map(self) -> list[list[int]]:
        """Fanout lists for every node in one pass (deduplicated per child)."""
        fanout: list[list[int]] = [[] for _ in self._nodes]
        for child, slots in enumerate(self._parents):
            seen = set()
            for parent in slots:
                if parent is not None and parent not in seen:
                    fanout[parent].append(child)
                    seen.add(parent)
        return fanout

    def nodes_of_type(self, node_type: NodeType) -> list[int]:
        return [n.id for n in self._nodes if n.type is node_type]

    def registers(self) -> list[int]:
        return [n.id for n in self._nodes if is_sequential(n.type)]

    def inputs(self) -> list[int]:
        return self.nodes_of_type(NodeType.IN)

    def outputs(self) -> list[int]:
        return self.nodes_of_type(NodeType.OUT)

    def total_register_bits(self) -> int:
        """Sum of widths of all sequential signals (SCPR denominator)."""
        return sum(self._nodes[r].width for r in self.registers())

    def structural_delta(self, other: "CircuitGraph") -> list[int] | None:
        """Node ids whose parent wiring differs between ``self`` and
        ``other``, or ``None`` when the node schemas differ (node count,
        type, width or params) and the graphs are not patch-comparable.

        This is the entry question of incremental re-elaboration
        (:mod:`repro.incr`): edit moves like the MCTS swap only rewire
        parents, so the answer is almost always a short list.
        """
        if len(other._nodes) != len(self._nodes):
            return None
        touched = []
        for v, (a, b) in enumerate(zip(self._nodes, other._nodes)):
            if (a.type is not b.type or a.width != b.width
                    or a.params != b.params or a.name != b.name):
                return None
            if self._parents[v] != other._parents[v]:
                touched.append(v)
        return touched

    # ------------------------------------------------------------------
    # Matrix views
    # ------------------------------------------------------------------
    def adjacency(self) -> np.ndarray:
        """Boolean adjacency matrix ``A[i, j] = 1`` iff edge ``i -> j``."""
        n = len(self._nodes)
        a = np.zeros((n, n), dtype=bool)
        for child, slots in enumerate(self._parents):
            for parent in slots:
                if parent is not None:
                    a[parent, child] = True
        return a

    def type_indices(self) -> np.ndarray:
        from .node_types import type_index

        return np.array([type_index(n.type) for n in self._nodes], dtype=np.int64)

    def widths(self) -> np.ndarray:
        return np.array([n.width for n in self._nodes], dtype=np.int64)

    # ------------------------------------------------------------------
    # Copies and serialisation
    # ------------------------------------------------------------------
    def copy(self) -> "CircuitGraph":
        g = CircuitGraph(self.name)
        g._nodes = [n.copy() for n in self._nodes]
        g._parents = [list(slots) for slots in self._parents]
        return g

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "nodes": [
                {
                    "id": n.id,
                    "type": n.type.value,
                    "width": n.width,
                    "params": n.params,
                    "name": n.name,
                }
                for n in self._nodes
            ],
            "parents": [list(slots) for slots in self._parents],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CircuitGraph":
        g = cls(data.get("name", "design"))
        for spec in data["nodes"]:
            node_id = g.add_node(
                NodeType(spec["type"]),
                spec["width"],
                dict(spec.get("params") or {}),
                spec.get("name"),
            )
            assert node_id == spec["id"], "node ids must be dense and ordered"
        for child, slots in enumerate(data["parents"]):
            for slot, parent in enumerate(slots):
                if parent is not None:
                    g.set_parent(child, slot, parent)
        return g

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "CircuitGraph":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    def _check_id(self, node_id: int) -> None:
        if not 0 <= node_id < len(self._nodes):
            raise IndexError(f"node id {node_id} out of range [0, {len(self._nodes)})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitGraph({self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )


def from_adjacency(
    adjacency: np.ndarray,
    types: Iterable[NodeType],
    widths: Iterable[int],
    name: str = "design",
) -> CircuitGraph:
    """Build a graph from an adjacency matrix and attribute vectors.

    Parent slot order is the ascending parent-id order; this is the
    convention used when a generative model emits an unordered edge set.
    Extra parents beyond the node's arity raise; missing parents leave
    empty slots (the graph may then fail validation).
    """
    types = list(types)
    widths = list(widths)
    n = adjacency.shape[0]
    if adjacency.shape != (n, n):
        raise ValueError("adjacency must be square")
    if len(types) != n or len(widths) != n:
        raise ValueError("types/widths length must match adjacency size")
    g = CircuitGraph(name)
    for t, w in zip(types, widths):
        g.add_node(t, int(w))
    for child in range(n):
        parents = np.flatnonzero(adjacency[:, child])
        slots = ARITY[types[child]]
        if len(parents) > slots:
            raise ValueError(
                f"node {child} ({types[child]}) admits {slots} parents, "
                f"adjacency provides {len(parents)}"
            )
        for slot, parent in enumerate(parents):
            g.set_parent(child, slot, int(parent))
    return g
