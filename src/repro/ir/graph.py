"""Directed cyclic graph representation of an RTL circuit.

A :class:`CircuitGraph` is the ``G = (V, E, X)`` object of the paper: nodes
carry a type and a width attribute, edges are directed from a parent (driver)
to a child (consumer).  Because HDL semantics distinguish operand order
(``a - b`` is not ``b - a`` and a mux select is not a data input), parents are
stored in *ordered slots*; the unordered edge set used by the generative
models is derived from the slots.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from .node_types import ARITY, NodeType, arity_of, is_sequential


@dataclass
class Node:
    """One word-level RTL node.

    ``params`` holds type-specific extras, e.g. ``{"value": 3}`` for a
    constant or ``{"lo": 2}`` for a bit-selection's low index.
    """

    id: int
    type: NodeType
    width: int
    params: dict = field(default_factory=dict)
    name: str | None = None

    def copy(self) -> "Node":
        return Node(self.id, self.type, self.width, dict(self.params), self.name)


#: ``__dict__`` keys of the lazily memoized wiring-derived structures;
#: every parent mutation drops them so no memo can serve a stale view
#: of the wiring (the fingerprint memo of :mod:`repro.mcts.reward` uses
#: the same discipline and is invalidated alongside).
_WIRING_MEMOS = (
    "_structural_fp",
    "_structural_fp_nodes",
    "_parent_rows_memo",
    "_child_map_memo",
    "_filled_rows_memo",
    "_edge_pos_memo",
    "_swap_local",
)


class CircuitGraph:
    """Mutable directed cyclic graph with typed, width-annotated nodes."""

    def __init__(self, name: str = "design"):
        self.name = name
        self._nodes: list[Node] = []
        self._parents: list[list[int | None]] = []
        self._edge_cache: list[tuple[int, int]] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node_type: NodeType,
        width: int,
        params: dict | None = None,
        name: str | None = None,
    ) -> int:
        """Append a node and return its id.  Parent slots start empty."""
        if width < 1:
            raise ValueError(f"node width must be >= 1, got {width}")
        node_id = len(self._nodes)
        self._nodes.append(Node(node_id, node_type, width, params or {}, name))
        self._parents.append([None] * arity_of(node_type))
        self._invalidate_wiring()
        return node_id

    def _invalidate_wiring(self) -> None:
        """Drop every memo derived from the parent wiring."""
        self._edge_cache = None
        pop = self.__dict__.pop
        for key in _WIRING_MEMOS:
            pop(key, None)

    def set_parent(self, child: int, slot: int, parent: int) -> None:
        """Connect ``parent -> child`` into the given ordered slot."""
        self._check_id(child)
        self._check_id(parent)
        slots = self._parents[child]
        if not 0 <= slot < len(slots):
            raise IndexError(
                f"node {child} ({self._nodes[child].type}) has "
                f"{len(slots)} parent slots, slot {slot} is out of range"
            )
        slots[slot] = parent
        self._invalidate_wiring()

    def set_parents(self, child: int, parents: Iterable[int]) -> None:
        """Fill all parent slots of ``child`` at once."""
        parents = list(parents)
        expected = arity_of(self._nodes[child].type)
        if len(parents) != expected:
            raise ValueError(
                f"node {child} ({self._nodes[child].type}) needs {expected} "
                f"parents, got {len(parents)}"
            )
        for slot, parent in enumerate(parents):
            self.set_parent(child, slot, parent)

    def clear_parents(self, child: int) -> None:
        self._check_id(child)
        self._parents[child] = [None] * arity_of(self._nodes[child].type)
        self._invalidate_wiring()

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return sum(1 for slots in self._parents for p in slots if p is not None)

    def node(self, node_id: int) -> Node:
        self._check_id(node_id)
        return self._nodes[node_id]

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes)

    def parents(self, node_id: int) -> list[int | None]:
        """Ordered parent slots (may contain ``None`` while under construction)."""
        self._check_id(node_id)
        return list(self._parents[node_id])

    def filled_parents(self, node_id: int) -> list[int]:
        """Parents that are actually connected."""
        return [p for p in self._parents[node_id] if p is not None]

    def parent_rows(self) -> tuple[tuple[int | None, ...], ...]:
        """All parent slots as one immutable snapshot.

        One call replaces ``num_nodes`` :meth:`parents` calls on paths
        that key on the whole wiring (structural fingerprints).  The
        snapshot is memoized until the next parent mutation.
        """
        memo = self.__dict__.get("_parent_rows_memo")
        if memo is None:
            memo = tuple(tuple(slots) for slots in self._parents)
            self._parent_rows_memo = memo
        return memo

    def filled_rows(self) -> list[list[int]]:
        """Filled parents of every node in one pass.

        Memoized until the next parent mutation; callers must treat the
        returned rows as read-only.  This is the bulk form of
        :meth:`filled_parents` used by per-candidate analyses that read
        the whole wiring.
        """
        memo = self.__dict__.get("_filled_rows_memo")
        if memo is None:
            memo = [
                [p for p in slots if p is not None] for slots in self._parents
            ]
            self._filled_rows_memo = memo
        return memo

    def _row(self, child: int) -> list[int | None]:
        """One raw ordered parent row (read-only; overlay-resolved in
        :class:`GraphView`)."""
        return self._parents[child]

    def _all_rows(self) -> list[list[int | None]]:
        """The raw ordered parent rows (read-only; overlay-resolved in
        :class:`GraphView`)."""
        return self._parents

    def _edge_positions(self) -> dict[tuple[int, int], int]:
        """Map ``(child, slot)`` of each filled slot to its index in
        :meth:`edge_list` (memoized).

        The filled-slot pattern is schema-stable under the swap move
        set, so edge positions stay valid across an entire search and
        overlays can patch their edge lists in place.
        """
        memo = self.__dict__.get("_edge_pos_memo")
        if memo is None:
            memo = {}
            position = 0
            for child, slots in enumerate(self._parents):
                for slot, parent in enumerate(slots):
                    if parent is not None:
                        memo[(child, slot)] = position
                        position += 1
            self._edge_pos_memo = memo
        return memo

    def edges(self) -> Iterator[tuple[int, int]]:
        """Yield directed edges ``(parent, child)`` including duplicates
        when the same driver feeds several slots of one node."""
        return iter(self.edge_list())

    def edge_list(self) -> list[tuple[int, int]]:
        """All directed edges as a list, memoized until the next parent
        mutation -- the repeated-enumeration path of swap sampling."""
        cached = self._edge_cache
        if cached is None:
            cached = [
                (parent, child)
                for child, slots in enumerate(self._parents)
                for parent in slots
                if parent is not None
            ]
            self._edge_cache = cached
        return cached

    def children(self, node_id: int) -> list[int]:
        """All nodes that consume ``node_id`` (computed, deduplicated)."""
        self._check_id(node_id)
        out = []
        for child, slots in enumerate(self._parents):
            if any(p == node_id for p in slots):
                out.append(child)
        return out

    def child_map(self) -> list[list[int]]:
        """Fanout lists for every node in one pass (deduplicated per
        child).  Memoized until the next parent mutation; callers must
        not mutate the returned lists."""
        memo = self.__dict__.get("_child_map_memo")
        if memo is None:
            memo = [[] for _ in self._nodes]
            for child, slots in enumerate(self._parents):
                seen = set()
                for parent in slots:
                    if parent is not None and parent not in seen:
                        memo[parent].append(child)
                        seen.add(parent)
            self._child_map_memo = memo
        return memo

    def nodes_of_type(self, node_type: NodeType) -> list[int]:
        return [n.id for n in self._nodes if n.type is node_type]

    def registers(self) -> list[int]:
        return [n.id for n in self._nodes if is_sequential(n.type)]

    def inputs(self) -> list[int]:
        return self.nodes_of_type(NodeType.IN)

    def outputs(self) -> list[int]:
        return self.nodes_of_type(NodeType.OUT)

    def total_register_bits(self) -> int:
        """Sum of widths of all sequential signals (SCPR denominator)."""
        return sum(self._nodes[r].width for r in self.registers())

    def structural_delta(self, other: "CircuitGraph") -> list[int] | None:
        """Node ids whose parent wiring differs between ``self`` and
        ``other``, or ``None`` when the node schemas differ (node count,
        type, width or params) and the graphs are not patch-comparable.

        This is the entry question of incremental re-elaboration
        (:mod:`repro.incr`): edit moves like the MCTS swap only rewire
        parents, so the answer is almost always a short list.
        """
        if len(other._nodes) != len(self._nodes):
            return None
        mine, theirs = self._all_rows(), other._all_rows()
        touched = []
        for v, (a, b) in enumerate(zip(self._nodes, other._nodes)):
            if a is not b and (
                    a.type is not b.type or a.width != b.width
                    or a.params != b.params or a.name != b.name):
                return None
            if mine[v] != theirs[v]:
                touched.append(v)
        return touched

    # ------------------------------------------------------------------
    # Matrix views
    # ------------------------------------------------------------------
    def adjacency(self) -> np.ndarray:
        """Boolean adjacency matrix ``A[i, j] = 1`` iff edge ``i -> j``."""
        n = len(self._nodes)
        a = np.zeros((n, n), dtype=bool)
        for child, slots in enumerate(self._parents):
            for parent in slots:
                if parent is not None:
                    a[parent, child] = True
        return a

    def type_indices(self) -> np.ndarray:
        from .node_types import type_index

        return np.array([type_index(n.type) for n in self._nodes], dtype=np.int64)

    def widths(self) -> np.ndarray:
        return np.array([n.width for n in self._nodes], dtype=np.int64)

    # ------------------------------------------------------------------
    # Copies and serialisation
    # ------------------------------------------------------------------
    def copy(self) -> "CircuitGraph":
        g = CircuitGraph(self.name)
        g._nodes = [n.copy() for n in self._nodes]
        g._parents = [list(slots) for slots in self._parents]
        return g

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "nodes": [
                {
                    "id": n.id,
                    "type": n.type.value,
                    "width": n.width,
                    "params": n.params,
                    "name": n.name,
                }
                for n in self._nodes
            ],
            "parents": [list(slots) for slots in self._parents],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CircuitGraph":
        g = cls(data.get("name", "design"))
        for spec in data["nodes"]:
            node_id = g.add_node(
                NodeType(spec["type"]),
                spec["width"],
                dict(spec.get("params") or {}),
                spec.get("name"),
            )
            assert node_id == spec["id"], "node ids must be dense and ordered"
        for child, slots in enumerate(data["parents"]):
            for slot, parent in enumerate(slots):
                if parent is not None:
                    g.set_parent(child, slot, parent)
        return g

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "CircuitGraph":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    def _check_id(self, node_id: int) -> None:
        if not 0 <= node_id < len(self._nodes):
            raise IndexError(f"node id {node_id} out of range [0, {len(self._nodes)})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitGraph({self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )


class GraphView(CircuitGraph):
    """Copy-on-write overlay over a base :class:`CircuitGraph`.

    A view shares the base's node list and parent-row storage and
    records only the rows it rewires, so creating a search successor is
    O(overlay) instead of the O(nodes + edges) of :meth:`CircuitGraph.copy`
    -- the allocation that used to dominate the MCTS swap loop.  Views
    over views flatten: every view points at the ultimate plain base and
    carries one small overlay dict, so a deep rollout chain costs no
    more per state than a single edit.

    Contract: while any view of a base is alive, the *base* must not be
    mutated (the usual search discipline -- bases are frozen states).
    Views themselves may be rewired freely through ``set_parent`` /
    ``clear_parents``; node additions require :meth:`materialize` first.
    ``commit()`` folds the overlay back into the base in place (which
    invalidates any sibling views); ``materialize()`` produces an
    independent plain graph.

    Wiring memos (``edge_list`` / ``child_map`` / ``parent_rows`` /
    ``filled_rows`` and the structural fingerprint) are either patched
    incrementally from the predecessor's memo or rebuilt lazily; every
    overlay mutation drops them, so a stale memo can never be observed.
    """

    def __init__(self, base: CircuitGraph):
        self.name = base.name
        self._nodes = base._nodes  # shared; never mutated through a view
        if isinstance(base, GraphView):
            self._base = base._base
            # Each view owns its overlay rows: sharing the row lists
            # would let a successor's rewire mutate its predecessor.
            self._rows: dict[int, list[int | None]] = {
                child: list(row) for child, row in base._rows.items()
            }
        else:
            self._base = base
            self._rows = {}
        # Inherit the predecessor's edge list (cheap pointer copy) so a
        # successor's rewires patch it in place instead of rebuilding.
        cache = base._edge_cache
        self._edge_cache = list(cache) if cache is not None else None
        #: Whether this view's filled-slot pattern may differ from the
        #: base's.  The base's edge-position map is only valid while the
        #: patterns match, so a diverged view must rebuild its edge list
        #: on every rewire instead of patching it in place.
        self._pattern_diverged = (
            base._pattern_diverged if isinstance(base, GraphView) else False
        )

    # -- row access ------------------------------------------------------
    def _row(self, child: int) -> list[int | None]:
        row = self._rows.get(child)
        return self._base._parents[child] if row is None else row

    def _all_rows(self) -> list[list[int | None]]:
        rows = list(self._base._parents)
        for child, row in self._rows.items():
            rows[child] = row
        return rows

    def overlay_nodes(self) -> list[int]:
        """Ids of the rows this view overrides (sorted)."""
        return sorted(self._rows)

    # -- mutation (copy-on-write) ---------------------------------------
    def add_node(self, *args: object, **kwargs: object) -> int:
        raise TypeError(
            "GraphView cannot add nodes; materialize() the view first"
        )

    def set_parent(self, child: int, slot: int, parent: int) -> None:
        self._check_id(child)
        self._check_id(parent)
        row = self._rows.get(child)
        if row is None:
            row = list(self._base._parents[child])
            self._rows[child] = row
        if not 0 <= slot < len(row):
            raise IndexError(
                f"node {child} ({self._nodes[child].type}) has "
                f"{len(row)} parent slots, slot {slot} is out of range"
            )
        replaced = row[slot]
        row[slot] = parent
        if replaced is None:
            # Filling an empty slot changes the filled pattern: the
            # base's edge positions no longer describe this view, now
            # or for any later rewire.
            self._pattern_diverged = True
            self._edge_cache = None
        elif self._pattern_diverged:
            self._edge_cache = None
        else:
            cache = self._edge_cache
            if cache is not None:
                cache[self._base._edge_positions()[(child, slot)]] = (
                    parent, child,
                )
        pop = self.__dict__.pop
        for key in _WIRING_MEMOS:
            pop(key, None)

    def clear_parents(self, child: int) -> None:
        self._check_id(child)
        self._rows[child] = [None] * arity_of(self._nodes[child].type)
        self._pattern_diverged = True
        self._edge_cache = None
        pop = self.__dict__.pop
        for key in _WIRING_MEMOS:
            pop(key, None)

    # -- inspection ------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return sum(
            1 for row in self._all_rows() for p in row if p is not None
        )

    def parents(self, node_id: int) -> list[int | None]:
        self._check_id(node_id)
        return list(self._row(node_id))

    def filled_parents(self, node_id: int) -> list[int]:
        return [p for p in self._row(node_id) if p is not None]

    def parent_rows(self) -> tuple[tuple[int | None, ...], ...]:
        memo = self.__dict__.get("_parent_rows_memo")
        if memo is None:
            rows = list(self._base.parent_rows())
            for child, row in self._rows.items():
                rows[child] = tuple(row)
            memo = tuple(rows)
            self._parent_rows_memo = memo
        return memo

    def filled_rows(self) -> list[list[int]]:
        memo = self.__dict__.get("_filled_rows_memo")
        if memo is None:
            memo = list(self._base.filled_rows())
            for child, row in self._rows.items():
                memo[child] = [p for p in row if p is not None]
            self._filled_rows_memo = memo
        return memo

    def edge_list(self) -> list[tuple[int, int]]:
        cached = self._edge_cache
        if cached is None:
            row = self._row
            cached = [
                (parent, child)
                for child in range(len(self._nodes))
                for parent in row(child)
                if parent is not None
            ]
            self._edge_cache = cached
        return cached

    def children(self, node_id: int) -> list[int]:
        self._check_id(node_id)
        out = []
        for child, row in enumerate(self._all_rows()):
            if any(p == node_id for p in row):
                out.append(child)
        return out

    def child_map(self) -> list[list[int]]:
        memo = self.__dict__.get("_child_map_memo")
        if memo is None:
            base_map = self._base.child_map()
            memo = list(base_map)
            base_rows = self._base._parents
            for child, row in self._rows.items():
                old = {p for p in base_rows[child] if p is not None}
                new = {p for p in row if p is not None}
                for parent in old - new:
                    fanout = memo[parent]
                    if fanout is base_map[parent]:
                        fanout = memo[parent] = list(fanout)
                    fanout.remove(child)
                for parent in new - old:
                    fanout = memo[parent]
                    if fanout is base_map[parent]:
                        fanout = memo[parent] = list(fanout)
                    fanout.append(child)
            self._child_map_memo = memo
        return memo

    def structural_delta(self, other: "CircuitGraph") -> list[int] | None:
        if isinstance(other, GraphView) and other._base is self._base:
            # Shared node storage: schemas are identical by construction
            # and only overlay rows can differ.
            return sorted(
                v for v in set(self._rows) | set(other._rows)
                if self._row(v) != other._row(v)
            )
        if other is self._base:
            return sorted(
                v for v, row in self._rows.items()
                if row != other._parents[v]
            )
        return super().structural_delta(other)

    # -- matrix views / serialisation -----------------------------------
    def adjacency(self) -> np.ndarray:
        n = len(self._nodes)
        a = np.zeros((n, n), dtype=bool)
        for child, row in enumerate(self._all_rows()):
            for parent in row:
                if parent is not None:
                    a[parent, child] = True
        return a

    def to_dict(self) -> dict:
        return self.materialize().to_dict()

    def copy(self) -> "CircuitGraph":
        return self.materialize()

    def materialize(self) -> CircuitGraph:
        """An independent plain :class:`CircuitGraph` with this view's
        wiring (the inverse of wrapping a base in a view)."""
        g = CircuitGraph(self.name)
        g._nodes = [n.copy() for n in self._nodes]
        g._parents = [list(self._row(v)) for v in range(len(self._nodes))]
        return g

    def commit(self) -> CircuitGraph:
        """Fold the overlay into the base graph *in place* and return it.

        Any other view sharing the base observes the new wiring too --
        only commit once no sibling views are live.
        """
        base = self._base
        for child, row in self._rows.items():
            base._parents[child] = list(row)
        base._invalidate_wiring()
        return base

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphView({self.name!r}, nodes={self.num_nodes}, "
            f"overlay={len(self._rows)})"
        )


def from_adjacency(
    adjacency: np.ndarray,
    types: Iterable[NodeType],
    widths: Iterable[int],
    name: str = "design",
) -> CircuitGraph:
    """Build a graph from an adjacency matrix and attribute vectors.

    Parent slot order is the ascending parent-id order; this is the
    convention used when a generative model emits an unordered edge set.
    Extra parents beyond the node's arity raise; missing parents leave
    empty slots (the graph may then fail validation).
    """
    types = list(types)
    widths = list(widths)
    n = adjacency.shape[0]
    if adjacency.shape != (n, n):
        raise ValueError("adjacency must be square")
    if len(types) != n or len(widths) != n:
        raise ValueError("types/widths length must match adjacency size")
    g = CircuitGraph(name)
    for t, w in zip(types, widths):
        g.add_node(t, int(w))
    for child in range(n):
        parents = np.flatnonzero(adjacency[:, child])
        slots = ARITY[types[child]]
        if len(parents) > slots:
            raise ValueError(
                f"node {child} ({types[child]}) admits {slots} parents, "
                f"adjacency provides {len(parents)}"
            )
        for slot, parent in enumerate(parents):
            g.set_parent(child, slot, int(parent))
    return g
