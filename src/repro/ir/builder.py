"""Fluent construction helper for :class:`CircuitGraph`.

The benchmark design generators build circuits programmatically; this
builder removes the slot-wiring boilerplate and applies the standard RTL
width-inference rules (binary ops take the max operand width, comparisons
are single-bit, concat widths add, etc.).
"""

from __future__ import annotations

from .graph import CircuitGraph
from .node_types import NodeType


class GraphBuilder:
    """Builds a circuit graph node by node.

    Registers are created first (so they can appear in feedback paths) and
    closed later with :meth:`drive_reg`.
    """

    def __init__(self, name: str = "design"):
        self.graph = CircuitGraph(name)

    # -- leaves ---------------------------------------------------------
    def input(self, name: str, width: int) -> int:
        return self.graph.add_node(NodeType.IN, width, name=name)

    def const(self, value: int, width: int, name: str | None = None) -> int:
        if value < 0 or value >= (1 << width):
            raise ValueError(f"constant {value} does not fit in {width} bits")
        return self.graph.add_node(
            NodeType.CONST, width, params={"value": value}, name=name
        )

    def reg(self, name: str, width: int) -> int:
        return self.graph.add_node(NodeType.REG, width, name=name)

    def drive_reg(self, reg: int, next_value: int) -> int:
        """Close a register's feedback: ``next_value`` becomes its D input."""
        if self.graph.node(reg).type is not NodeType.REG:
            raise ValueError(f"node {reg} is not a register")
        self.graph.set_parent(reg, 0, next_value)
        return reg

    # -- unary ----------------------------------------------------------
    def not_(self, a: int, name: str | None = None) -> int:
        node = self.graph.add_node(
            NodeType.NOT, self.graph.node(a).width, name=name
        )
        self.graph.set_parent(node, 0, a)
        return node

    def reduce_or(self, a: int, name: str | None = None) -> int:
        node = self.graph.add_node(NodeType.REDUCE_OR, 1, name=name)
        self.graph.set_parent(node, 0, a)
        return node

    def slice_(self, a: int, hi: int, lo: int, name: str | None = None) -> int:
        if hi < lo or lo < 0:
            raise ValueError(f"bad slice bounds [{hi}:{lo}]")
        node = self.graph.add_node(
            NodeType.SLICE, hi - lo + 1, params={"lo": lo}, name=name
        )
        self.graph.set_parent(node, 0, a)
        return node

    def bit(self, a: int, index: int, name: str | None = None) -> int:
        return self.slice_(a, index, index, name=name)

    # -- binary ---------------------------------------------------------
    def _binary(
        self, op: NodeType, a: int, b: int, width: int | None, name: str | None
    ) -> int:
        if width is None:
            width = max(self.graph.node(a).width, self.graph.node(b).width)
        node = self.graph.add_node(op, width, name=name)
        self.graph.set_parent(node, 0, a)
        self.graph.set_parent(node, 1, b)
        return node

    def add(self, a: int, b: int, width: int | None = None, name: str | None = None) -> int:
        return self._binary(NodeType.ADD, a, b, width, name)

    def sub(self, a: int, b: int, width: int | None = None, name: str | None = None) -> int:
        return self._binary(NodeType.SUB, a, b, width, name)

    def mul(self, a: int, b: int, width: int | None = None, name: str | None = None) -> int:
        if width is None:
            width = self.graph.node(a).width + self.graph.node(b).width
        return self._binary(NodeType.MUL, a, b, width, name)

    def and_(self, a: int, b: int, width: int | None = None, name: str | None = None) -> int:
        return self._binary(NodeType.AND, a, b, width, name)

    def or_(self, a: int, b: int, width: int | None = None, name: str | None = None) -> int:
        return self._binary(NodeType.OR, a, b, width, name)

    def xor(self, a: int, b: int, width: int | None = None, name: str | None = None) -> int:
        return self._binary(NodeType.XOR, a, b, width, name)

    def eq(self, a: int, b: int, name: str | None = None) -> int:
        node = self.graph.add_node(NodeType.EQ, 1, name=name)
        self.graph.set_parent(node, 0, a)
        self.graph.set_parent(node, 1, b)
        return node

    def lt(self, a: int, b: int, name: str | None = None) -> int:
        node = self.graph.add_node(NodeType.LT, 1, name=name)
        self.graph.set_parent(node, 0, a)
        self.graph.set_parent(node, 1, b)
        return node

    def shl(self, a: int, b: int, width: int | None = None, name: str | None = None) -> int:
        if width is None:
            width = self.graph.node(a).width
        return self._binary(NodeType.SHL, a, b, width, name)

    def shr(self, a: int, b: int, width: int | None = None, name: str | None = None) -> int:
        if width is None:
            width = self.graph.node(a).width
        return self._binary(NodeType.SHR, a, b, width, name)

    def concat(self, hi: int, lo: int, name: str | None = None) -> int:
        """``{hi, lo}``: hi occupies the upper bits."""
        width = self.graph.node(hi).width + self.graph.node(lo).width
        node = self.graph.add_node(NodeType.CONCAT, width, name=name)
        self.graph.set_parent(node, 0, hi)
        self.graph.set_parent(node, 1, lo)
        return node

    # -- ternary ---------------------------------------------------------
    def mux(
        self, sel: int, if_true: int, if_false: int,
        width: int | None = None, name: str | None = None,
    ) -> int:
        """``sel ? if_true : if_false`` (slot order: sel, then data)."""
        if width is None:
            width = max(
                self.graph.node(if_true).width, self.graph.node(if_false).width
            )
        node = self.graph.add_node(NodeType.MUX, width, name=name)
        self.graph.set_parent(node, 0, sel)
        self.graph.set_parent(node, 1, if_true)
        self.graph.set_parent(node, 2, if_false)
        return node

    # -- sinks ------------------------------------------------------------
    def output(self, name: str, source: int) -> int:
        node = self.graph.add_node(
            NodeType.OUT, self.graph.node(source).width, name=name
        )
        self.graph.set_parent(node, 0, source)
        return node

    # -- finish -----------------------------------------------------------
    def build(self, check: bool = True) -> CircuitGraph:
        if check:
            from ..lint.constraints import assert_valid

            assert_valid(self.graph)
        return self.graph
