"""Training loop for the diffusion denoiser (x0-parameterisation).

Each step samples a timestep, corrupts a real circuit's adjacency through
the forward process and trains the network to recover the *clean*
adjacency with binary cross-entropy on a balanced set of edge slots (all
positives plus ``neg_ratio`` times as many sampled negatives -- circuit
graphs are sparse, so full-matrix BCE would drown the positive signal).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from ..ir import CircuitGraph
from ..nn import Adam, bce_with_logits
from ..obs import get_logger
from .features import AttributeSampler, graph_attributes
from .model import DenoisingNetwork
from .schedule import NoiseSchedule

logger = get_logger(__name__)


@dataclass
class DiffusionConfig:
    """Hyper-parameters; paper values with CPU-scale defaults.

    The paper uses 9 diffusion steps, a 5-layer MPNN and hidden size 256
    on 8 GPUs; hidden defaults to 64 here so the full experiment suite
    runs on CPU (see DESIGN.md scale notes).
    """

    num_steps: int = 9
    hidden: int = 64
    num_layers: int = 5
    time_dim: int = 16
    epochs: int = 60
    lr: float = 2e-3
    neg_ratio: float = 4.0
    noise_density: float | None = None  # None: mean density of train set
    seed: int = 0


@dataclass
class TrainedDiffusion:
    """Everything needed to sample new circuits."""

    model: DenoisingNetwork
    schedule: NoiseSchedule
    attributes: AttributeSampler
    config: DiffusionConfig
    losses: list[float] = field(default_factory=list)
    mean_edges_per_node: float = 1.5

    def target_density(self, num_nodes: int) -> float:
        """Size-adaptive edge density for generation.

        Circuit edge counts grow linearly with node count (every node has
        a fixed arity), so density falls as ~degree/N; using the training
        graphs' mean edges-per-node keeps large generated graphs as
        sparse as large real designs.
        """
        return float(
            np.clip(self.mean_edges_per_node / max(num_nodes, 2), 1e-4, 0.5)
        )

    def calibration_bias(self, num_nodes: int) -> float:
        """Negative-sampling prior correction applied at inference.

        Training pairs contain positives at rate ``1/(1+neg_ratio)``; the
        true edge density is far lower.  Shifting the logits by the
        difference of the log-odds recalibrates sampled edge
        probabilities without changing their ranking.
        """
        train_rate = 1.0 / (1.0 + self.config.neg_ratio)
        density = self.target_density(num_nodes)
        return float(
            np.log(density / (1.0 - density))
            - np.log(train_rate / (1.0 - train_rate))
        )


def _edge_pairs(a0: np.ndarray, neg_ratio: float,
                rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Positive pairs plus sampled negatives; returns (src, dst, target)."""
    pos_src, pos_dst = np.nonzero(a0)
    num_pos = max(len(pos_src), 1)
    num_neg = int(num_pos * neg_ratio)
    n = a0.shape[0]
    neg_src = rng.integers(0, n, size=num_neg)
    neg_dst = rng.integers(0, n, size=num_neg)
    keep = ~a0[neg_src, neg_dst]
    neg_src, neg_dst = neg_src[keep], neg_dst[keep]
    src = np.concatenate([pos_src, neg_src])
    dst = np.concatenate([pos_dst, neg_dst])
    target = np.concatenate(
        [np.ones(len(pos_src)), np.zeros(len(neg_src))]
    )
    return src, dst, target


def train_diffusion(
    graphs: list[CircuitGraph],
    config: DiffusionConfig | None = None,
    verbose: bool = False,
) -> TrainedDiffusion:
    """Fit the denoising diffusion model on real circuit graphs."""
    config = config or DiffusionConfig()
    if not graphs:
        raise ValueError("need at least one training graph")
    rng = np.random.default_rng(config.seed)

    adjacencies = [g.adjacency() for g in graphs]
    attrs = [graph_attributes(g) for g in graphs]
    if config.noise_density is None:
        densities = [a.mean() for a in adjacencies]
        noise_density = float(np.clip(np.mean(densities), 1e-4, 0.5))
    else:
        noise_density = config.noise_density

    schedule = NoiseSchedule.cosine(config.num_steps, noise_density)
    model = DenoisingNetwork(
        hidden=config.hidden,
        num_layers=config.num_layers,
        time_dim=config.time_dim,
        seed=config.seed,
    )
    optimizer = Adam(model.parameters(), lr=config.lr)
    losses: list[float] = []

    for epoch in range(config.epochs):
        order = rng.permutation(len(graphs))
        epoch_loss = 0.0
        for gi in order:
            a0 = adjacencies[gi]
            types, widths = attrs[gi]
            t = int(rng.integers(1, config.num_steps + 1))
            a_t = schedule.sample_t(a0, t, rng)
            src, dst, target = _edge_pairs(a0, config.neg_ratio, rng)

            optimizer.zero_grad()
            logits = model(types, widths, a_t, t / config.num_steps, src, dst)
            loss = bce_with_logits(logits, target)
            loss.backward()
            optimizer.step()
            epoch_loss += loss.item()
        losses.append(epoch_loss / len(graphs))
        if epoch % 10 == 0 or epoch == config.epochs - 1:
            logger.log(
                logging.INFO if verbose else logging.DEBUG,
                "[diffusion] epoch %4d  loss %.4f", epoch, losses[-1],
            )

    return TrainedDiffusion(
        model=model,
        schedule=schedule,
        attributes=AttributeSampler(graphs),
        config=config,
        losses=losses,
        mean_edges_per_node=float(
            np.mean([g.num_edges / max(g.num_nodes, 1) for g in graphs])
        ),
    )
