"""Discrete diffusion noise schedule over adjacency-matrix entries.

Each directed edge slot is a two-state variable (absent/present).  The
forward process applies per-step transition matrices

    Q_t = (1 - beta_t) * I + beta_t * 1 m^T,

whose stationary distribution ``m = [1 - p_noise, p_noise]`` is a sparse
Bernoulli prior matching circuit edge densities.  The cumulative product
has the closed form ``Qbar_t = alpha_bar_t * I + (1 - alpha_bar_t) 1 m^T``
with ``alpha_bar_t`` following the cosine schedule of Nichol & Dhariwal
(2021), the schedule the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class NoiseSchedule:
    """Precomputed schedule for ``num_steps`` diffusion steps.

    Index convention: step ``t`` runs from 1 (least noisy) to
    ``num_steps`` (pure noise); ``alpha_bar[0] == 1`` is the clean data.
    """

    num_steps: int
    noise_density: float
    alpha_bar: np.ndarray  # shape (num_steps + 1,)
    beta: np.ndarray       # shape (num_steps + 1,); beta[0] unused

    @classmethod
    def cosine(
        cls, num_steps: int = 9, noise_density: float = 0.01, s: float = 0.008
    ) -> "NoiseSchedule":
        """Cosine alpha-bar schedule (paper Section IV-A)."""
        if not 0.0 < noise_density < 1.0:
            raise ValueError("noise_density must be in (0, 1)")
        steps = np.arange(num_steps + 1, dtype=np.float64)
        f = np.cos((steps / num_steps + s) / (1 + s) * np.pi / 2.0) ** 2
        alpha_bar = np.clip(f / f[0], 1e-8, 1.0)
        beta = np.zeros(num_steps + 1)
        beta[1:] = 1.0 - alpha_bar[1:] / alpha_bar[:-1]
        beta = np.clip(beta, 0.0, 0.999)
        return cls(num_steps, noise_density, alpha_bar, beta)

    # ------------------------------------------------------------------
    def q_t_given_0(self, a0: np.ndarray, t: int) -> np.ndarray:
        """P(A_t = 1 | A_0): marginal corruption probability per entry."""
        ab = self.alpha_bar[t]
        return ab * a0.astype(np.float64) + (1.0 - ab) * self.noise_density

    def sample_t(self, a0: np.ndarray, t: int,
                 rng: np.random.Generator) -> np.ndarray:
        """Draw a corrupted adjacency A_t ~ q(. | A_0)."""
        return (rng.random(a0.shape) < self.q_t_given_0(a0, t)).astype(bool)

    def prior_sample(self, shape: tuple[int, ...],
                     rng: np.random.Generator) -> np.ndarray:
        """A_T ~ stationary noise distribution."""
        return (rng.random(shape) < self.noise_density).astype(bool)

    # ------------------------------------------------------------------
    def posterior_probability(
        self, a_t: np.ndarray, p_x0: np.ndarray, t: int
    ) -> np.ndarray:
        """P(A_{t-1} = 1 | A_t, x0-prediction), marginalised over A_0.

        Standard D3PM posterior for independent 2-state chains:
        ``q(x_{t-1} | x_t, x_0) \\propto Q_t[x_{t-1}, x_t] *
        Qbar_{t-1}[x_0, x_{t-1}]``, then the network's ``p(A_0=1)``
        marginalises the unknown ``x_0``.
        """
        if t < 1:
            raise ValueError("posterior requires t >= 1")
        if t == 1:
            return np.clip(p_x0, 0.0, 1.0)
        m1 = self.noise_density
        m0 = 1.0 - m1
        beta_t = self.beta[t]
        ab_prev = self.alpha_bar[t - 1]
        a_t = a_t.astype(np.float64)

        # Q_t[x_{t-1}=k, x_t]: transition into the observed x_t.
        trans_into_xt = {
            0: (1.0 - beta_t) * (1.0 - a_t) + beta_t * (m0 * (1.0 - a_t) + m1 * a_t),
            1: (1.0 - beta_t) * a_t + beta_t * (m0 * (1.0 - a_t) + m1 * a_t),
        }
        # Qbar_{t-1}[x_0, x_{t-1}=k] for both hypothetical x_0 values.
        cum = {
            (0, 0): ab_prev + (1.0 - ab_prev) * m0,
            (0, 1): (1.0 - ab_prev) * m1,
            (1, 0): (1.0 - ab_prev) * m0,
            (1, 1): ab_prev + (1.0 - ab_prev) * m1,
        }
        p_x0 = np.clip(p_x0, 1e-9, 1.0 - 1e-9)
        unnorm: dict[int, np.ndarray] = {}
        for k in (0, 1):
            given_x0_0 = cum[(0, k)] * trans_into_xt[k]
            given_x0_1 = cum[(1, k)] * trans_into_xt[k]
            unnorm[k] = (1.0 - p_x0) * given_x0_0 + p_x0 * given_x0_1
        total = unnorm[0] + unnorm[1]
        return unnorm[1] / np.maximum(total, 1e-30)


def fused_posterior(
    a_t: np.ndarray,
    p_x0: np.ndarray,
    t: int,
    beta_t: float,
    ab_prev: float,
    noise_density: np.ndarray,
) -> np.ndarray:
    """D3PM posterior over a padded cross-graph stack (fast tier).

    Same marginalisation as
    :meth:`NoiseSchedule.posterior_probability`, but over ``(B, N, N)``
    stacks whose items may follow *different* stationary densities:
    ``noise_density`` broadcasts per item (shape ``(B, 1, 1)``).  The
    cosine ``beta_t`` / ``ab_prev`` depend only on the step count, so
    they stay scalars.  Fast tier only -- the exact tier keeps the
    per-schedule method so its operation order (and so its low-order
    bits) never changes.
    """
    m1 = noise_density
    m0 = 1.0 - m1
    a_t = a_t.astype(np.float64)
    noise_into_xt = m0 * (1.0 - a_t) + m1 * a_t
    trans_into_xt = {
        0: (1.0 - beta_t) * (1.0 - a_t) + beta_t * noise_into_xt,
        1: (1.0 - beta_t) * a_t + beta_t * noise_into_xt,
    }
    cum = {
        (0, 0): ab_prev + (1.0 - ab_prev) * m0,
        (0, 1): (1.0 - ab_prev) * m1,
        (1, 0): (1.0 - ab_prev) * m0,
        (1, 1): ab_prev + (1.0 - ab_prev) * m1,
    }
    p_x0 = np.clip(p_x0, 1e-9, 1.0 - 1e-9)
    unnorm: dict[int, np.ndarray] = {}
    for k in (0, 1):
        unnorm[k] = (
            (1.0 - p_x0) * (cum[(0, k)] * trans_into_xt[k])
            + p_x0 * (cum[(1, k)] * trans_into_xt[k])
        )
    total = unnorm[0] + unnorm[1]
    return unnorm[1] / np.maximum(total, 1e-30)
