"""Node attribute featurisation shared by encoder and baselines.

Node attributes are (type, width); types become one-hot indices for an
embedding table and widths are bucketed by log2 so that 1-, 8- and 32-bit
signals land in distinct buckets.
"""

from __future__ import annotations

import numpy as np

from ..ir import CircuitGraph

#: Number of log2 width buckets (1, 2, 3-4, 5-8, ..., >128).
NUM_WIDTH_BUCKETS = 8


def width_bucket(width: int) -> int:
    return min(int(np.ceil(np.log2(max(width, 1)))) if width > 1 else 0,
               NUM_WIDTH_BUCKETS - 1)


def graph_attributes(graph: CircuitGraph) -> tuple[np.ndarray, np.ndarray]:
    """(type indices, width bucket indices) for all nodes."""
    types = graph.type_indices()
    buckets = np.array(
        [width_bucket(n.width) for n in graph.nodes()], dtype=np.int64
    )
    return types, buckets


class AttributeSampler:
    """Empirical P(X): joint (type, width) distribution of real designs.

    At inference the paper either reuses the training attribute
    distribution or takes user-specified attributes; this class provides
    the former.
    """

    def __init__(self, graphs: list[CircuitGraph]) -> None:
        pairs: list[tuple[int, int]] = []
        from ..ir import type_index

        for g in graphs:
            for node in g.nodes():
                pairs.append((type_index(node.type), node.width))
        if not pairs:
            raise ValueError("attribute sampler needs at least one graph")
        self._pairs = np.array(pairs, dtype=np.int64)

    def sample(
        self, num_nodes: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw (types, widths) for ``num_nodes`` nodes.

        Guarantees at least one input, one output and one register so that
        the post-processed circuit is a meaningful sequential design.
        """
        from ..ir import NodeType, type_index

        idx = rng.integers(0, len(self._pairs), size=num_nodes)
        types = self._pairs[idx, 0].copy()
        widths = self._pairs[idx, 1].copy()
        required = [
            type_index(NodeType.IN),
            type_index(NodeType.OUT),
            type_index(NodeType.REG),
            type_index(NodeType.CONST),
        ]
        taken: set[int] = set()
        for needed in required:
            if not np.any(types == needed):
                # Overwrite a random slot not already reserved.
                slot = int(rng.integers(0, num_nodes))
                while slot in taken and len(taken) < num_nodes:
                    slot = int(rng.integers(0, num_nodes))
                types[slot] = needed
                taken.add(slot)
        return types, widths
