"""Reverse denoising sampler: noise -> (G_ini, P_E).

Starting from the stationary sparse prior, each step queries the network
for p(A_0 | A_t), forms the D3PM posterior for A_{t-1} and samples it.
The final step's x0 prediction is the edge-probability matrix
``P_E^{(t=0)}`` that Phase 2's probability-guided refinement consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import get_logger, registry, span
from ..tiers import EXACT_TIER, FAST_TIER, check_tier
from .model import DenoisingNetwork
from .train import TrainedDiffusion

logger = get_logger(__name__)


@dataclass
class SampleResult:
    """Initial (possibly invalid) generation output of Phase 1."""

    adjacency: np.ndarray       # bool (N, N): G_ini edges
    edge_probability: np.ndarray  # float (N, N): P_E^{(t=0)}
    types: np.ndarray           # node type indices
    widths: np.ndarray          # node widths (actual bit widths)


def sample_initial_graph(
    trained: TrainedDiffusion,
    num_nodes: int | None = None,
    types: np.ndarray | None = None,
    widths: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
) -> SampleResult:
    """Run the reverse process conditioned on node attributes.

    Attributes may be user-specified (``types``/``widths``) or sampled
    from the training distribution when only ``num_nodes`` is given --
    the two usage modes described in the paper.
    """
    rng = rng or np.random.default_rng()
    if types is None or widths is None:
        if num_nodes is None:
            raise ValueError("provide either num_nodes or explicit attributes")
        types, widths = trained.attributes.sample(num_nodes, rng)
    types = np.asarray(types, dtype=np.int64)
    widths = np.asarray(widths, dtype=np.int64)
    n = len(types)
    if len(widths) != n:
        raise ValueError("types and widths must have equal length")

    from .features import width_bucket
    from .schedule import NoiseSchedule

    buckets = np.array([width_bucket(int(w)) for w in widths], dtype=np.int64)
    model = trained.model
    steps = trained.schedule.num_steps
    # Size-adaptive schedule: same step count, density matched to N.
    schedule = NoiseSchedule.cosine(steps, trained.target_density(n))

    with span("diffusion.sample", nodes=n, steps=steps):
        a_t = schedule.prior_sample((n, n), rng)
        p_x0 = np.full((n, n), schedule.noise_density)
        bias = trained.calibration_bias(n)
        for t in range(steps, 0, -1):
            p_x0 = model.predict_full(
                types, buckets, a_t, t / steps, logit_bias=bias
            )
            if t > 1:
                p_prev = schedule.posterior_probability(a_t, p_x0, t)
                a_t = rng.random((n, n)) < p_prev
            else:
                a_t = rng.random((n, n)) < p_x0
    return SampleResult(
        adjacency=a_t.astype(bool),
        edge_probability=p_x0,
        types=types,
        widths=widths,
    )


def sample_batch(
    trained: TrainedDiffusion,
    sizes: list[int],
    rngs: list[np.random.Generator],
    tier: str = EXACT_TIER,
) -> list[SampleResult]:
    """Reverse-sample many graphs, sharing denoiser forwards.

    In the ``exact`` tier (the default) items are grouped by node count
    and each group walks the reverse process in lockstep: per step, one
    :meth:`~repro.diffusion.model.DenoisingNetwork.predict_full_batch`
    forward scores the whole group (row-stacked GEMMs), while every
    stochastic draw still comes from the item's own generator in the
    same order as :func:`sample_initial_graph` would consume it.  The
    result list is therefore element-wise bit-identical to calling
    :func:`sample_initial_graph` per item -- the property the session
    API's sequential/parallel equivalence guarantee rests on -- at a
    fraction of the Python and BLAS dispatch overhead.  The flip side:
    group-by-size sharing degrades to solo-sized forwards as sizes grow
    heterogeneous, which the DEBUG group histogram and the
    ``diffusion_batch_fill_ratio`` gauge make observable.

    The ``fast`` tier drops the grouping entirely:
    :meth:`~repro.diffusion.model.DenoisingNetwork.predict_full_fused`
    packs *all* items -- heterogeneous sizes included -- into one tall
    GEMM per layer, with per-step decoder constants precomputed once
    for the whole walk (the across-steps half of the fusion).  Each
    item's rng is still consumed per item and in walk order, so the
    only divergence from the exact tier is GEMM low-order bits flipping
    threshold draws; the drift that induces is bounded by the tier's
    tolerance gate (:mod:`repro.tiers`).
    """
    check_tier(tier)
    if len(sizes) != len(rngs):
        raise ValueError("sizes and rngs must have equal length")
    # Attribute sampling consumes each item's rng first, exactly like
    # the per-item path (item order is irrelevant: rngs are private).
    attrs = [
        trained.attributes.sample(int(n), rng) for n, rng in zip(sizes, rngs)
    ]
    results: list[SampleResult | None] = [None] * len(sizes)
    groups: dict[int, list[int]] = {}
    for index, n in enumerate(sizes):
        groups.setdefault(int(n), []).append(index)

    # GEMM-sharing fill: fraction of the batch's pair rows a perfectly
    # fused forward would co-schedule that this tier actually does.
    # Exact tier shares within size groups only; fast tier fuses all.
    total = len(sizes)
    fill = (
        1.0 if tier == FAST_TIER or total == 0
        else sum(len(g) ** 2 for g in groups.values()) / total ** 2
    )
    if fill < 1.0:
        logger.debug(
            "[diffusion] exact-tier sample_batch degrades to %d "
            "size-groups (histogram %s): batch_fill_ratio %.3f",
            len(groups),
            {n: len(g) for n, g in sorted(groups.items())},
            fill,
        )
    registry().gauge(
        "diffusion_batch_fill_ratio",
        help="GEMM-sharing fill of the last diffusion sample_batch "
        "(1.0 = fully fused forwards)",
    ).set(fill)

    model = trained.model
    steps = trained.schedule.num_steps
    with span(
        "diffusion.sample_batch",
        items=len(sizes), groups=len(groups), steps=steps, tier=tier,
    ):
        if tier == FAST_TIER:
            _sample_fused(trained, model, steps, sizes, attrs, rngs, results)
        else:
            _sample_groups(
                trained, model, steps, groups, attrs, rngs, results
            )
    return results  # type: ignore[return-value]


def _sample_fused(
    trained: TrainedDiffusion,
    model: DenoisingNetwork,
    steps: int,
    sizes: list[int],
    attrs: list[tuple[np.ndarray, np.ndarray]],
    rngs: list[np.random.Generator],
    results: list[SampleResult | None],
) -> None:
    """Fast-tier reverse walk: every item in one fused forward per step."""
    from .features import width_bucket
    from .schedule import NoiseSchedule

    distinct = sorted({int(n) for n in sizes})
    schedules = {
        n: NoiseSchedule.cosine(steps, trained.target_density(n))
        for n in distinct
    }
    biases = {n: trained.calibration_bias(n) for n in distinct}
    types = [np.asarray(attrs[k][0], dtype=np.int64) for k in range(len(sizes))]
    widths = [np.asarray(attrs[k][1], dtype=np.int64) for k in range(len(sizes))]
    buckets = [
        np.array([width_bucket(int(w)) for w in row], dtype=np.int64)
        for row in widths
    ]
    # Same per-item rng consumption order as the exact path: attributes
    # (already drawn), then the prior, then one draw per step.
    a_t = [
        schedules[int(n)].prior_sample((int(n), int(n)), rngs[k])
        for k, n in enumerate(sizes)
    ]
    p_x0 = [
        np.full((int(n), int(n)), schedules[int(n)].noise_density)
        for n in sizes
    ]
    # The forward is fused across everything; so is the posterior: all
    # items share one padded (B, Nmax, Nmax) stack per step (the cosine
    # beta/alpha-bar depend only on the step count, so only the
    # per-item stationary density varies -- it broadcasts).  Each
    # item's rng draw stays private and in order.
    from .schedule import fused_posterior

    count = len(sizes)
    nmax = max(int(n) for n in sizes)
    density = np.array(
        [schedules[int(n)].noise_density for n in sizes]
    ).reshape(count, 1, 1)
    shared = schedules[int(sizes[0])]  # beta/alpha_bar: size-invariant
    a_pad = np.zeros((count, nmax, nmax))
    p_pad = np.zeros((count, nmax, nmax))
    consts = model.fused_step_constants(steps)
    for t in range(steps, 0, -1):
        items = [
            (types[k], buckets[k], a_t[k], biases[int(sizes[k])])
            for k in range(len(sizes))
        ]
        p_x0 = model.predict_full_fused(items, t / steps, consts=consts[t])
        if t > 1:
            for k, n in enumerate(sizes):
                a_pad[k, :n, :n] = a_t[k]
                p_pad[k, :n, :n] = p_x0[k]
            p_prev = fused_posterior(
                a_pad, p_pad, t,
                shared.beta[t], shared.alpha_bar[t - 1], density,
            )
            for k, n in enumerate(sizes):
                a_t[k] = rngs[k].random((int(n), int(n))) < p_prev[k, :n, :n]
        else:
            for k, n in enumerate(sizes):
                a_t[k] = rngs[k].random((int(n), int(n))) < p_x0[k]
    for k in range(len(sizes)):
        results[k] = SampleResult(
            adjacency=a_t[k].astype(bool),
            edge_probability=p_x0[k],
            types=types[k],
            widths=widths[k],
        )


def _sample_groups(
    trained: TrainedDiffusion,
    model: DenoisingNetwork,
    steps: int,
    groups: dict[int, list[int]],
    attrs: list[tuple[np.ndarray, np.ndarray]],
    rngs: list[np.random.Generator],
    results: list[SampleResult | None],
) -> None:
    from .features import width_bucket
    from .schedule import NoiseSchedule

    for n, members in groups.items():
        schedule = NoiseSchedule.cosine(steps, trained.target_density(n))
        bias = trained.calibration_bias(n)
        types = np.stack([np.asarray(attrs[k][0], dtype=np.int64)
                          for k in members])
        widths = np.stack([np.asarray(attrs[k][1], dtype=np.int64)
                           for k in members])
        buckets = np.array(
            [[width_bucket(int(w)) for w in row] for row in widths],
            dtype=np.int64,
        )
        a_t = np.stack([
            schedule.prior_sample((n, n), rngs[k]) for k in members
        ])
        p_x0 = np.full((len(members), n, n), schedule.noise_density)
        for t in range(steps, 0, -1):
            p_x0 = model.predict_full_batch(
                types, buckets, a_t, t / steps, logit_bias=bias
            )
            if t > 1:
                p_prev = schedule.posterior_probability(a_t, p_x0, t)
                a_t = np.stack([
                    rngs[k].random((n, n)) < p_prev[b]
                    for b, k in enumerate(members)
                ])
            else:
                a_t = np.stack([
                    rngs[k].random((n, n)) < p_x0[b]
                    for b, k in enumerate(members)
                ])
        for b, k in enumerate(members):
            results[k] = SampleResult(
                adjacency=a_t[b].astype(bool),
                edge_probability=p_x0[b],
                types=types[b],
                widths=widths[b],
            )
