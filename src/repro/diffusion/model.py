"""Denoising network: directed MPNN encoder + asymmetric TransE decoder.

The encoder follows the paper's update rule

    H^{l+1}_j = sigma( W_h H^l_j + (1/|P(j)|) sum_{i in P(j)} W_m H^l_i )

over the *noisy* adjacency A_t, with node attributes and a learned time
embedding initialising H^0.  The decoder restores edge direction through a
learnable relation embedding r(t):

    P_E(i, j) = MLP( ((H_i + r(t)) * H_j)  ++  d(t) )

which is deliberately asymmetric in (i, j) -- the paper's fix for the
commutative dot-product/Euclidean decoders of prior work.

Training uses the autograd path over sampled pairs; inference uses a
vectorised numpy path (`predict_full`) that scores all N^2 pairs in
row-chunks without building an autograd tape.
"""

from __future__ import annotations

import numpy as np

from ..ir import NUM_TYPES
from ..nn import MLP, Embedding, Linear, Module, Tensor, sigmoid_np, time_features
from .features import NUM_WIDTH_BUCKETS


class DirectedMPNNEncoder(Module):
    """Parent-averaged directed message passing (paper Section IV-C)."""

    def __init__(self, hidden: int, num_layers: int, time_dim: int,
                 rng: np.random.Generator) -> None:
        self.hidden = hidden
        self.time_dim = time_dim
        self.type_emb = Embedding(NUM_TYPES, hidden, rng)
        self.width_emb = Embedding(NUM_WIDTH_BUCKETS, hidden, rng)
        self.time_mlp = MLP([time_dim, hidden, hidden], rng)
        self.w_h = [Linear(hidden, hidden, rng) for _ in range(num_layers)]
        self.w_m = [Linear(hidden, hidden, rng) for _ in range(num_layers)]

    @staticmethod
    def aggregation_matrix(a_t: np.ndarray) -> np.ndarray:
        """Row-normalised parent aggregation: M[j, i] = A_t[i, j]/|P(j)|."""
        a = a_t.astype(np.float64)
        indeg = a.sum(axis=0)
        with np.errstate(divide="ignore", invalid="ignore"):
            m = a.T / np.maximum(indeg[:, None], 1.0)
        return m

    def initial_embedding(self, types: np.ndarray, widths: np.ndarray,
                          t_frac: float) -> Tensor:
        h = self.type_emb(types) + self.width_emb(widths)
        t_emb = self.time_mlp(Tensor(time_features(t_frac, self.time_dim)))
        n = len(types)
        ones = Tensor(np.ones((n, 1)))
        return h + ones @ t_emb

    def forward(self, types: np.ndarray, widths: np.ndarray,
                a_t: np.ndarray, t_frac: float) -> Tensor:
        h = self.initial_embedding(types, widths, t_frac)
        agg = Tensor(self.aggregation_matrix(a_t))
        for w_h, w_m in zip(self.w_h, self.w_m):
            h = (w_h(h) + w_m(agg @ h)).relu()
        return h


class TransEDecoder(Module):
    """Asymmetric edge decoder with relation and time embeddings."""

    def __init__(self, hidden: int, time_dim: int,
                 rng: np.random.Generator) -> None:
        self.hidden = hidden
        self.time_dim = time_dim
        self.relation_mlp = MLP([time_dim, hidden, hidden], rng)
        self.timestep_mlp = MLP([time_dim, hidden, time_dim], rng)
        self.edge_mlp = MLP([hidden + time_dim, hidden, 1], rng)

    def forward(self, h: Tensor, src: np.ndarray, dst: np.ndarray,
                t_frac: float) -> Tensor:
        """Logits for the pairs (src[k] -> dst[k])."""
        feats = Tensor(time_features(t_frac, self.time_dim))
        r = self.relation_mlp(feats)          # (1, hidden)
        d = self.timestep_mlp(feats)          # (1, time_dim)
        h_src = h.take_rows(src)
        h_dst = h.take_rows(dst)
        ones = Tensor(np.ones((len(src), 1)))
        translated = (h_src + ones @ r) * h_dst
        z = translated.concat(ones @ d, axis=-1)
        return self.edge_mlp(z).reshape(len(src))


class DenoisingNetwork(Module):
    """phi_theta: predicts p(A_0 = 1 | A_t, X, t)."""

    def __init__(self, hidden: int = 64, num_layers: int = 5,
                 time_dim: int = 16, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self.encoder = DirectedMPNNEncoder(hidden, num_layers, time_dim, rng)
        self.decoder = TransEDecoder(hidden, time_dim, rng)

    def forward(self, types: np.ndarray, widths: np.ndarray,
                a_t: np.ndarray, t_frac: float, src: np.ndarray,
                dst: np.ndarray) -> Tensor:
        h = self.encoder(types, widths, a_t, t_frac)
        return self.decoder(h, src, dst, t_frac)

    # ------------------------------------------------------------------
    # Fast inference path (pure numpy, no tape)
    # ------------------------------------------------------------------
    def predict_full(self, types: np.ndarray, widths: np.ndarray,
                     a_t: np.ndarray, t_frac: float,
                     chunk: int = 128, logit_bias: float = 0.0) -> np.ndarray:
        """Probability matrix P_E over all ordered pairs (i, j).

        ``logit_bias`` applies the negative-sampling prior correction:
        training sees positives at rate 1/(1+neg_ratio) while the true
        edge density is far lower, so inference shifts every logit by
        log-odds(true density) - log-odds(training rate).  Rankings are
        unaffected; sampled densities become calibrated.
        """
        h = self._encode_np(types, widths, a_t, t_frac)
        n = h.shape[0]
        feats = time_features(t_frac, self.encoder.time_dim)
        r = _mlp_np(self.decoder.relation_mlp, feats)[0]
        d = _mlp_np(self.decoder.timestep_mlp, feats)[0]

        edge = self.decoder.edge_mlp.layers
        w1, b1 = _wb(edge[0])
        w2, b2 = _wb(edge[1])
        hidden = self.decoder.hidden
        w1_z, w1_d = w1[:hidden], w1[hidden:]
        d_bias = d @ w1_d + b1  # constant contribution of the time concat

        probs = np.empty((n, n))
        h_r = h + r
        for lo in range(0, n, chunk):
            hi = min(lo + chunk, n)
            # z[i, j, :] = (H_i + r) * H_j for i in [lo, hi)
            z = h_r[lo:hi, None, :] * h[None, :, :]
            a1 = np.maximum(z @ w1_z + d_bias, 0.0)
            logits = (a1 @ w2 + b2)[..., 0] + logit_bias
            probs[lo:hi] = sigmoid_np(logits)
        return probs

    def predict_full_batch(
        self, types: np.ndarray, widths: np.ndarray, a_t: np.ndarray,
        t_frac: float, chunk: int = 128, logit_bias: float = 0.0,
    ) -> np.ndarray:
        """Batched :meth:`predict_full`: ``types``/``widths`` are
        ``(B, N)``, ``a_t`` is ``(B, N, N)``; returns ``(B, N, N)``.

        One denoiser forward serves the whole stack: time/relation
        embeddings and decoder weight prep happen once, and every
        matmul runs as a stacked 3-d batch whose *per-slice* shapes are
        exactly the unbatched forward's.  That slice-shape preservation
        is deliberate: BLAS kernels pick reduction strategies by matrix
        shape, so keeping each sample's GEMM shape unchanged keeps each
        output slice bit-identical to a standalone :meth:`predict_full`
        call -- the property the batched sampler's reproducibility
        guarantee rests on (row-fusing the batch into one tall GEMM
        measurably changes low-order bits).
        """
        h = self._encode_np_batch(types, widths, a_t, t_frac)  # (B, N, H)
        batch, n, hidden = h.shape
        feats = time_features(t_frac, self.encoder.time_dim)
        r = _mlp_np(self.decoder.relation_mlp, feats)[0]
        d = _mlp_np(self.decoder.timestep_mlp, feats)[0]

        edge = self.decoder.edge_mlp.layers
        w1, b1 = _wb(edge[0])
        w2, b2 = _wb(edge[1])
        w1_z, w1_d = w1[:hidden], w1[hidden:]
        d_bias = d @ w1_d + b1

        probs = np.empty((batch, n, n))
        h_r = h + r
        # Keep the in-flight workspace at the unbatched path's footprint
        # (chunk rows *total*, not per sample), and reuse one buffer for
        # the activation chain: the decoder is bandwidth-bound, so
        # spilling cache with a B-times-larger z would cost more than
        # the batching saves.  Chunk size and in-place arithmetic are
        # pure scheduling choices -- every matmul slice stays (N, H) and
        # the op order is predict_full's -- so no output bit moves.
        chunk = max(1, min(chunk, n) // batch)
        buf = np.empty((batch, chunk, n, hidden))
        for lo in range(0, n, chunk):
            hi = min(lo + chunk, n)
            rows = hi - lo
            z = buf[:, :rows] if rows < chunk else buf
            # z[k, i, j, :] = (H_i + r) * H_j for sample k, i in [lo, hi)
            np.multiply(h_r[:, lo:hi, None, :], h[:, None, :, :], out=z)
            a1 = z @ w1_z
            np.add(a1, d_bias, out=a1)
            np.maximum(a1, 0.0, out=a1)
            logits = (a1 @ w2 + b2)[..., 0] + logit_bias
            probs[:, lo:hi] = sigmoid_np(logits)
        return probs

    def fused_step_constants(
        self, steps: int
    ) -> dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Per-step decoder constants for the whole reverse walk at once.

        The reverse process queries the same three tiny MLPs (time,
        relation and timestep embeddings) once per denoiser step.  The
        fast tier stacks all ``steps`` time-feature rows and pushes them
        through each MLP in one pass, then folds ``d(t)`` into the edge
        MLP's first-layer bias -- this is the "fused across denoiser
        steps" half of the throughput contract.  Returns
        ``{t: (t_emb, r, d_bias)}`` for ``t`` in ``1..steps``, directly
        consumable as :meth:`predict_full_fused`'s ``consts``.  Fast
        tier only: stacking the MLP rows changes GEMM shapes, so the
        rows are not bit-identical to per-step evaluation.
        """
        fracs = np.arange(1, steps + 1, dtype=np.float64) / steps
        feats = time_features(fracs, self.encoder.time_dim)  # (steps, T)
        t_emb = _mlp_np(self.encoder.time_mlp, feats)        # (steps, H)
        r = _mlp_np(self.decoder.relation_mlp, feats)        # (steps, H)
        d = _mlp_np(self.decoder.timestep_mlp, feats)        # (steps, T)
        edge = self.decoder.edge_mlp.layers
        w1, b1 = _wb(edge[0])
        hidden = self.decoder.hidden
        d_bias = d @ w1[hidden:] + b1                        # (steps, H)
        return {
            t: (t_emb[t - 1], r[t - 1], d_bias[t - 1])
            for t in range(1, steps + 1)
        }

    def predict_full_fused(
        self,
        items: list[tuple[np.ndarray, np.ndarray, np.ndarray, float]],
        t_frac: float,
        consts: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
        pair_budget: int = 4096,
    ) -> list[np.ndarray]:
        """Fast-tier forward over a heterogeneous batch, fully fused.

        ``items`` holds ``(types, width_buckets, a_t, logit_bias)`` per
        graph -- node counts may differ.  All node rows are packed into
        one tall ``(sum N_k, H)`` matrix: each encoder layer runs one
        tall ``h @ W_h`` and one tall ``m @ W_m`` GEMM (only the tiny
        per-item ``agg_k @ h`` aggregations stay per-slice -- adjacency
        is block-diagonal), and the decoder flattens all ordered pairs
        into tall GEMMs over packs of at most ``pair_budget`` pair rows
        (items are row-split when one alone exceeds the budget).  The
        budget is a cache bound, not a correctness knob: the decoder is
        bandwidth-bound, so the pack workspace is kept small enough to
        stay cache-resident and is reused across packs.
        ``consts`` takes one entry of :meth:`fused_step_constants`.

        Fast tier only: fusing rows across items changes BLAS reduction
        shapes, so outputs drift from :meth:`predict_full` in the low-
        order bits -- the drift the tier's tolerance gate bounds.
        Returns one ``(N_k, N_k)`` probability matrix per item.
        """
        enc, dec = self.encoder, self.decoder
        hidden = dec.hidden
        edge = dec.edge_mlp.layers
        w1, b1 = _wb(edge[0])
        w2, b2 = _wb(edge[1])
        w1_z = w1[:hidden]
        if consts is None:
            feats = time_features(t_frac, enc.time_dim)
            t_emb = _mlp_np(enc.time_mlp, feats)[0]
            r = _mlp_np(dec.relation_mlp, feats)[0]
            d_bias = _mlp_np(dec.timestep_mlp, feats)[0] @ w1[hidden:] + b1
        else:
            t_emb, r, d_bias = consts

        sizes = [len(item[0]) for item in items]
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        types_all = np.concatenate(
            [np.asarray(item[0], dtype=np.int64) for item in items]
        )
        buckets_all = np.concatenate(
            [np.asarray(item[1], dtype=np.int64) for item in items]
        )
        h = (
            enc.type_emb.weight.data[types_all]
            + enc.width_emb.weight.data[buckets_all]
            + t_emb
        )
        aggs = [
            DirectedMPNNEncoder.aggregation_matrix(
                np.asarray(item[2], dtype=np.float64)
            )
            for item in items
        ]
        m = np.empty_like(h)
        for w_h, w_m in zip(enc.w_h, enc.w_m):
            wh, bh = _wb(w_h)
            wm, bm = _wb(w_m)
            # Aggregation is block-diagonal across items; everything
            # else is one tall GEMM over all node rows.
            for k, agg in enumerate(aggs):
                lo, hi = int(offsets[k]), int(offsets[k + 1])
                np.matmul(agg, h[lo:hi], out=m[lo:hi])
            h = np.maximum(h @ wh + bh + m @ wm + bm, 0.0)

        h_r = h + r
        probs: list[np.ndarray] = [np.empty((n, n)) for n in sizes]
        # (item, row_lo, row_hi) units of at most `cap` pair rows each;
        # the greedy packing below then fills the shared workspace.
        cap = max(pair_budget, max(sizes, default=1))
        units: list[tuple[int, int, int]] = []
        for k, n in enumerate(sizes):
            rows_per = max(1, cap // max(n, 1))
            for lo in range(0, n, rows_per):
                units.append((k, lo, min(lo + rows_per, n)))
        total_pairs = sum(n * n for n in sizes)
        z = np.empty((min(cap, total_pairs), hidden))

        def run_pack(pack: list[tuple[int, int, int]], pair_rows: int) -> None:
            zz = z[:pair_rows]
            at = 0
            for k, lo, hi in pack:
                base, n = int(offsets[k]), sizes[k]
                rows = (hi - lo) * n
                np.multiply(
                    h_r[base + lo:base + hi, None, :],
                    h[None, base:base + n, :],
                    out=zz[at:at + rows].reshape(hi - lo, n, hidden),
                )
                at += rows
            a1 = zz @ w1_z
            np.add(a1, d_bias, out=a1)
            np.maximum(a1, 0.0, out=a1)
            logits = (a1 @ w2 + b2)[:, 0]
            at = 0
            for k, lo, hi in pack:
                n = sizes[k]
                rows = (hi - lo) * n
                block = logits[at:at + rows] + items[k][3]
                probs[k][lo:hi] = sigmoid_np(block).reshape(hi - lo, n)
                at += rows

        pack: list[tuple[int, int, int]] = []
        pair_rows = 0
        for unit in units:
            k, lo, hi = unit
            rows = (hi - lo) * sizes[k]
            if pack and pair_rows + rows > cap:
                run_pack(pack, pair_rows)
                pack, pair_rows = [], 0
            pack.append(unit)
            pair_rows += rows
        if pack:
            run_pack(pack, pair_rows)
        return probs

    def _encode_np_batch(self, types: np.ndarray, widths: np.ndarray,
                         a_t: np.ndarray, t_frac: float) -> np.ndarray:
        """Batched numpy encoder: ``(B, N)`` attributes -> ``(B, N, H)``."""
        enc = self.encoder
        types = np.asarray(types, dtype=np.int64)
        widths = np.asarray(widths, dtype=np.int64)
        h = enc.type_emb.weight.data[types] + enc.width_emb.weight.data[widths]
        t_emb = _mlp_np(enc.time_mlp, time_features(t_frac, enc.time_dim))
        h = h + t_emb
        a = np.asarray(a_t, dtype=np.float64)
        indeg = a.sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            agg = a.transpose(0, 2, 1) / np.maximum(indeg[:, :, None], 1.0)
        for w_h, w_m in zip(enc.w_h, enc.w_m):
            wh, bh = _wb(w_h)
            wm, bm = _wb(w_m)
            # Same expression (and so the same per-slice GEMM shapes and
            # addition order) as _encode_np, batched over axis 0.
            h = np.maximum(h @ wh + bh + (agg @ h) @ wm + bm, 0.0)
        return h

    def _encode_np(self, types: np.ndarray, widths: np.ndarray,
                   a_t: np.ndarray, t_frac: float) -> np.ndarray:
        enc = self.encoder
        h = (enc.type_emb.weight.data[np.asarray(types, dtype=np.int64)]
             + enc.width_emb.weight.data[np.asarray(widths, dtype=np.int64)])
        t_emb = _mlp_np(enc.time_mlp, time_features(t_frac, enc.time_dim))
        h = h + t_emb
        agg = enc.aggregation_matrix(a_t)
        for w_h, w_m in zip(enc.w_h, enc.w_m):
            wh, bh = _wb(w_h)
            wm, bm = _wb(w_m)
            h = np.maximum(h @ wh + bh + (agg @ h) @ wm + bm, 0.0)
        return h


def _wb(layer: Linear) -> tuple[np.ndarray, np.ndarray]:
    """(weight, bias) arrays of a layer; every layer here is biased."""
    bias = layer.bias
    assert bias is not None
    return layer.weight.data, bias.data


def _mlp_np(mlp: MLP, x: np.ndarray) -> np.ndarray:
    """Numpy-only forward through an MLP's ReLU stack."""
    out = np.asarray(x, dtype=np.float64)
    for layer in mlp.layers[:-1]:
        weight, bias = _wb(layer)
        out = np.maximum(out @ weight + bias, 0.0)
    weight, bias = _wb(mlp.layers[-1])
    return out @ weight + bias
