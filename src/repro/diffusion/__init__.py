"""Phase 1: diffusion-based directed cyclic graph generation."""

from .features import AttributeSampler, graph_attributes, width_bucket
from .model import DenoisingNetwork, DirectedMPNNEncoder, TransEDecoder
from .persist import load_trained, save_trained
from .sample import SampleResult, sample_batch, sample_initial_graph
from .schedule import NoiseSchedule
from .train import DiffusionConfig, TrainedDiffusion, train_diffusion

__all__ = [
    "AttributeSampler",
    "DenoisingNetwork",
    "DiffusionConfig",
    "DirectedMPNNEncoder",
    "NoiseSchedule",
    "SampleResult",
    "TrainedDiffusion",
    "TransEDecoder",
    "graph_attributes",
    "load_trained",
    "sample_batch",
    "sample_initial_graph",
    "save_trained",
    "train_diffusion",
    "width_bucket",
]
