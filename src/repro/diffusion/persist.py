"""Persistence for trained diffusion generators (.npz bundles).

A saved bundle contains the denoiser weights, the schedule/configuration
scalars and the empirical attribute table, so a generator can be trained
once and reused across sessions without retraining.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from .features import AttributeSampler
from .model import DenoisingNetwork
from .schedule import NoiseSchedule
from .train import DiffusionConfig, TrainedDiffusion


def save_trained(trained: TrainedDiffusion, path: str | pathlib.Path) -> None:
    """Write a trained generator to ``path`` (.npz)."""
    config_json = json.dumps({
        "num_steps": trained.config.num_steps,
        "hidden": trained.config.hidden,
        "num_layers": trained.config.num_layers,
        "time_dim": trained.config.time_dim,
        "epochs": trained.config.epochs,
        "lr": trained.config.lr,
        "neg_ratio": trained.config.neg_ratio,
        "noise_density": trained.schedule.noise_density,
        "seed": trained.config.seed,
    })
    arrays = {
        f"param_{key}": value
        for key, value in trained.model.state_dict().items()
    }
    np.savez_compressed(
        path,
        config=np.frombuffer(config_json.encode(), dtype=np.uint8),
        attribute_pairs=trained.attributes._pairs,
        losses=np.asarray(trained.losses, dtype=np.float64),
        mean_edges_per_node=np.float64(trained.mean_edges_per_node),
        **arrays,
    )


def load_trained(path: str | pathlib.Path) -> TrainedDiffusion:
    """Restore a generator saved by :func:`save_trained`."""
    with np.load(path) as bundle:
        config_raw = json.loads(bytes(bundle["config"]).decode())
        config = DiffusionConfig(
            num_steps=config_raw["num_steps"],
            hidden=config_raw["hidden"],
            num_layers=config_raw["num_layers"],
            time_dim=config_raw["time_dim"],
            epochs=config_raw["epochs"],
            lr=config_raw["lr"],
            neg_ratio=config_raw["neg_ratio"],
            noise_density=config_raw["noise_density"],
            seed=config_raw["seed"],
        )
        model = DenoisingNetwork(
            hidden=config.hidden,
            num_layers=config.num_layers,
            time_dim=config.time_dim,
            seed=config.seed,
        )
        state = {
            key[len("param_"):]: bundle[key]
            for key in bundle.files
            if key.startswith("param_")
        }
        model.load_state_dict(state)
        schedule = NoiseSchedule.cosine(
            config.num_steps, config.noise_density
        )
        sampler = AttributeSampler.__new__(AttributeSampler)
        sampler._pairs = bundle["attribute_pairs"]
        return TrainedDiffusion(
            model=model,
            schedule=schedule,
            attributes=sampler,
            config=config,
            losses=list(bundle["losses"]),
            mean_edges_per_node=float(bundle["mean_edges_per_node"]),
        )
