"""The two-tier numeric contract: ``exact`` and ``fast``.

Every numeric path in the pipeline belongs to one of two tiers:

* ``exact`` -- the default.  Results are *byte-stable*: goldens under
  ``results/`` and ``tests/goldens/`` pin them, ``generate_batch`` is
  bit-identical to sequential generation, and every incremental shortcut
  (delta elaboration, patched simulator plans, dirty-cone analysis) is
  required to reproduce the reference path bit for bit.  The denoiser's
  batched forward deliberately preserves per-sample GEMM shapes (BLAS
  kernels pick reduction strategies by matrix shape) and Phase-3
  acceptance is gated by the exact synthesis oracle.

* ``fast`` -- the throughput tier.  Numeric identity is relaxed,
  quality is *tolerance-gated* instead: the denoiser fuses its GEMMs
  across all graphs of a batch -- heterogeneous sizes included -- and
  across denoiser steps (one tall matmul per layer, per-step decoder
  constants computed once for the whole walk, one padded cross-graph
  posterior per step), Phase-3 walks register cones in
  redundancy-headroom order and stops after
  :data:`FAST_EXIT_PATIENCE` consecutive cones without an accepted
  rewrite (statically pre-filtered to :data:`FAST_CONE_COVERAGE` of
  the total headroom; designs that synthesize to nothing search every
  cone until rescued -- see ``_triage_cones``), marginal estimate
  gains below :data:`FAST_ORACLE_MARGIN` skip their synthesis-oracle
  call, the per-acceptance cone-function diagnostic defers to the
  batch-level drift gate, and candidate cones from *different*
  circuits share one packed-stimulus word pool
  (:class:`repro.mcts.crossq.CrossCircuitQueue`).  Acceptance stays
  oracle-gated in both tiers.  The differential harness in
  :mod:`repro.bench.drift` measures the SCPR/area drift of ``fast``
  vs ``exact`` per design family and tier-1 enforces
  :data:`FAST_SCPR_TOLERANCE` / :data:`FAST_AREA_TOLERANCE` on it.

The tier is threaded end to end: ``MCTSConfig.tier`` (config),
``GenerateRequest.tier`` (API; part of the serve layer's dedup
``request_key``, so exact and fast results never alias in the artifact
store), ``repro generate --tier`` / ``repro submit --tier`` (CLI).

When is ``exact`` required?  Whenever results feed goldens, cross-run
dedup against exact artifacts, or any differential test that asserts
bit-identity.  ``fast`` is for throughput-bound dataset generation
where a bounded distribution drift is acceptable.
"""

from __future__ import annotations

#: The default tier: byte-stable goldens, bit-identical shortcuts.
EXACT_TIER = "exact"

#: The throughput tier: fused GEMMs + estimate-driven acceptance,
#: tolerance-gated quality.
FAST_TIER = "fast"

#: Every valid tier name, in contract order.
TIERS = (EXACT_TIER, FAST_TIER)

#: Tolerance bound on the *relative* drift of the family-mean SCPR
#: between fast- and exact-tier generation (enforced in tier-1 by
#: ``tests/test_tiers.py`` through :func:`repro.bench.drift.measure_drift`).
FAST_SCPR_TOLERANCE = 0.25

#: Same bound for the family-mean post-synthesis area.
FAST_AREA_TOLERANCE = 0.25

#: Cone-triage coverage of the fast tier: Phase-3 ranks register cones
#: by the redundancy estimate's headroom (surviving interior nodes)
#: and statically keeps the top cones until they cover this fraction
#: of the circuit's total headroom.  Adaptive by construction:
#: circuits whose headroom is spread evenly keep most cones,
#: concentrated ones keep few.  Bypassed in rescue mode (base PCS of
#: zero): there every cone is a candidate to make the design survive
#: synthesis at all.
FAST_CONE_COVERAGE = 0.65

#: Fast-tier oracle-call filter: an improved cone state whose relative
#: estimate gain is below this margin is rejected without spending a
#: synthesis-oracle call on it.  Marginal estimate gains are the
#: candidates the oracle most often vetoes anyway; the true gains lost
#: are bounded by the margin itself and covered by the drift gate.
FAST_ORACLE_MARGIN = 0.02

#: Fast-tier early exit: after this many *consecutive* cones searched
#: without an accepted rewrite, the remaining (lower-headroom) cones are
#: skipped.  Because cones are visited in headroom order, a dud streak
#: means the estimate's priced-in gains have dried up; circuits whose
#: gains are spread keep searching, ones whose gains concentrate in the
#: top cones stop early.
FAST_EXIT_PATIENCE = 2


def check_tier(tier: str) -> str:
    """Validate a tier name, returning it for chaining."""
    if tier not in TIERS:
        raise ValueError(
            f"unknown tier {tier!r}: expected one of {', '.join(TIERS)}"
        )
    return tier


def is_fast(tier: str) -> bool:
    """Whether ``tier`` opts into the relaxed numeric contract."""
    return check_tier(tier) == FAST_TIER
