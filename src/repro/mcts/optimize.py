"""Phase 3 driver: cone-by-cone redundancy optimization.

``optimize_registers`` runs the MCTS search over every register's driving
cone (largest first) and stitches the improved cone states back into the
design.  ``random_search_registers`` is the paper's ablation: the same
simulation budget spent on random valid swaps, keeping the best state
seen.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..ir import CircuitGraph
from .actions import apply_swap, sample_swaps
from .cones import all_cones, driving_cone
from .reward import CachedReward, ConeBatchEvaluator, SynthesisReward
from .tree import ConeSearchResult, MCTSOptimizer, RewardFn


@dataclass
class MCTSConfig:
    """Search budget; paper defaults are 500 simulations, depth 10.

    ``verify_with_synthesis`` guards acceptance when the search reward is
    an approximation (the discriminator): a cone's best state is only
    committed if the *true* post-synthesis PCS improved.

    ``cache_rewards`` memoizes reward evaluations on a structural
    fingerprint per cone search (:class:`~repro.mcts.reward.CachedReward`).
    Swaps are self-inverse, so deep searches revisit states; the cache
    turns every revisit into a dict lookup instead of a synthesis run
    without changing any search decision.

    ``track_cone_function`` records, for every accepted cone rewrite,
    whether the new cone still computes the original function (packed
    simulation of before/after against one shared stimulus, via
    :class:`~repro.mcts.reward.ConeBatchEvaluator`).  Costs two cone
    simulations per *accepted* cone -- microseconds next to the search.
    """

    num_simulations: int = 500
    max_depth: int = 10
    branching: int = 8
    exploration: float = math.sqrt(2.0)
    clock_period: float = 2.0
    verify_with_synthesis: bool = True
    cache_rewards: bool = True
    track_cone_function: bool = True
    seed: int = 0


@dataclass
class OptimizationReport:
    graph: CircuitGraph
    cone_results: dict[int, ConeSearchResult] = field(default_factory=dict)
    #: Reward lookups across all cone searches, and how many of them were
    #: served by the structural cache (0 when ``cache_rewards`` is off).
    reward_calls: int = 0
    reward_cache_hits: int = 0
    #: register -> whether the accepted rewrite preserved the cone's
    #: function (only populated when ``track_cone_function`` is on).
    cone_function_preserved: dict[int, bool] = field(default_factory=dict)

    @property
    def improved_cones(self) -> int:
        return sum(1 for r in self.cone_results.values() if r.improved)

    @property
    def total_simulations(self) -> int:
        return sum(r.simulations for r in self.cone_results.values())


def optimize_registers(
    graph: CircuitGraph,
    reward_fn: RewardFn | None = None,
    config: MCTSConfig | None = None,
    registers: list[int] | None = None,
    verbose: bool = False,
) -> OptimizationReport:
    """MCTS optimization of each register cone; returns G_opt."""
    config = config or MCTSConfig()
    reward_fn = reward_fn or SynthesisReward(config.clock_period)
    current = graph.copy()
    report = OptimizationReport(graph=current)

    # When the search reward is approximate, acceptance is verified with
    # the exact synthesis PCS so a misled search can never hurt.
    need_verify = config.verify_with_synthesis and not isinstance(
        reward_fn, SynthesisReward
    )
    oracle = SynthesisReward(config.clock_period) if need_verify else None
    current_pcs = oracle(current) if oracle else None
    # One evaluator for the whole run: its packed stimulus words are keyed
    # by original-graph node ids, so every candidate netlist (across all
    # cones) is driven by the same shared stimulus.
    evaluator = (
        ConeBatchEvaluator(seed=config.seed)
        if config.track_cone_function else None
    )

    cones = all_cones(current)
    if registers is not None:
        wanted = set(registers)
        cones = [c for c in cones if c.register in wanted]
    for cone in cones:
        if not cone.interior:
            continue  # nothing to rewire inside a bare feedback register
        # One cache per cone search: within it the cone is fixed, so the
        # reward is a pure function of the structural fingerprint.
        search_reward = (
            CachedReward(reward_fn) if config.cache_rewards else reward_fn
        )
        optimizer = MCTSOptimizer(
            search_reward,
            num_simulations=config.num_simulations,
            max_depth=config.max_depth,
            branching=config.branching,
            exploration=config.exploration,
            seed=config.seed + cone.register,
        )
        live_cone = driving_cone(current, cone.register)
        result = optimizer.optimize_cone(current, live_cone)
        report.cone_results[cone.register] = result
        if isinstance(search_reward, CachedReward):
            report.reward_calls += search_reward.calls
            report.reward_cache_hits += search_reward.hits
        accepted = False
        previous = current
        if result.improved:
            if oracle is None:
                current = result.best_graph
                accepted = True
            else:
                candidate_pcs = oracle(result.best_graph)
                if candidate_pcs > current_pcs + 1e-12:
                    current = result.best_graph
                    current_pcs = candidate_pcs
                    accepted = True
        if accepted and evaluator is not None:
            try:
                report.cone_function_preserved[cone.register] = (
                    evaluator.signature(previous, cone.register).words
                    == evaluator.signature(current, cone.register).words
                )
            except Exception:  # diagnostic must never sink the search
                pass
        if verbose:
            print(
                f"[mcts] reg {cone.register}: pcs {result.initial_reward:.3f}"
                f" -> {result.best_reward:.3f}"
                f" ({'accepted' if accepted else 'kept'})"
            )
    report.graph = current
    return report


def random_search_registers(
    graph: CircuitGraph,
    reward_fn: RewardFn | None = None,
    config: MCTSConfig | None = None,
    verbose: bool = False,
) -> OptimizationReport:
    """Ablation baseline: random valid swaps with the same budget.

    Mirrors the paper's comparison: "randomly altering edge connections
    on G_val while still ensuring every step is valid... the same number
    of simulations ... adopt the optimal solution identified throughout
    the process."
    """
    config = config or MCTSConfig()
    reward_fn = reward_fn or SynthesisReward(config.clock_period)
    rng = np.random.default_rng(config.seed)
    current = graph.copy()
    report = OptimizationReport(graph=current)
    need_verify = config.verify_with_synthesis and not isinstance(
        reward_fn, SynthesisReward
    )
    oracle = SynthesisReward(config.clock_period) if need_verify else None
    current_pcs = oracle(current) if oracle else None

    for cone in all_cones(current):
        if not cone.interior:
            continue
        children_set = [cone.register, *cone.interior]
        live = driving_cone(current, cone.register)
        search_reward = (
            CachedReward(reward_fn) if config.cache_rewards else reward_fn
        )
        initial = search_reward(current, live)
        best_graph, best_reward = current, initial
        state = current
        steps = 0
        rewards_seen = [initial]
        while steps < config.num_simulations:
            swaps = sample_swaps(state, children_set, rng, 1)
            if not swaps:
                break
            nxt = apply_swap(state, swaps[0])
            steps += 1
            if nxt is None:
                continue
            state = nxt
            r = search_reward(state, cone)
            rewards_seen.append(r)
            if r > best_reward:
                best_reward, best_graph = r, state
            # Periodic restart mirrors the MCTS depth limit.
            if steps % config.max_depth == 0:
                state = best_graph
        report.cone_results[cone.register] = ConeSearchResult(
            best_graph=best_graph,
            best_reward=best_reward,
            initial_reward=initial,
            simulations=steps,
            rewards_seen=rewards_seen,
        )
        if isinstance(search_reward, CachedReward):
            report.reward_calls += search_reward.calls
            report.reward_cache_hits += search_reward.hits
        if best_reward > initial + 1e-12:
            if oracle is None:
                current = best_graph
            else:
                candidate_pcs = oracle(best_graph)
                if candidate_pcs > current_pcs + 1e-12:
                    current = best_graph
                    current_pcs = candidate_pcs
        if verbose:
            print(
                f"[random] reg {cone.register}: pcs {initial:.3f}"
                f" -> {best_reward:.3f}"
            )
    report.graph = current
    return report
