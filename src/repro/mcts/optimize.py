"""Phase 3 driver: cone-by-cone redundancy optimization.

``optimize_registers`` runs the MCTS search over every register's driving
cone (largest first) and stitches the improved cone states back into the
design.  ``random_search_registers`` is the paper's ablation: the same
simulation budget spent on random valid swaps, keeping the best state
seen.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field

import numpy as np

from ..ir import CircuitGraph, GraphView
from ..lint.sanitize import from_config as _sanitizer_from_config
from ..lint.sanitize import sanitizing
from ..obs import get_logger, registry, span
from ..tiers import EXACT_TIER, FAST_TIER, check_tier
from .actions import SwapIndex, apply_swap
from .cones import all_cones, driving_cone
from .reward import CachedReward, ConeBatchEvaluator, SynthesisReward
from .tree import ConeSearchResult, MCTSOptimizer, RewardFn

logger = get_logger(__name__)


@dataclass
class MCTSConfig:
    """Search budget; paper defaults are 500 simulations, depth 10.

    ``incremental`` routes the search reward through the incremental
    synthesis engine (:class:`repro.incr.IncrementalReward`): candidate
    states are delta-elaborated against the cone search's base instead
    of fully re-synthesized, and scored with a word-level redundancy
    estimate calibrated to exact PCS at each rebase.  Applies only when
    no explicit ``reward_fn`` is passed (the default reward would be the
    exact :class:`~repro.mcts.reward.SynthesisReward`); an explicit
    reward -- discriminator or exact -- is always used verbatim.  While
    ``verify_with_synthesis`` is on (the default), acceptance is gated
    by the exact synthesis oracle, so a misled estimate can never
    worsen the result; turning verification off makes acceptance follow
    the estimate alone.  Set to ``False`` for the full-resynthesis
    reference path.

    ``verify_with_synthesis`` guards acceptance when the search reward is
    an approximation (the discriminator or the incremental estimate): a
    cone's best state is only committed if the *true* post-synthesis PCS
    improved.

    ``delta_analysis`` routes the incremental reward's redundancy
    fixpoint through the analyzer's dirty-cone delta mode (baseline
    captured at each rebase, re-converged only over the edit's affected
    cone).  ``delta_oracle`` rebuilds the acceptance oracle on the delta
    substrate (:class:`~repro.incr.DeltaOracle`): candidate netlists are
    materialized from the engine's delta lineage instead of a fresh
    re-elaboration, then optimized and scored with a canonical area
    fold.  Both shortcuts are continuously cross-checked by the
    differential fuzz tier, fall back to the full path whenever their
    preconditions fail, and record any divergence in
    :class:`OptimizationReport`; either flag restores the reference
    path wholesale.  Both apply only when the incremental engine is in
    play (``incremental=True``, no explicit ``reward_fn``).

    ``cache_rewards`` memoizes reward evaluations on a structural
    fingerprint per cone search (:class:`~repro.mcts.reward.CachedReward`).
    Swaps are self-inverse, so deep searches revisit states; the cache
    turns every revisit into a dict lookup instead of a synthesis run
    without changing any search decision.

    ``track_cone_function`` records, for every accepted cone rewrite,
    whether the new cone still computes the original function (packed
    simulation of before/after against one shared stimulus, via
    :class:`~repro.mcts.reward.ConeBatchEvaluator`).  Costs two cone
    simulations per *accepted* cone -- microseconds next to the search.

    ``require_functional_equivalence`` promotes that diagnostic into a
    hard gate: an improved cone state is rejected outright when its
    cone computes a different function on the shared stimulus -- or
    when equivalence cannot be established at all (the gate fails
    closed) -- keeping the search inside the original design's
    observable behaviour.

    ``tier`` selects the numeric contract (see :mod:`repro.tiers`).
    ``"exact"`` (the default) keeps every byte-stability guarantee:
    every register cone is searched, in register order, and every
    accepted rewrite is tracked.  ``"fast"`` is the throughput tier:
    the search walks cones in redundancy-headroom order
    (:func:`_triage_cones`) and stops after
    :data:`repro.tiers.FAST_EXIT_PATIENCE` consecutive cones without
    an accepted rewrite, skips the synthesis-oracle call for marginal
    estimate gains (:data:`repro.tiers.FAST_ORACLE_MARGIN`), and
    defers the per-acceptance cone-function diagnostic to the
    batch-level drift gate (``require_functional_equivalence`` still
    checks, and still fails closed).  A design whose base synthesis
    collapses to nothing searches *every* cone until an accept lifts
    it off zero -- any cone may hold the rescuing rewrite.  Acceptance
    stays oracle-gated in both tiers -- the drift the triage induces
    is bounded by the tier-1 tolerance gate
    (:data:`repro.tiers.FAST_SCPR_TOLERANCE`).  Applies only when the
    incremental engine is in play; an explicit ``reward_fn`` is always
    exact-gated as before.

    ``sanitize`` audits the run with :mod:`repro.lint.sanitize`: every
    incrementally maintained structure the search touches (GraphView
    wiring memos, the SwapIndex edge cache, delta netlists, timing
    overlays, patched simulator plans) is cross-checked against a
    from-scratch recomputation at its checkpoints, raising
    :class:`~repro.lint.InvariantViolation` on divergence.  Pure
    auditing: a sanitized run's result is bit-identical to an
    unsanitized one.  The ``REPRO_SANITIZE`` environment variable turns
    this on globally without touching configs.
    """

    num_simulations: int = 500
    max_depth: int = 10
    branching: int = 8
    exploration: float = math.sqrt(2.0)
    clock_period: float = 2.0
    incremental: bool = True
    verify_with_synthesis: bool = True
    delta_analysis: bool = True
    delta_oracle: bool = True
    cache_rewards: bool = True
    track_cone_function: bool = True
    require_functional_equivalence: bool = False
    sanitize: bool = False
    tier: str = EXACT_TIER
    seed: int = 0


@dataclass
class OptimizationReport:
    graph: CircuitGraph
    cone_results: dict[int, ConeSearchResult] = field(default_factory=dict)
    #: Reward lookups across all cone searches, and how many of them were
    #: served by the structural cache (0 when ``cache_rewards`` is off).
    reward_calls: int = 0
    reward_cache_hits: int = 0
    #: register -> whether the accepted rewrite preserved the cone's
    #: function (only populated when ``track_cone_function`` is on, plus
    #: a ``False`` entry per equivalence-gate rejection).
    cone_function_preserved: dict[int, bool] = field(default_factory=dict)
    #: Whether the incremental reward path was used for the search.
    incremental: bool = False
    #: Delta patches / rebases performed by the incremental reward.
    reward_patches: int = 0
    reward_rebases: int = 0
    #: Improved cone states rejected by the functional-equivalence gate.
    equivalence_rejections: int = 0
    #: Dirty-cone redundancy-analysis outcomes (delta-mode analyze calls
    #: that reused the baseline / fell back to the full fixpoint / hit an
    #: unexpected exception and disabled the shortcut).  All zero when
    #: ``delta_analysis`` is off or the incremental engine is not used.
    analysis_delta_hits: int = 0
    analysis_fallbacks: int = 0
    analysis_divergences: int = 0
    #: Delta-substrate oracle outcomes (candidates scored from a
    #: materialized delta netlist / via fresh elaboration / divergences
    #: that flipped the oracle to the reference path).  All zero when
    #: ``delta_oracle`` is off or no oracle ran.
    oracle_delta_hits: int = 0
    oracle_fallbacks: int = 0
    oracle_divergences: int = 0
    #: Invariant audits performed when the run was sanitized (0 = the
    #: sanitizer was off; a sanitized run with violations raises).
    sanitize_checks: int = 0
    #: Cone-equivalence checks that errored out (simulator/elaboration
    #: failures) and therefore answered "unknown".  Non-zero means the
    #: diagnostic -- or the equivalence gate, which fails closed -- is
    #: degraded, not that the search result is wrong; a silent zero with
    #: empty ``cone_function_preserved`` would otherwise be
    #: indistinguishable from "nothing was accepted".
    cone_check_failures: int = 0

    @property
    def improved_cones(self) -> int:
        return sum(1 for r in self.cone_results.values() if r.improved)

    @property
    def total_simulations(self) -> int:
        return sum(r.simulations for r in self.cone_results.values())


#: Report fields mirrored into the process-wide metrics registry as
#: ``repro_<field>_total`` counters at the end of every search.  The
#: registry is the aggregated source surfaces like ``GET /metrics``
#: read; the per-run report keeps the same numbers scoped to one call.
_PUBLISHED_COUNTERS = (
    "reward_calls", "reward_cache_hits",
    "analysis_delta_hits", "analysis_fallbacks", "analysis_divergences",
    "oracle_delta_hits", "oracle_fallbacks", "oracle_divergences",
    "sanitize_checks", "equivalence_rejections", "cone_check_failures",
)


def _publish_metrics(report: OptimizationReport) -> None:
    """Fold one finished search's counters into the global registry."""
    reg = registry()
    reg.counter("searches_total").inc()
    reg.counter("simulations_total").inc(report.total_simulations)
    reg.counter("improved_cones_total").inc(report.improved_cones)
    for name in _PUBLISHED_COUNTERS:
        value = getattr(report, name)
        if value:
            reg.counter(f"{name}_total").inc(value)


def _resolve_search_rewards(config: MCTSConfig, reward_fn: RewardFn | None):
    """(search reward, incremental engine or None, oracle or None).

    The incremental engine only stands in for the *default* reward: an
    explicitly passed ``reward_fn`` -- whether the discriminator or an
    exact :class:`SynthesisReward` -- is always used verbatim, so the
    exact-reward arms of ablations and results tables measure what they
    say.  When the search reward is approximate (discriminator or the
    incremental estimate) and ``verify_with_synthesis`` is on,
    acceptance is verified with the exact synthesis PCS so a misled
    search can never hurt.
    """
    exact_reward = reward_fn or SynthesisReward(config.clock_period)
    incremental = None
    search_base = exact_reward
    if config.incremental and reward_fn is None:
        from ..incr import IncrementalReward

        incremental = IncrementalReward(
            clock_period=config.clock_period,
            delta_analysis=config.delta_analysis,
        )
        search_base = incremental
    oracle = None
    if config.verify_with_synthesis and not isinstance(
        search_base, SynthesisReward
    ):
        if incremental is not None and config.delta_oracle:
            from ..incr import DeltaOracle

            # Acceptance on the delta substrate: candidate netlists are
            # materialized from the engine's lineage, not re-elaborated.
            oracle = DeltaOracle(incremental)
        else:
            oracle = (
                exact_reward if isinstance(exact_reward, SynthesisReward)
                else SynthesisReward(config.clock_period)
            )
    return search_base, incremental, oracle


def optimize_registers(
    graph: CircuitGraph,
    reward_fn: RewardFn | None = None,
    config: MCTSConfig | None = None,
    registers: list[int] | None = None,
    verbose: bool = False,
    evaluator: ConeBatchEvaluator | None = None,
) -> OptimizationReport:
    """MCTS optimization of each register cone; returns G_opt.

    ``evaluator`` injects the cone-equivalence evaluator -- the fast
    tier passes a per-circuit view of a shared
    :class:`~repro.mcts.crossq.CrossCircuitQueue` so stimulus words are
    derived once per (marker, bit) across a whole ``generate_batch``.
    When ``None``, a private :class:`ConeBatchEvaluator` is built as
    before.
    """
    config = config or MCTSConfig()
    search_base, incremental, oracle = _resolve_search_rewards(
        config, reward_fn
    )
    fast = (
        check_tier(config.tier) == FAST_TIER and incremental is not None
    )
    # Fast tier defers the per-acceptance cone-function diagnostic to
    # the batch-level drift gate; the hard equivalence gate (below)
    # still runs when asked for.
    track_function = config.track_cone_function and not fast
    sanitizer = _sanitizer_from_config(config.sanitize, seed=config.seed)
    current = graph.copy()
    report = OptimizationReport(
        graph=current, incremental=incremental is not None
    )
    # With the incremental reward, each cone's rebase computes the exact
    # base PCS anyway; reuse it instead of a redundant oracle call here.
    current_pcs = (
        oracle(current) if oracle is not None and incremental is None
        else None
    )
    # One evaluator for the whole run: its packed stimulus words are keyed
    # by original-graph node ids, so every candidate netlist (across all
    # cones) is driven by the same shared stimulus.
    if evaluator is None:
        evaluator = (
            ConeBatchEvaluator(seed=config.seed)
            if track_function
            or config.require_functional_equivalence
            else None
        )

    cones = all_cones(current)
    triaged = False
    if registers is not None:
        wanted = set(registers)
        cones = [c for c in cones if c.register in wanted]
    elif fast and len(cones) > 1:
        # The base PCS decides the triage mode and the first cone's
        # rebase reuses it, so this synthesis is not an extra cost.
        if incremental is not None:
            incremental.rebase(current, exact_pcs=current_pcs)
            current_pcs = incremental.base_pcs
        # Rescue mode: a design that synthesizes to nothing (the
        # paper's fully-redundant raw samples) can be saved by *any*
        # cone -- cutting by headroom coverage risks dropping exactly
        # the rewrite that makes it survive synthesis, the catastrophic
        # drift tail.  Search every cone, in headroom order, until an
        # accept lifts the PCS off zero.
        rescue = current_pcs is None or current_pcs <= 1e-12
        cones = _triage_cones(current, cones, keep_all=rescue)
        triaged = True
    # The sanitizing context is a no-op for sanitizer=None; inside it the
    # incremental machinery's checkpoints (SwapIndex, delta netlists,
    # timing overlays, patched simulators) audit themselves.
    if triaged:
        from ..tiers import FAST_EXIT_PATIENCE
        patience = FAST_EXIT_PATIENCE
    duds = 0
    with span("mcts.optimize", cones=len(cones),
              incremental=incremental is not None), sanitizing(sanitizer):
        for cone in cones:
            if not cone.interior:
                continue  # nothing to rewire inside a bare feedback register
            if incremental is not None:
                # current_pcs, when set, is the oracle's value for this
                # same graph object -- rebase reuses it instead of
                # re-synthesizing.
                incremental.rebase(current, exact_pcs=current_pcs)
                current_pcs = incremental.base_pcs
            # One cache per cone search: within it the cone is fixed, so
            # the reward is a pure function of the structural fingerprint.
            search_reward = (
                CachedReward(search_base) if config.cache_rewards
                else search_base
            )
            optimizer = MCTSOptimizer(
                search_reward,
                num_simulations=config.num_simulations,
                max_depth=config.max_depth,
                branching=config.branching,
                exploration=config.exploration,
                seed=config.seed + cone.register,
            )
            live_cone = driving_cone(current, cone.register)
            with span("mcts.cone", register=cone.register,
                      interior=len(cone.interior)) as cone_span:
                result = optimizer.optimize_cone(current, live_cone)
                cone_span.add(simulations=result.simulations,
                              improved=result.improved)
            report.cone_results[cone.register] = result
            if isinstance(search_reward, CachedReward):
                report.reward_calls += search_reward.calls
                report.reward_cache_hits += search_reward.hits
            if sanitizer is not None and result.improved:
                # S001: the search's best state sits at the end of the
                # deepest copy-on-write derivation chain this cone
                # produced -- audit its wiring memos before acceptance
                # decisions build on them.
                sanitizer.check_graph_memos(result.best_graph)
            accepted = False
            rejected = False
            preserved: bool | None = None
            previous = current
            if result.improved:
                if (
                    config.require_functional_equivalence
                    and evaluator is not None
                ):
                    preserved = _cone_function_preserved(
                        evaluator, current, result.best_graph,
                        cone.register, report,
                    )
                    if preserved is not True:
                        # Hard gate fails *closed*: a state whose
                        # equivalence cannot be established (check
                        # errored, preserved is None) is rejected like a
                        # proven mismatch.
                        rejected = True
                        report.equivalence_rejections += 1
                        if preserved is False:
                            report.cone_function_preserved[
                                cone.register
                            ] = False
                if not rejected:
                    if oracle is None:
                        current = result.best_graph
                        # Without the oracle there is no exact value for
                        # the new state; the next rebase must
                        # re-synthesize.
                        current_pcs = None
                        accepted = True
                    elif fast and not _worth_oracle(result):
                        # Fast tier: a marginal estimate gain is the
                        # candidate the oracle most often vetoes --
                        # reject it without the synthesis call.  The
                        # true marginal gains lost here are bounded by
                        # the margin and the tier's drift gate.
                        pass
                    else:
                        with span("mcts.oracle", register=cone.register):
                            candidate_pcs = oracle(result.best_graph)
                        if candidate_pcs > current_pcs + 1e-12:
                            current = result.best_graph
                            current_pcs = candidate_pcs
                            accepted = True
            if accepted:
                # The accepted state becomes the next search base; cut
                # the swap provenance chain so the intermediate rollout
                # graphs it references can be reclaimed.
                current.edit_origin = None
                if sanitizer is not None:
                    # S001 again, post-acceptance: the provenance cut
                    # must not have disturbed the memos the next cone
                    # search will derive from.
                    sanitizer.check_graph_memos(current)
                if evaluator is not None and track_function:
                    if preserved is None:
                        # The gate (when it ran) compared this same
                        # (previous, current) pair; reuse its verdict.
                        preserved = _cone_function_preserved(
                            evaluator, previous, current,
                            cone.register, report,
                        )
                    if preserved is not None:
                        report.cone_function_preserved[
                            cone.register
                        ] = preserved
            outcome = (
                "accepted" if accepted
                else "rejected (function changed)" if rejected else "kept"
            )
            logger.log(
                logging.INFO if verbose else logging.DEBUG,
                "[mcts] reg %d: pcs %.3f -> %.3f (%s)",
                cone.register, result.initial_reward,
                result.best_reward, outcome,
            )
            if triaged:
                # Cones arrive in headroom order (_triage_cones): a
                # streak of duds means the estimate's remaining headroom
                # is not translating into accepted rewrites -- stop
                # paying for the tail.  Never while the design still
                # synthesizes to nothing: until an accept lifts the PCS
                # off zero every remaining cone is a rescue candidate.
                duds = 0 if accepted else duds + 1
                if (duds >= patience and current_pcs is not None
                        and current_pcs > 1e-12):
                    break
    if sanitizer is not None:
        report.sanitize_checks = sanitizer.checks_run
    if incremental is not None:
        report.reward_patches = incremental.patches
        report.reward_rebases = incremental.rebases
        (report.analysis_delta_hits, report.analysis_fallbacks,
         report.analysis_divergences) = incremental.analysis_counters()
    oracle_counters = getattr(oracle, "counters", None)
    if oracle_counters is not None:
        (report.oracle_delta_hits, report.oracle_fallbacks,
         report.oracle_divergences) = oracle_counters()
    # Search states are copy-on-write views; hand callers an independent
    # plain graph so the accepted design's lifetime is decoupled from
    # the search base and later mutations cannot alias other states.
    if isinstance(current, GraphView):
        current = current.materialize()
    report.graph = current
    _publish_metrics(report)
    return report


def _worth_oracle(result: ConeSearchResult) -> bool:
    """Whether a fast-tier improvement justifies a synthesis-oracle call.

    Requires the relative estimate gain to clear
    :data:`repro.tiers.FAST_ORACLE_MARGIN`; below it the candidate is
    rejected outright (see the acceptance loop).
    """
    from ..tiers import FAST_ORACLE_MARGIN

    floor = abs(result.initial_reward) * FAST_ORACLE_MARGIN
    return result.best_reward >= result.initial_reward + max(floor, 1e-12)


def _triage_cones(
    graph: CircuitGraph, cones: list, keep_all: bool = False
) -> list:
    """Fast-tier cone triage: rank cones by redundancy headroom.

    One redundancy fixpoint over the whole graph prices every cone at
    once: a cone's headroom is how many of its interior nodes the
    estimate says will *survive* synthesis -- logic the search could
    still fold away.  Cones are returned in descending-headroom order,
    pre-filtered to :data:`repro.tiers.FAST_CONE_COVERAGE` of the
    circuit's total headroom (``keep_all`` skips the filter -- rescue
    mode for designs that synthesize to nothing): the acceptance loop
    walks them front to back and stops after
    :data:`repro.tiers.FAST_EXIT_PATIENCE` consecutive duds, so the
    skipped tail is where the estimate says an accepted rewrite is
    least likely *and* recent searches agree.  The SCPR drift this
    trades away is measured and bounded by the tier's tolerance gate.
    """
    from ..incr.analysis import analyze_redundancy
    from ..tiers import FAST_CONE_COVERAGE

    survivors = analyze_redundancy(graph).survivors()
    headroom = {
        cone.register: len(survivors.intersection(cone.interior))
        for cone in cones
    }
    total = sum(headroom.values())
    if total == 0:
        return list(cones) if keep_all else cones[:1]
    # Deterministic ranking: headroom first, then the stable register
    # order `all_cones` already established.
    ranked = sorted(
        cones,
        key=lambda cone: (-headroom[cone.register], cone.register),
    )
    if keep_all:
        return ranked
    chosen = []
    covered = 0
    for cone in ranked:
        if chosen and covered >= FAST_CONE_COVERAGE * total:
            break
        chosen.append(cone)
        covered += headroom[cone.register]
    return chosen


#: Failure modes the cone simulation can legitimately hit on a candidate
#: state (cyclic subgraph, missing net, non-converging feedback
#: fixpoint).  Anything else -- a TypeError, an InvariantViolation from
#: the sanitizer -- is a bug in the engine and must propagate.
_CONE_CHECK_ERRORS = (ValueError, KeyError, RuntimeError)


def _cone_function_preserved(
    evaluator: ConeBatchEvaluator,
    before: CircuitGraph,
    after: CircuitGraph,
    register: int,
    report: OptimizationReport,
) -> bool | None:
    """Whether ``register``'s cone computes the same function in both
    states (``None`` when the check itself fails -- the diagnostic and
    the gate must never sink the search).  Suppressed failures are
    counted on ``report.cone_check_failures`` so diagnostic breakage is
    visible instead of silently reading as "unknown"."""
    try:
        return (
            evaluator.signature(before, register).words
            == evaluator.signature(after, register).words
        )
    except _CONE_CHECK_ERRORS:
        report.cone_check_failures += 1
        return None


def random_search_registers(
    graph: CircuitGraph,
    reward_fn: RewardFn | None = None,
    config: MCTSConfig | None = None,
    verbose: bool = False,
    evaluator: ConeBatchEvaluator | None = None,
) -> OptimizationReport:
    """Ablation baseline: random valid swaps with the same budget.

    Mirrors the paper's comparison: "randomly altering edge connections
    on G_val while still ensuring every step is valid... the same number
    of simulations ... adopt the optimal solution identified throughout
    the process."
    """
    config = config or MCTSConfig()
    search_base, incremental, oracle = _resolve_search_rewards(
        config, reward_fn
    )
    sanitizer = _sanitizer_from_config(config.sanitize, seed=config.seed)
    rng = np.random.default_rng(config.seed)
    current = graph.copy()
    report = OptimizationReport(
        graph=current, incremental=incremental is not None
    )
    current_pcs = (
        oracle(current) if oracle is not None and incremental is None
        else None
    )
    if evaluator is None:
        evaluator = (
            ConeBatchEvaluator(seed=config.seed)
            if config.require_functional_equivalence else None
        )

    with sanitizing(sanitizer):
        for cone in all_cones(current):
            if not cone.interior:
                continue
            if incremental is not None:
                incremental.rebase(current, exact_pcs=current_pcs)
                current_pcs = incremental.base_pcs
            index = SwapIndex([cone.register, *cone.interior])
            live = driving_cone(current, cone.register)
            search_reward = (
                CachedReward(search_base) if config.cache_rewards
                else search_base
            )
            initial = search_reward(current, live)
            best_graph, best_reward = current, initial
            state = current
            steps = 0
            rewards_seen = [initial]
            while steps < config.num_simulations:
                swaps = index.sample(state, rng, 1)
                if not swaps:
                    break
                nxt = apply_swap(state, swaps[0])
                steps += 1
                if nxt is None:
                    continue
                state = nxt
                r = search_reward(state, cone)
                rewards_seen.append(r)
                if r > best_reward:
                    best_reward, best_graph = r, state
                # Periodic restart mirrors the MCTS depth limit.
                if steps % config.max_depth == 0:
                    state = best_graph
            report.cone_results[cone.register] = ConeSearchResult(
                best_graph=best_graph,
                best_reward=best_reward,
                initial_reward=initial,
                simulations=steps,
                rewards_seen=rewards_seen,
            )
            if isinstance(search_reward, CachedReward):
                report.reward_calls += search_reward.calls
                report.reward_cache_hits += search_reward.hits
            if best_reward > initial + 1e-12:
                if sanitizer is not None:
                    # S001: audit the winning state's memo chain before
                    # committing it as the next search base.
                    sanitizer.check_graph_memos(best_graph)
                rejected = False
                if evaluator is not None:
                    # Same hard gate as the MCTS driver: improved states
                    # whose cone function changed (or cannot be checked)
                    # are not committed.
                    preserved = _cone_function_preserved(
                        evaluator, current, best_graph,
                        cone.register, report,
                    )
                    if preserved is not True:
                        rejected = True
                        report.equivalence_rejections += 1
                        if preserved is False:
                            report.cone_function_preserved[
                                cone.register
                            ] = False
                if rejected:
                    pass
                elif oracle is None:
                    current = best_graph
                    current_pcs = None
                    current.edit_origin = None
                else:
                    candidate_pcs = oracle(best_graph)
                    if candidate_pcs > current_pcs + 1e-12:
                        current = best_graph
                        current_pcs = candidate_pcs
                        current.edit_origin = None
            logger.log(
                logging.INFO if verbose else logging.DEBUG,
                "[random] reg %d: pcs %.3f -> %.3f",
                cone.register, initial, best_reward,
            )
    if sanitizer is not None:
        report.sanitize_checks = sanitizer.checks_run
    if incremental is not None:
        report.reward_patches = incremental.patches
        report.reward_rebases = incremental.rebases
        (report.analysis_delta_hits, report.analysis_fallbacks,
         report.analysis_divergences) = incremental.analysis_counters()
    oracle_counters = getattr(oracle, "counters", None)
    if oracle_counters is not None:
        (report.oracle_delta_hits, report.oracle_fallbacks,
         report.oracle_divergences) = oracle_counters()
    if isinstance(current, GraphView):
        current = current.materialize()
    report.graph = current
    _publish_metrics(report)
    return report
