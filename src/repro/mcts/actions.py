"""Atomic swap action on the adjacency matrix (paper Section VI-B).

For a state with edges ``A(i, j) = 1`` and ``A(p, q) = 1``, the successor
swaps the two children's parents: ``A(p, j) = 1`` and ``A(i, q) = 1``.
The operation preserves every node's in-degree and out-degree and keeps
the edge count constant, which is why the paper chose it: the search
never leaves the constraint-arity manifold, only combinational-loop
freedom must be rechecked.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import NamedTuple

import numpy as np

from ..ir import CircuitGraph, GraphView, is_sequential
from ..lint.sanitize import current_sanitizer


class Swap(NamedTuple):
    """Replace edges (i -> j), (p -> q) with (p -> j), (i -> q).

    A named tuple rather than a dataclass: swaps are created and hashed
    by the thousand inside rollouts, and tuple construction/hashing is
    several times cheaper than the dataclass protocol.
    """

    i: int
    j: int
    p: int
    q: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.i}->{self.j}, {self.p}->{self.q})"


def is_applicable(graph: CircuitGraph, swap: Swap) -> bool:
    """Cheap structural screens before the loop check."""
    i, j, p, q = swap
    if i == p or j == q:
        return False  # degenerate: swap would be a no-op
    # Raw slot rows (may contain None, which never equals a node id);
    # avoids building a filtered list per screen on the rollout path.
    parents_j = graph._row(j)
    parents_q = graph._row(q)
    if i not in parents_j or p not in parents_q:
        return False
    if p in parents_j or i in parents_q:
        return False  # would create a duplicate parent
    return True


def apply_swap(graph: CircuitGraph, swap: Swap) -> CircuitGraph | None:
    """Return the successor state, or ``None`` if the swap violates C.

    ``graph`` must itself be free of combinational loops (every state
    the search visits is).  Removing edges cannot create a cycle, so
    only the two *new* edges are checked, each with a targeted backward
    reachability query instead of a whole-graph cycle enumeration --
    this check sits on the innermost MCTS rollout path.

    The successor is a :class:`~repro.ir.GraphView`: node and parent
    storage stay shared with the predecessor and only the two rewired
    rows are recorded, so a rollout step allocates O(1) graph state
    instead of a whole-graph copy.
    """
    if not is_applicable(graph, swap):
        return None
    out = GraphView(graph)
    slot_j = graph._row(swap.j).index(swap.i)
    slot_q = graph._row(swap.q).index(swap.p)
    out.set_parent(swap.j, slot_j, swap.p)
    out.set_parent(swap.q, slot_q, swap.i)
    if _edge_in_comb_cycle(out, swap.p, swap.j):
        return None
    if _edge_in_comb_cycle(out, swap.i, swap.q):
        return None
    # Edit provenance for the incremental engine: the predecessor state
    # and the two nodes whose parents changed.  IncrementalReward walks
    # this chain to recover the touched set without re-diffing graphs.
    out.edit_origin = (graph, (swap.j, swap.q))
    return out


def _edge_in_comb_cycle(graph: CircuitGraph, parent: int, child: int) -> bool:
    """Does edge ``parent -> child`` lie on a register-free cycle?

    Equivalent to asking whether ``child`` reaches ``parent`` through
    combinational nodes; walked backwards from ``parent`` via parent
    edges so no fanout map has to be built.
    """
    node = graph.node
    if is_sequential(node(parent).type) or is_sequential(node(child).type):
        return False
    if parent == child:
        return True
    row = graph._row
    seen = {parent}
    stack = [parent]
    while stack:
        for p in row(stack.pop()):
            if p is None:
                continue
            if p == child:
                return True
            if p not in seen and not is_sequential(node(p).type):
                seen.add(p)
                stack.append(p)
    return False


class SwapIndex:
    """Persistent swap-candidate edge index for one cone search.

    ``sample`` draws swaps exactly like the historical ``sample_swaps``
    (same candidate lists in the same order, same rng consumption), but
    the cone-local edge list is *maintained* instead of re-derived: a
    successor state inherits its predecessor's local list and applies
    only the corrections implied by the swap's two rewired rows, using
    the schema-static edge positions of the shared base.  A full
    O(edges) scan only happens for states without a cached predecessor
    (each cone search's root).

    Per-state results are cached on the graph object itself, keyed by
    index identity, so tree revisits and the derivation chain both hit.
    """

    def __init__(self, cone_nodes: list[int]):
        self.cone_set = set(cone_nodes)

    # ------------------------------------------------------------------
    def sample(
        self,
        graph: CircuitGraph,
        rng: np.random.Generator,
        max_swaps: int,
        max_attempts: int | None = None,
    ) -> list[Swap]:
        """Draw distinct applicable swaps anchored in the cone.

        The first swapped edge must touch the cone (its parent or child
        lies in the cone node set: the register plus the cone interior);
        the second edge is drawn from the whole design.  This keeps the
        search local to the cone being optimized, as in the paper's
        cone-by-cone procedure, while still allowing rewires that route
        the register's fanout into observed logic -- the degree-
        preserving swap can never grow a node's fanout, only redirect it.
        """
        all_edges = graph.edge_list()
        local_edges = self._local_edges(graph, all_edges)
        if not local_edges or len(all_edges) < 2:
            return []
        max_attempts = max_attempts or max_swaps * 12
        found: list[Swap] = []
        seen: set[Swap] = set()
        for _ in range(max_attempts):
            if len(found) >= max_swaps:
                break
            i, j = local_edges[rng.integers(0, len(local_edges))]
            p, q = all_edges[rng.integers(0, len(all_edges))]
            swap = Swap(i, j, p, q)
            if swap in seen:
                continue
            seen.add(swap)
            if is_applicable(graph, swap):
                found.append(swap)
        return found

    # ------------------------------------------------------------------
    def _local_edges(self, graph: CircuitGraph, all_edges) -> list:
        cached = graph.__dict__.get("_swap_local")
        if cached is not None and cached[0] is self:
            return cached[1]
        derived = None
        origin = getattr(graph, "edit_origin", None)
        if origin is not None and isinstance(graph, GraphView):
            prev, rewired = origin
            prev_cached = prev.__dict__.get("_swap_local")
            if prev_cached is not None and prev_cached[0] is self:
                derived = self._derive(
                    graph, all_edges, prev, prev_cached, rewired
                )
        if derived is None:
            cone = self.cone_set
            local: list[tuple[int, int]] = []
            positions: list[int] = []
            for pos, edge in enumerate(all_edges):
                if edge[0] in cone or edge[1] in cone:
                    local.append(edge)
                    positions.append(pos)
        else:
            local, positions = derived
        graph._swap_local = (self, local, positions)
        sanitizer = current_sanitizer()
        if sanitizer is not None:
            # S002: audit the maintained list against a full re-scan.
            sanitizer.check_swap_index(graph, self.cone_set, local, positions)
        return local

    def _derive(self, graph, all_edges, prev, prev_cached, rewired):
        """Patch the predecessor's (local edges, positions) pair for the
        rewired rows; ``None`` when positions cannot be trusted (a slot
        was filled or vacated, shifting every later edge)."""
        prev_edges = prev.edge_list()
        pos_of = graph._base._edge_positions()
        if len(prev_edges) != len(all_edges) or len(pos_of) != len(all_edges):
            return None
        if graph._pattern_diverged or (
            isinstance(prev, GraphView) and prev._pattern_diverged
        ):
            # The base's edge positions no longer describe these states.
            return None
        local = list(prev_cached[1])
        positions = list(prev_cached[2])
        cone = self.cone_set
        for child in rewired:
            for slot in range(len(graph._row(child))):
                pos = pos_of.get((child, slot))
                if pos is None:
                    continue
                old, new = prev_edges[pos], all_edges[pos]
                if old == new:
                    continue
                was = old[0] in cone or old[1] in cone
                now = new[0] in cone or new[1] in cone
                if not (was or now):
                    continue
                k = bisect_left(positions, pos)
                if was and now:
                    local[k] = new
                elif was:
                    del local[k]
                    del positions[k]
                else:
                    local.insert(k, new)
                    positions.insert(k, pos)
        return local, positions


def sample_swaps(
    graph: CircuitGraph,
    cone_nodes: list[int],
    rng: np.random.Generator,
    max_swaps: int,
    max_attempts: int | None = None,
) -> list[Swap]:
    """One-shot form of :meth:`SwapIndex.sample` (a transient index).

    Searches that evaluate many states of one cone should hold a
    :class:`SwapIndex` instead, so successor states reuse the
    incrementally maintained local-edge lists.
    """
    return SwapIndex(cone_nodes).sample(graph, rng, max_swaps, max_attempts)
