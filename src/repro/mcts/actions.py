"""Atomic swap action on the adjacency matrix (paper Section VI-B).

For a state with edges ``A(i, j) = 1`` and ``A(p, q) = 1``, the successor
swaps the two children's parents: ``A(p, j) = 1`` and ``A(i, q) = 1``.
The operation preserves every node's in-degree and out-degree and keeps
the edge count constant, which is why the paper chose it: the search
never leaves the constraint-arity manifold, only combinational-loop
freedom must be rechecked.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ir import CircuitGraph, is_sequential


@dataclass(frozen=True)
class Swap:
    """Replace edges (i -> j), (p -> q) with (p -> j), (i -> q)."""

    i: int
    j: int
    p: int
    q: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.i}->{self.j}, {self.p}->{self.q})"


def is_applicable(graph: CircuitGraph, swap: Swap) -> bool:
    """Cheap structural screens before the loop check."""
    i, j, p, q = swap.i, swap.j, swap.p, swap.q
    if i == p or j == q:
        return False  # degenerate: swap would be a no-op
    parents_j = graph.filled_parents(j)
    parents_q = graph.filled_parents(q)
    if i not in parents_j or p not in parents_q:
        return False
    if p in parents_j or i in parents_q:
        return False  # would create a duplicate parent
    return True


def apply_swap(graph: CircuitGraph, swap: Swap) -> CircuitGraph | None:
    """Return the successor state, or ``None`` if the swap violates C.

    ``graph`` must itself be free of combinational loops (every state
    the search visits is).  Removing edges cannot create a cycle, so
    only the two *new* edges are checked, each with a targeted backward
    reachability query instead of a whole-graph cycle enumeration --
    this check sits on the innermost MCTS rollout path.
    """
    if not is_applicable(graph, swap):
        return None
    out = graph.copy()
    slot_j = graph.parents(swap.j).index(swap.i)
    slot_q = graph.parents(swap.q).index(swap.p)
    out.set_parent(swap.j, slot_j, swap.p)
    out.set_parent(swap.q, slot_q, swap.i)
    if _edge_in_comb_cycle(out, swap.p, swap.j):
        return None
    if _edge_in_comb_cycle(out, swap.i, swap.q):
        return None
    # Edit provenance for the incremental engine: the predecessor state
    # and the two nodes whose parents changed.  IncrementalReward walks
    # this chain to recover the touched set without re-diffing graphs.
    out.edit_origin = (graph, (swap.j, swap.q))
    return out


def _edge_in_comb_cycle(graph: CircuitGraph, parent: int, child: int) -> bool:
    """Does edge ``parent -> child`` lie on a register-free cycle?

    Equivalent to asking whether ``child`` reaches ``parent`` through
    combinational nodes; walked backwards from ``parent`` via parent
    edges so no fanout map has to be built.
    """
    node = graph.node
    if is_sequential(node(parent).type) or is_sequential(node(child).type):
        return False
    if parent == child:
        return True
    filled = graph.filled_parents
    seen = {parent}
    stack = [parent]
    while stack:
        for p in filled(stack.pop()):
            if p == child:
                return True
            if p not in seen and not is_sequential(node(p).type):
                seen.add(p)
                stack.append(p)
    return False


def sample_swaps(
    graph: CircuitGraph,
    cone_nodes: list[int],
    rng: np.random.Generator,
    max_swaps: int,
    max_attempts: int | None = None,
) -> list[Swap]:
    """Draw distinct applicable swaps anchored in a cone.

    The first swapped edge must touch the cone (its parent or child lies
    in ``cone_nodes``: the register plus the cone interior); the second
    edge is drawn from the whole design.  This keeps the search local to
    the cone being optimized, as in the paper's cone-by-cone procedure,
    while still allowing rewires that route the register's fanout into
    observed logic -- the degree-preserving swap can never grow a node's
    fanout, only redirect it.
    """
    cone_set = set(cone_nodes)
    all_edges = graph.edge_list()
    local_edges = [
        edge for edge in all_edges
        if edge[0] in cone_set or edge[1] in cone_set
    ]
    if not local_edges or len(all_edges) < 2:
        return []
    max_attempts = max_attempts or max_swaps * 12
    found: list[Swap] = []
    seen: set[Swap] = set()
    for _ in range(max_attempts):
        if len(found) >= max_swaps:
            break
        i, j = local_edges[rng.integers(0, len(local_edges))]
        p, q = all_edges[rng.integers(0, len(all_edges))]
        swap = Swap(i, j, p, q)
        if swap in seen:
            continue
        seen.add(swap)
        if is_applicable(graph, swap):
            found.append(swap)
    return found
