"""Cross-circuit candidate batching for the fast tier.

``generate_batch`` runs one MCTS search per circuit; in the exact tier
each search owns a private :class:`~repro.mcts.reward.ConeBatchEvaluator`
whose packed stimulus words are derived lazily per ``(marker, bit)``.
Markers are original-graph node ids, and every circuit in a batch is
sampled at similar sizes, so the searches keep re-deriving the *same*
word keys -- per circuit, from scratch.

:class:`CrossCircuitQueue` hoists that pool: one shared
``(marker, bit) -> word`` dictionary serves every circuit of a batch,
so each stimulus word is derived exactly once per batch instead of once
per circuit.  This is safe to share because
:func:`~repro.synth.simulate.packed_stimulus_word` is a pure function
of ``(seed, marker, num_cycles, bit)`` -- a served word is bit-identical
to the word a solo evaluator would derive.  What is *not* safe to share
is the evaluator's patch state: ``_cone_deltas`` / ``_cone_sims`` are
keyed by register id, and register ids collide across circuits.  The
queue therefore hands each circuit its own
:class:`_SharedStimulusEvaluator` -- shared words, private delta and
simulator caches.

That isolation boundary is an auditable invariant: under
``REPRO_SANITIZE`` (or ``sanitize=True``), every signature produced
through the queue is re-derived with a fresh solo evaluator and
compared word for word (rule ``S008`` in :mod:`repro.lint.sanitize`).
"""

from __future__ import annotations

import threading
from typing import Hashable

from ..ir import CircuitGraph
from ..lint.sanitize import current_sanitizer
from ..synth.simulate import packed_stimulus_word
from .reward import ConeBatchEvaluator, ConeSignature


class CrossCircuitQueue:
    """Shared packed-stimulus word pool for a whole ``generate_batch``.

    Thread-safe: a batch's worker threads call :meth:`evaluator` /
    :meth:`word_for` concurrently.  ``words_derived`` counts pool
    misses (actual ``packed_stimulus_word`` derivations),
    ``words_served`` counts every lookup -- their ratio is the
    cross-circuit sharing win.
    """

    def __init__(self, num_cycles: int = 64, seed: int = 0):
        if not 1 <= num_cycles:
            raise ValueError("num_cycles must be positive")
        self.num_cycles = num_cycles
        self.seed = seed
        self._lock = threading.Lock()
        self._words: dict[tuple[str, int], int] = {}
        self._evaluators: dict[Hashable, _SharedStimulusEvaluator] = {}
        self.words_derived = 0
        self.words_served = 0

    def word_for(self, marker: str, bit: int) -> int:
        """The batch-shared stimulus word for one boundary signal bit."""
        key = (marker, bit)
        with self._lock:
            self.words_served += 1
            word = self._words.get(key)
            if word is None:
                word = packed_stimulus_word(
                    self.seed, marker, self.num_cycles, salt=bit
                )
                self._words[key] = word
                self.words_derived += 1
        return word

    def evaluator(self, circuit_key: Hashable) -> "_SharedStimulusEvaluator":
        """This circuit's evaluator view: shared words, private state.

        ``circuit_key`` identifies one circuit of the batch (the item
        index in a ``generate_batch``); repeated calls with the same key
        return the same evaluator so a search's delta-patch lineage
        persists across its cones.
        """
        with self._lock:
            evaluator = self._evaluators.get(circuit_key)
            if evaluator is None:
                evaluator = _SharedStimulusEvaluator(self, circuit_key)
                self._evaluators[circuit_key] = evaluator
        return evaluator

    def evaluate(
        self, items: list[tuple[Hashable, CircuitGraph, int]]
    ) -> list[ConeSignature]:
        """Signatures for ``(circuit_key, graph, register)`` triples.

        Candidates from *different* circuits flow through one call; each
        is routed to its circuit's evaluator so only the stimulus pool
        is shared.
        """
        return [
            self.evaluator(circuit_key).signature(graph, register)
            for circuit_key, graph, register in items
        ]


class _SharedStimulusEvaluator(ConeBatchEvaluator):
    """One circuit's view of a :class:`CrossCircuitQueue`.

    Identical to a solo :class:`ConeBatchEvaluator` except that stimulus
    words come from the queue's shared pool -- bit-identical by purity
    of the derivation -- while the register-keyed delta/simulator caches
    stay private to this circuit (register ids collide across circuits).
    """

    def __init__(self, queue: CrossCircuitQueue, circuit_key: Hashable):
        super().__init__(num_cycles=queue.num_cycles, seed=queue.seed)
        self.queue = queue
        self.circuit_key = circuit_key

    def _word_for(self, marker: str, bit: int) -> int:
        return self.queue.word_for(marker, bit)

    def signature(self, graph: CircuitGraph, register: int) -> ConeSignature:
        result = super().signature(graph, register)
        sanitizer = current_sanitizer()
        if sanitizer is not None:
            # S008: the shared-pool signature must equal a solo
            # re-derivation -- no stimulus or state across circuits.
            sanitizer.check_cross_circuit(self, graph, register, result)
        return result
