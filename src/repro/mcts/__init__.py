"""Phase 3: MCTS-based circuit redundancy optimization."""

from .actions import Swap, SwapIndex, apply_swap, is_applicable, sample_swaps
from .cones import Cone, all_cones, cone_subcircuit, driving_cone
from .crossq import CrossCircuitQueue
from .discriminator import (
    PCSDiscriminator,
    collect_training_set,
    train_discriminator,
)
from .optimize import (
    MCTSConfig,
    OptimizationReport,
    optimize_registers,
    random_search_registers,
)
from .reward import (
    CONE_FEATURE_DIM,
    GRAPH_FEATURE_DIM,
    CachedReward,
    ConeBatchEvaluator,
    ConeSignature,
    SynthesisReward,
    cone_features,
    graph_features,
    structural_fingerprint,
)
from .tree import ConeSearchResult, MCTSOptimizer

__all__ = [
    "CONE_FEATURE_DIM",
    "GRAPH_FEATURE_DIM",
    "CachedReward",
    "Cone",
    "ConeBatchEvaluator",
    "ConeSignature",
    "CrossCircuitQueue",
    "graph_features",
    "ConeSearchResult",
    "MCTSConfig",
    "MCTSOptimizer",
    "OptimizationReport",
    "PCSDiscriminator",
    "Swap",
    "SynthesisReward",
    "all_cones",
    "apply_swap",
    "collect_training_set",
    "cone_features",
    "cone_subcircuit",
    "driving_cone",
    "is_applicable",
    "optimize_registers",
    "random_search_registers",
    "sample_swaps",
    "SwapIndex",
    "structural_fingerprint",
    "train_discriminator",
]
