"""Register driving-cone extraction (paper Section VI-A, footnote 3).

The driving cone for a register is the node set reached by a reverse
breadth-first search from the register through parent edges, stopping at
``const``, ``in`` or other ``reg`` nodes.  Cones are the unit of MCTS
optimization: each register's cone is refined independently.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import CircuitGraph, NodeType


@dataclass
class Cone:
    """Driving cone of ``register``: interior operators plus boundary."""

    register: int
    interior: list[int]   # combinational operator nodes inside the cone
    boundary: list[int]   # in / const / other-reg nodes feeding the cone

    @property
    def nodes(self) -> list[int]:
        return [self.register, *self.interior, *self.boundary]

    @property
    def size(self) -> int:
        return 1 + len(self.interior)


_STOP_TYPES = (NodeType.CONST, NodeType.IN, NodeType.REG)


def driving_cone(graph: CircuitGraph, register: int) -> Cone:
    """Reverse BFS from ``register`` until const/in/reg boundary nodes."""
    if graph.node(register).type is not NodeType.REG:
        raise ValueError(f"node {register} is not a register")
    interior: list[int] = []
    boundary: list[int] = []
    seen: set[int] = set()
    frontier = list(graph.filled_parents(register))
    while frontier:
        v = frontier.pop()
        if v in seen:
            continue
        seen.add(v)
        if graph.node(v).type in _STOP_TYPES:
            boundary.append(v)
            continue
        interior.append(v)
        frontier.extend(graph.filled_parents(v))
    return Cone(register=register, interior=interior, boundary=boundary)


def cone_subcircuit(graph: CircuitGraph, cone: Cone) -> CircuitGraph:
    """Standalone design for the cone, suitable for synthesis.

    Boundary nodes become primary inputs of matching width; the register
    is kept and observed through an output so the optimizer cannot simply
    delete everything.
    """
    sub = CircuitGraph(f"{graph.name}_cone{cone.register}")
    mapping: dict[int, int] = {}

    reg_node = graph.node(cone.register)
    mapping[cone.register] = sub.add_node(
        NodeType.REG, reg_node.width, name="cone_reg"
    )
    for v in cone.boundary:
        if v == cone.register:
            # Self-feedback: the register drives its own cone; keep the
            # loop inside the sub-circuit rather than cutting it to an
            # input (a REG node legally breaks the cycle).
            continue
        node = graph.node(v)
        mapping[v] = sub.add_node(NodeType.IN, node.width, name=f"bnd{v}")
    for v in cone.interior:
        node = graph.node(v)
        mapping[v] = sub.add_node(node.type, node.width, dict(node.params))

    for v in (cone.register, *cone.interior):
        for slot, parent in enumerate(graph.parents(v)):
            if parent is None:
                continue
            sub.set_parent(mapping[v], slot, mapping[parent])
    out = sub.add_node(NodeType.OUT, reg_node.width, name="observe")
    sub.set_parent(out, 0, mapping[cone.register])
    return sub


def canonical_cone(graph: CircuitGraph, register: int) -> Cone:
    """Driving cone with deterministically sorted interior and boundary.

    Two candidate states with the same cone *membership* then produce
    structurally identical sub-circuits from :func:`cone_subcircuit`
    (same node ids, names and port order) -- the property the
    incremental cone evaluator's delta patching keys on; the BFS order
    of :func:`driving_cone` depends on the wiring being traversed.
    """
    cone = driving_cone(graph, register)
    return Cone(
        register=cone.register,
        interior=sorted(cone.interior),
        boundary=sorted(cone.boundary),
    )


def all_cones(graph: CircuitGraph) -> list[Cone]:
    """Driving cones of every register, largest first."""
    cones = [driving_cone(graph, r) for r in graph.registers()]
    cones.sort(key=lambda c: -c.size)
    return cones
