"""Reward models for the MCTS search: exact synthesis PCS or a learned
discriminator approximation.

The paper's reward is the post-synthesis circuit size (PCS): post-
synthesis area divided by the pre-synthesis node count, computed on the
whole design state (each MCTS state is a full adjacency matrix).  A
larger PCS means less logic was optimized away, i.e. less redundancy.
Because calling synthesis inside the search loop is slow, the paper
trains a discriminator to approximate PCS; both options are provided
here behind one callable protocol: ``reward(graph, cone) -> float``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from ..ir import CircuitGraph, GraphView, NUM_TYPES, NodeType
from ..lint.sanitize import current_sanitizer
from ..synth import synthesize
from ..synth.simulate import PatchableSimulator, packed_stimulus_word
from .cones import Cone, canonical_cone, cone_subcircuit


class SynthesisReward:
    """Exact full-design PCS via the synthesis substrate (slow path)."""

    def __init__(self, clock_period: float = 2.0):
        self.clock_period = clock_period
        self.calls = 0
        # A session's generate_batch shares one reward across worker
        # threads; the lock keeps the call counter exact.
        self._lock = threading.Lock()

    def __call__(self, graph: CircuitGraph, cone: Cone | None = None) -> float:
        with self._lock:
            self.calls += 1
        # PCS is area / nodes; the STA pass contributes nothing to it.
        result = synthesize(
            graph, clock_period=self.clock_period, check=False,
            run_timing=False,
        )
        return result.pcs


class Fingerprint:
    """A structural key with its hash computed exactly once.

    Fingerprints are large nested tuples; hashing one on every cache
    lookup costs more than the lookup itself.  Equality still compares
    the full keys, so two states collide iff their structures match.
    """

    __slots__ = ("key", "_hash")

    def __init__(self, key: tuple):
        self.key = key
        self._hash = hash(key)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if isinstance(other, Fingerprint):
            return self._hash == other._hash and self.key == other.key
        return self.key == other

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Fingerprint({self._hash:#x})"


def structural_fingerprint(graph: CircuitGraph) -> Fingerprint:
    """Exact hashable key of a graph's structure.

    Two graphs share a fingerprint iff they have identical node types,
    widths, params (CONST values, slice indices, ...) and ordered parent
    slots -- exactly the state every reward in this package is a
    function of.  Computing it is O(nodes), orders of magnitude cheaper
    than one synthesis call, which is what makes :class:`CachedReward`
    pay off.

    The fingerprint is memoized on the graph instance (search states
    are never mutated after creation, so the hot loop computes each
    state's key once); ``CircuitGraph.set_parent`` / ``clear_parents``
    drop the memo, so in-place rewires cannot serve a stale key.

    Copy-on-write views get an O(overlay) key instead of the O(nodes)
    structure tuple: (base identity, the overlay rows that actually
    differ from the base).  Within one search every state shares one
    frozen base, so equal keys still imply identical structures; the
    only asymmetry is that a view is never conflated with a plain graph
    -- a sound (no false positive) trade the per-cone reward cache is
    happy to make.
    """
    cached = graph.__dict__.get("_structural_fp")
    if cached is None:
        if isinstance(graph, GraphView):
            base = graph._base
            base_rows = base._parents
            diff = tuple(sorted(
                (v, tuple(row)) for v, row in graph._rows.items()
                if row != base_rows[v]
            ))
            # The base object itself anchors the key: graphs hash and
            # compare by identity, which both pins the base alive for
            # as long as any cache entry references it and rules out
            # id-recycling collisions.
            cached = Fingerprint((base, diff))
        else:
            nodes_key = graph.__dict__.get("_structural_fp_nodes")
            if nodes_key is None:
                nodes_key = tuple(
                    (node.type.value, node.width,
                     tuple(sorted(node.params.items())) if node.params else ())
                    for node in graph.nodes()
                )
                graph._structural_fp_nodes = nodes_key
            cached = Fingerprint((nodes_key, graph.parent_rows()))
        graph._structural_fp = cached
    return cached


class CachedReward:
    """Structural memoization wrapper around any ``reward(graph, cone)``.

    The swap action is its own inverse, so MCTS rollouts and the random-
    search ablation revisit states constantly; every revisit would
    otherwise pay a full synthesis (or discriminator) evaluation.  Keys
    combine :func:`structural_fingerprint` with the cone's identity, so
    rewards that condition on the cone stay correct.  ``calls`` counts
    lookups, ``hits`` the ones served from cache; underlying reward
    invocations are ``calls - hits``.
    """

    def __init__(self, reward_fn):
        self.reward_fn = reward_fn
        self.calls = 0
        self.hits = 0
        self._cache: dict[tuple, float] = {}

    def __call__(self, graph: CircuitGraph, cone: Cone | None = None) -> float:
        if cone is None:
            cone_key = None
        else:
            # Cones are fixed for a whole search; memoize their key.
            cone_key = cone.__dict__.get("_cache_key")
            if cone_key is None:
                cone_key = (
                    cone.register, tuple(cone.interior), tuple(cone.boundary)
                )
                cone._cache_key = cone_key
        key = (structural_fingerprint(graph), cone_key)
        self.calls += 1
        value = self._cache.get(key)
        if value is not None:
            self.hits += 1
            return value
        value = self.reward_fn(graph, cone)
        self._cache[key] = value
        return value


# ---------------------------------------------------------------------------
# Batched functional evaluation of candidate cone states
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConeSignature:
    """Packed simulation response of one candidate's driving cone.

    ``words[b]`` holds bit ``b`` of the observed register across all
    stimulus cycles (LSB = cycle 0).  Equal signatures mean the two
    candidates' cones computed the same function on the shared stimulus.
    """

    register: int
    words: tuple[int, ...]
    num_cycles: int

    @property
    def toggles(self) -> int:
        """Output bit flips between consecutive cycles (activity proxy)."""
        mask = (1 << max(self.num_cycles - 1, 0)) - 1
        return sum(
            bin((word ^ (word >> 1)) & mask).count("1") for word in self.words
        )


class ConeBatchEvaluator:
    """Drive many candidate cone states with one shared packed stimulus.

    The MCTS search produces batches of candidate netlists that differ
    only inside one register's driving cone.  This evaluator lowers
    each candidate's cone sub-circuit and runs the bit-parallel simulator
    (:class:`repro.synth.simulate.BitParallelSimulator`) against stimulus
    words that are packed *once per boundary signal* and reused across
    every candidate -- boundary nodes keep their original-graph ids in
    the sub-circuit port names, so the same net sees the same word no
    matter which candidate is being evaluated.

    Lowering is incremental: per register, the previous candidate's
    :class:`repro.incr.DeltaNetlist` is kept and the next candidate's
    sub-circuit is delta-patched onto it (cones are canonicalized so
    equal membership means an identical node layout); a full tracked
    elaboration only happens when the cone membership itself changed.
    Simulation reuses a per-register
    :class:`~repro.synth.simulate.PatchableSimulator`, so a candidate's
    compiled plan is re-linked from the delta's cached opcode rows
    instead of recompiled from a materialized netlist.

    Signatures answer "which candidates compute distinct functions":
    the functional-diversity diagnostic on search traces, the optional
    ``require_functional_equivalence`` hard gate of the search, and the
    ``cone.batch_eval`` microbenchmark kernel in :mod:`repro.bench`.
    """

    def __init__(self, num_cycles: int = 64, seed: int = 0):
        if not 1 <= num_cycles:
            raise ValueError("num_cycles must be positive")
        self.num_cycles = num_cycles
        self.seed = seed
        self._words: dict[tuple[str, int], int] = {}
        #: register -> last candidate's cone DeltaNetlist (patch base).
        self._cone_deltas: dict[int, object] = {}
        #: register -> the cone's PatchableSimulator (plan re-linked per
        #: candidate; never recompiled from scratch).
        self._cone_sims: dict[int, PatchableSimulator] = {}
        self.full_elaborations = 0
        self.patched_elaborations = 0

    # -- shared packed stimulus -----------------------------------------
    def _word_for(self, marker: str, bit: int) -> int:
        key = (marker, bit)
        word = self._words.get(key)
        if word is None:
            word = packed_stimulus_word(
                self.seed, marker, self.num_cycles, salt=bit
            )
            self._words[key] = word
        return word

    # -- evaluation ------------------------------------------------------
    def _cone_simulator(
        self, graph: CircuitGraph, register: int
    ) -> PatchableSimulator:
        """Compiled simulator of ``register``'s cone, plan-patched onto
        the previous candidate's delta whenever membership allows."""
        from ..incr import DeltaNetlist

        sub = cone_subcircuit(graph, canonical_cone(graph, register))
        previous = self._cone_deltas.get(register)
        if previous is None:
            delta = DeltaNetlist.from_graph(sub, check=False)
            self.full_elaborations += 1
        else:
            delta = previous.apply_edit(sub)
            if delta.parent is None:
                # Membership changed: apply_edit already fell back to a
                # full tracked elaboration -- keep it, don't redo it.
                self.full_elaborations += 1
            elif delta.num_nets > 4 * delta.live_nets:
                # Net-id growth along a long patch chain: rebase.
                delta = DeltaNetlist.from_graph(sub, check=False)
                self.full_elaborations += 1
            else:
                self.patched_elaborations += 1
        self._cone_deltas[register] = delta
        sanitizer = current_sanitizer()
        if sanitizer is not None:
            # S003: audit the cone's patch lineage against a fresh
            # elaboration of the same sub-circuit.
            sanitizer.check_delta(delta)
        simulator = self._cone_sims.get(register)
        if simulator is None:
            simulator = self._cone_sims[register] = PatchableSimulator()
        return simulator.patch(delta)

    def signature(self, graph: CircuitGraph, register: int) -> ConeSignature:
        """Simulate ``register``'s driving cone in ``graph``."""
        simulator = self._cone_simulator(graph, register)
        sanitizer = current_sanitizer()
        inputs = {}
        words_by_name: dict[str, int] = {}
        for name, net in simulator.primary_inputs:
            marker, rest = name.rsplit("_", 1)
            bit = int(rest[rest.index("[") + 1:-1])
            word = self._word_for(marker, bit)
            inputs[net] = word
            if sanitizer is not None:
                words_by_name[name] = word
        out_words = simulator.run_packed(inputs, self.num_cycles)
        if sanitizer is not None:
            # S005: the re-linked plan's words vs a fresh compile.
            sanitizer.check_simulator(
                self._cone_deltas[register], words_by_name,
                self.num_cycles, out_words,
            )
        by_bit = sorted(
            (int(name[name.index("[") + 1:-1]), word)
            for name, word in out_words.items()
        )
        return ConeSignature(
            register=register,
            words=tuple(word for _, word in by_bit),
            num_cycles=self.num_cycles,
        )

    def evaluate(
        self, graphs: list[CircuitGraph], register: int
    ) -> list[ConeSignature]:
        """Signatures for a batch of candidate states of one register."""
        return [self.signature(graph, register) for graph in graphs]

    def distinct_functions(
        self, graphs: list[CircuitGraph], register: int
    ) -> int:
        """How many distinct functions the candidates' cones compute."""
        return len({sig.words for sig in self.evaluate(graphs, register)})


def graph_features(graph: CircuitGraph) -> np.ndarray:
    """Global feature vector approximating what synthesis will preserve.

    Captures the drivers of PCS: operator mix, structural duplication
    (identical next-state logic merges), constant saturation, register
    fanout, and how much of the graph is backward-reachable from the
    primary outputs (dead logic is removed wholesale).
    """
    n = graph.num_nodes
    type_hist = np.zeros(NUM_TYPES)
    widths = np.zeros(n)
    parent_sigs: set[tuple] = set()
    self_loops = 0
    for node in graph.nodes():
        type_hist[_type_idx(graph, node.id)] += 1
        widths[node.id] = node.width
        parents = tuple(sorted(graph.filled_parents(node.id)))
        parent_sigs.add((node.type.value, parents))
        if node.id in parents:
            self_loops += 1

    # Backward reachability from outputs (what DCE will keep).
    live: set[int] = set()
    stack = list(graph.outputs())
    while stack:
        v = stack.pop()
        if v in live:
            continue
        live.add(v)
        stack.extend(graph.filled_parents(v))
    regs = graph.registers()
    live_regs = sum(1 for r in regs if r in live)
    reg_fanout = [len(graph.children(r)) for r in regs]

    # Constant-fed fraction: nodes whose parents are all constants fold.
    const_fed = 0
    for node in graph.nodes():
        parents = graph.filled_parents(node.id)
        if parents and all(
            graph.node(p).type is NodeType.CONST for p in parents
        ):
            const_fed += 1

    feats = np.concatenate([
        [n, graph.num_edges / max(n, 1)],
        [len(live) / max(n, 1)],
        [live_regs / max(len(regs), 1) if regs else 1.0],
        [np.mean(reg_fanout) if reg_fanout else 0.0],
        [len(parent_sigs) / max(n, 1)],          # structural diversity
        [const_fed / max(n, 1)],
        [self_loops / max(n, 1)],
        [np.mean(widths), np.max(widths, initial=1.0)],
        type_hist / max(n, 1),
    ])
    return feats


def cone_features(graph: CircuitGraph, cone: Cone) -> np.ndarray:
    """Feature vector describing a register's driving cone (local view)."""
    interior = cone.interior
    nodes = [cone.register, *interior]
    type_hist = np.zeros(NUM_TYPES)
    widths = []
    parent_sigs: set[tuple] = set()
    num_edges = 0
    self_loops = 0
    for v in nodes:
        node = graph.node(v)
        type_hist[_type_idx(graph, v)] += 1
        widths.append(node.width)
        parents = tuple(sorted(graph.filled_parents(v)))
        parent_sigs.add((node.type.value, parents))
        num_edges += len(parents)
        if v in parents:
            self_loops += 1

    size = len(nodes)
    depth = _cone_depth(graph, cone)
    const_boundary = sum(
        1 for v in cone.boundary if graph.node(v).type is NodeType.CONST
    )
    feats = np.concatenate([
        [size, len(cone.boundary), num_edges / max(size, 1)],
        [depth, self_loops / max(size, 1)],
        [len(parent_sigs) / max(size, 1)],
        [const_boundary / max(len(cone.boundary), 1)],
        [np.mean(widths), np.max(widths)],
        type_hist / max(size, 1),
    ])
    return feats


def _type_idx(graph: CircuitGraph, node_id: int) -> int:
    from ..ir import type_index

    return type_index(graph.node(node_id).type)


def _cone_depth(graph: CircuitGraph, cone: Cone) -> int:
    """Longest parent-to-child path length inside the cone interior."""
    inside = set(cone.interior)
    memo: dict[int, int] = {}

    def depth_of(v: int) -> int:
        stack = [(v, 0)]
        while stack:
            node, state = stack.pop()
            if node in memo:
                continue
            parents = [p for p in graph.filled_parents(node) if p in inside]
            if state == 0:
                stack.append((node, 1))
                stack.extend((p, 0) for p in parents if p not in memo)
            else:
                memo[node] = 1 + max((memo[p] for p in parents), default=0)
        return memo[v]

    return max((depth_of(v) for v in [*cone.interior, cone.register]), default=0)


#: Dimension of :func:`cone_features` vectors.
CONE_FEATURE_DIM = 9 + NUM_TYPES

#: Dimension of :func:`graph_features` vectors.
GRAPH_FEATURE_DIM = 10 + NUM_TYPES
