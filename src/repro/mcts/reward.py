"""Reward models for the MCTS search: exact synthesis PCS or a learned
discriminator approximation.

The paper's reward is the post-synthesis circuit size (PCS): post-
synthesis area divided by the pre-synthesis node count, computed on the
whole design state (each MCTS state is a full adjacency matrix).  A
larger PCS means less logic was optimized away, i.e. less redundancy.
Because calling synthesis inside the search loop is slow, the paper
trains a discriminator to approximate PCS; both options are provided
here behind one callable protocol: ``reward(graph, cone) -> float``.
"""

from __future__ import annotations

import threading

import numpy as np

from ..ir import CircuitGraph, NUM_TYPES, NodeType, is_sequential
from ..synth import synthesize
from .cones import Cone


class SynthesisReward:
    """Exact full-design PCS via the synthesis substrate (slow path)."""

    def __init__(self, clock_period: float = 2.0):
        self.clock_period = clock_period
        self.calls = 0
        # A session's generate_batch shares one reward across worker
        # threads; the lock keeps the call counter exact.
        self._lock = threading.Lock()

    def __call__(self, graph: CircuitGraph, cone: Cone | None = None) -> float:
        with self._lock:
            self.calls += 1
        result = synthesize(graph, clock_period=self.clock_period, check=False)
        return result.pcs


def graph_features(graph: CircuitGraph) -> np.ndarray:
    """Global feature vector approximating what synthesis will preserve.

    Captures the drivers of PCS: operator mix, structural duplication
    (identical next-state logic merges), constant saturation, register
    fanout, and how much of the graph is backward-reachable from the
    primary outputs (dead logic is removed wholesale).
    """
    n = graph.num_nodes
    type_hist = np.zeros(NUM_TYPES)
    widths = np.zeros(n)
    parent_sigs: set[tuple] = set()
    self_loops = 0
    for node in graph.nodes():
        type_hist[_type_idx(graph, node.id)] += 1
        widths[node.id] = node.width
        parents = tuple(sorted(graph.filled_parents(node.id)))
        parent_sigs.add((node.type.value, parents))
        if node.id in parents:
            self_loops += 1

    # Backward reachability from outputs (what DCE will keep).
    live: set[int] = set()
    stack = list(graph.outputs())
    while stack:
        v = stack.pop()
        if v in live:
            continue
        live.add(v)
        stack.extend(graph.filled_parents(v))
    regs = graph.registers()
    live_regs = sum(1 for r in regs if r in live)
    reg_fanout = [len(graph.children(r)) for r in regs]

    # Constant-fed fraction: nodes whose parents are all constants fold.
    const_fed = 0
    for node in graph.nodes():
        parents = graph.filled_parents(node.id)
        if parents and all(
            graph.node(p).type is NodeType.CONST for p in parents
        ):
            const_fed += 1

    feats = np.concatenate([
        [n, graph.num_edges / max(n, 1)],
        [len(live) / max(n, 1)],
        [live_regs / max(len(regs), 1) if regs else 1.0],
        [np.mean(reg_fanout) if reg_fanout else 0.0],
        [len(parent_sigs) / max(n, 1)],          # structural diversity
        [const_fed / max(n, 1)],
        [self_loops / max(n, 1)],
        [np.mean(widths), np.max(widths, initial=1.0)],
        type_hist / max(n, 1),
    ])
    return feats


def cone_features(graph: CircuitGraph, cone: Cone) -> np.ndarray:
    """Feature vector describing a register's driving cone (local view)."""
    interior = cone.interior
    nodes = [cone.register, *interior]
    type_hist = np.zeros(NUM_TYPES)
    widths = []
    parent_sigs: set[tuple] = set()
    num_edges = 0
    self_loops = 0
    for v in nodes:
        node = graph.node(v)
        type_hist[_type_idx(graph, v)] += 1
        widths.append(node.width)
        parents = tuple(sorted(graph.filled_parents(v)))
        parent_sigs.add((node.type.value, parents))
        num_edges += len(parents)
        if v in parents:
            self_loops += 1

    size = len(nodes)
    depth = _cone_depth(graph, cone)
    const_boundary = sum(
        1 for v in cone.boundary if graph.node(v).type is NodeType.CONST
    )
    feats = np.concatenate([
        [size, len(cone.boundary), num_edges / max(size, 1)],
        [depth, self_loops / max(size, 1)],
        [len(parent_sigs) / max(size, 1)],
        [const_boundary / max(len(cone.boundary), 1)],
        [np.mean(widths), np.max(widths)],
        type_hist / max(size, 1),
    ])
    return feats


def _type_idx(graph: CircuitGraph, node_id: int) -> int:
    from ..ir import type_index

    return type_index(graph.node(node_id).type)


def _cone_depth(graph: CircuitGraph, cone: Cone) -> int:
    """Longest parent-to-child path length inside the cone interior."""
    inside = set(cone.interior)
    memo: dict[int, int] = {}

    def depth_of(v: int) -> int:
        stack = [(v, 0)]
        while stack:
            node, state = stack.pop()
            if node in memo:
                continue
            parents = [p for p in graph.filled_parents(node) if p in inside]
            if state == 0:
                stack.append((node, 1))
                stack.extend((p, 0) for p in parents if p not in memo)
            else:
                memo[node] = 1 + max((memo[p] for p in parents), default=0)
        return memo[v]

    return max((depth_of(v) for v in [*cone.interior, cone.register]), default=0)


#: Dimension of :func:`cone_features` vectors.
CONE_FEATURE_DIM = 9 + NUM_TYPES

#: Dimension of :func:`graph_features` vectors.
GRAPH_FEATURE_DIM = 10 + NUM_TYPES
