"""Learned PCS discriminator: the paper's fast reward approximation.

"To accelerate the evaluation process, we replaced the slow synthesis
tool with a trained discriminator to approximate the PCS."  The
discriminator is an MLP regressor over :func:`~repro.mcts.reward.graph_features`
trained on synthesis-labelled design states sampled from random swap
trajectories starting at the designs to be optimized.
"""

from __future__ import annotations

import numpy as np

from ..ir import CircuitGraph
from ..nn import MLP, Adam, Tensor, mse
from .actions import apply_swap, sample_swaps
from .cones import Cone, all_cones
from .reward import GRAPH_FEATURE_DIM, SynthesisReward, graph_features


class PCSDiscriminator:
    """MLP regressor: global design features -> predicted PCS."""

    def __init__(self, hidden: int = 32, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.net = MLP([GRAPH_FEATURE_DIM, hidden, hidden, 1], rng)
        self._mean = np.zeros(GRAPH_FEATURE_DIM)
        self._std = np.ones(GRAPH_FEATURE_DIM)
        self.trained = False

    # -- training ---------------------------------------------------------
    def fit(self, features: np.ndarray, targets: np.ndarray,
            epochs: int = 300, lr: float = 5e-3) -> list[float]:
        if len(features) != len(targets) or len(features) == 0:
            raise ValueError("need matching, non-empty features and targets")
        self._mean = features.mean(axis=0)
        self._std = np.maximum(features.std(axis=0), 1e-6)
        x = (features - self._mean) / self._std
        y = np.asarray(targets, dtype=np.float64)
        opt = Adam(self.net.parameters(), lr=lr)
        losses = []
        for _ in range(epochs):
            opt.zero_grad()
            pred = self.net(Tensor(x)).reshape(len(y))
            loss = mse(pred, y)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        self.trained = True
        return losses

    # -- inference --------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        x = (np.atleast_2d(features) - self._mean) / self._std
        out = x
        for layer in self.net.layers[:-1]:
            out = np.maximum(out @ layer.weight.data + layer.bias.data, 0.0)
        last = self.net.layers[-1]
        return (out @ last.weight.data + last.bias.data)[:, 0]

    def __call__(self, graph: CircuitGraph, cone: Cone | None = None) -> float:
        return float(self.predict(graph_features(graph))[0])


def collect_training_set(
    graphs: list[CircuitGraph],
    clock_period: float = 2.0,
    perturbations: int = 16,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Synthesis-labelled (features, pcs) pairs from designs and random
    swap perturbations along the trajectories MCTS will explore."""
    rng = np.random.default_rng(seed)
    oracle = SynthesisReward(clock_period)
    feats: list[np.ndarray] = []
    targets: list[float] = []
    for graph in graphs:
        feats.append(graph_features(graph))
        targets.append(oracle(graph))
        cones = [c for c in all_cones(graph) if c.interior]
        if not cones:
            continue
        state = graph
        for k in range(perturbations):
            cone = cones[k % len(cones)]
            swaps = sample_swaps(
                state, [cone.register, *cone.interior], rng, 1
            )
            if not swaps:
                continue
            nxt = apply_swap(state, swaps[0])
            if nxt is None:
                continue
            state = nxt
            feats.append(graph_features(state))
            targets.append(oracle(state))
    if not feats:
        raise ValueError("no designs provided")
    return np.array(feats), np.array(targets)


def train_discriminator(
    graphs: list[CircuitGraph],
    clock_period: float = 2.0,
    perturbations: int = 16,
    epochs: int = 300,
    seed: int = 0,
) -> PCSDiscriminator:
    """Convenience: collect a labelled set and fit the discriminator."""
    features, targets = collect_training_set(
        graphs, clock_period, perturbations, seed
    )
    disc = PCSDiscriminator(seed=seed)
    disc.fit(features, targets, epochs=epochs)
    return disc
