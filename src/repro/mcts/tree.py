"""Monte-Carlo tree search over swap actions (paper Section VI-B).

Each tree node holds a circuit state (an adjacency configuration reached
by swaps).  Selection uses UCB1 with the paper's exploration constant
sqrt(2).  Because the objective is the best state *encountered* rather
than a terminal value, the simulation reward is the maximum state reward
along the rollout path, and backpropagation folds that maximum into the
running means Q(S, a) -- the paper's modification of vanilla MCTS.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..ir import CircuitGraph
from .actions import Swap, SwapIndex, apply_swap
from .cones import Cone

RewardFn = Callable[[CircuitGraph, Cone], float]


@dataclass
class _TreeNode:
    graph: CircuitGraph
    reward: float
    depth: int
    parent: "._TreeNode | None" = None
    children: dict[Swap, "_TreeNode"] = field(default_factory=dict)
    untried: list[Swap] = field(default_factory=list)
    visits: int = 0
    total: float = 0.0

    @property
    def q_value(self) -> float:
        return self.total / self.visits if self.visits else 0.0


@dataclass
class ConeSearchResult:
    best_graph: CircuitGraph
    best_reward: float
    initial_reward: float
    simulations: int
    rewards_seen: list[float] = field(default_factory=list)

    @property
    def improved(self) -> bool:
        return self.best_reward > self.initial_reward + 1e-12


class MCTSOptimizer:
    """Cone-level MCTS with UCB1 selection and max-reward backprop."""

    def __init__(
        self,
        reward_fn: RewardFn,
        num_simulations: int = 500,
        max_depth: int = 10,
        branching: int = 8,
        exploration: float = math.sqrt(2.0),
        seed: int = 0,
    ):
        self.reward_fn = reward_fn
        self.num_simulations = num_simulations
        self.max_depth = max_depth
        self.branching = branching
        self.exploration = exploration
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def optimize_cone(self, graph: CircuitGraph, cone: Cone) -> ConeSearchResult:
        # One persistent swap index for the whole cone search: successor
        # states inherit and patch their predecessor's cone-local edge
        # list instead of re-scanning every edge per sample call.
        index = SwapIndex([cone.register, *cone.interior])
        root = self._make_node(graph, cone, depth=0, index=index)
        best_graph, best_reward = root.graph, root.reward
        rewards_seen = [root.reward]

        for _ in range(self.num_simulations):
            node = root
            path = [node]
            # Selection: descend through fully expanded nodes via UCB1.
            while not node.untried and node.children and node.depth < self.max_depth:
                node = self._select_ucb1(node)
                path.append(node)
            # Expansion.
            if node.untried and node.depth < self.max_depth:
                swap = node.untried.pop(
                    int(self.rng.integers(0, len(node.untried)))
                )
                child_graph = apply_swap(node.graph, swap)
                if child_graph is not None:
                    child = self._make_node(
                        child_graph, cone, node.depth + 1, index
                    )
                    child.parent = node
                    node.children[swap] = child
                    node = child
                    path.append(node)
            # Simulation: random rollout, tracking the max reward.
            max_reward = max(n.reward for n in path)
            rollout_graph = node.graph
            for _ in range(self.max_depth - node.depth):
                swaps = index.sample(rollout_graph, self.rng, 1)
                if not swaps:
                    break
                nxt = apply_swap(rollout_graph, swaps[0])
                if nxt is None:
                    continue
                rollout_graph = nxt
                r = self.reward_fn(rollout_graph, cone)
                rewards_seen.append(r)
                if r > max_reward:
                    max_reward = r
                if r > best_reward:
                    best_reward, best_graph = r, rollout_graph
            # Track the best expanded state too.
            for n in path:
                rewards_seen.append(n.reward)
                if n.reward > best_reward:
                    best_reward, best_graph = n.reward, n.graph
            # Backpropagation with Reward_max.
            for n in path:
                n.visits += 1
                n.total += max_reward

        return ConeSearchResult(
            best_graph=best_graph,
            best_reward=best_reward,
            initial_reward=root.reward,
            simulations=self.num_simulations,
            rewards_seen=rewards_seen,
        )

    # ------------------------------------------------------------------
    def _make_node(
        self,
        graph: CircuitGraph,
        cone: Cone,
        depth: int,
        index: SwapIndex,
    ) -> _TreeNode:
        reward = self.reward_fn(graph, cone)
        untried = index.sample(graph, self.rng, self.branching)
        return _TreeNode(graph=graph, reward=reward, depth=depth, untried=untried)

    def _select_ucb1(self, node: _TreeNode) -> _TreeNode:
        log_n = math.log(max(node.visits, 1))
        best_child, best_score = None, -math.inf
        for child in node.children.values():
            if child.visits == 0:
                return child
            score = child.q_value + self.exploration * math.sqrt(
                log_n / child.visits
            )
            if score > best_score:
                best_score, best_child = score, child
        assert best_child is not None
        return best_child
