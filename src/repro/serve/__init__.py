"""Generation-as-a-service: async job server over the typed requests.

The package splits along the gridworks proactor shape: a persistent
:class:`JobQueue` ledger, a multi-process :class:`WorkerPool` sharing
the content-addressed artifact store, the asyncio
:class:`ReproServer` front end (HTTP + websocket push), the
:class:`ServeClient` session-style helpers, and the ``repro top`` live
console.  All wire shapes are the typed messages of
:mod:`repro.serve.protocol`.
"""

from .client import ServeClient, ServeError
from .protocol import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobDone,
    JobFailed,
    JobProgress,
    JobStarted,
    WorkerReady,
    parse_event,
    request_key,
)
from .queue import JobQueue
from .server import ReproServer
from .top import render_frame, run_top
from .workers import WorkerPool

__all__ = [
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "Job",
    "JobDone",
    "JobFailed",
    "JobProgress",
    "JobStarted",
    "JobQueue",
    "ReproServer",
    "ServeClient",
    "ServeError",
    "WorkerPool",
    "WorkerReady",
    "parse_event",
    "render_frame",
    "request_key",
    "run_top",
]
