"""`repro serve`: the asyncio generation-as-a-service front end.

Stdlib-only HTTP/1.1 + websocket server over the typed-request
substrate:

* ``POST /jobs``            -- submit a :class:`~repro.api.GenerateRequest`
  (JSON body; optionally ``{"request": {...}, "dedupe": false}``).
  Identical requests (config + request payload, minus ``workers``) are
  **deduplicated**: an in-flight twin returns the existing job id, a
  completed twin is served from the content-addressed artifact store --
  in both cases without dispatching a worker.
* ``GET /jobs``             -- job listing (summaries, submit order).
* ``GET /jobs/<id>``        -- full job record.
* ``GET /jobs/<id>/result`` -- the finished ``GenerateResult`` JSON.
* ``GET /jobs/<id>/stream`` -- websocket: status frame, then one
  ``progress`` frame per generated circuit (with per-phase timings from
  :class:`~repro.api.GenerationRecord`), then a terminal ``done`` /
  ``failed`` frame.  Late subscribers get the full event history first.
* ``GET /stats``, ``GET /healthz``, ``POST /shutdown``.

Work runs on a multi-process :class:`~repro.serve.workers.WorkerPool`
over a persistent :class:`~repro.serve.queue.JobQueue`; on boot, jobs
the previous server life left ``queued``/``running`` are replayed.
Determinism contract: artifacts depend only on (scenario config,
request) -- never on pool size, dispatch order, or replay -- so a
4-process pool, a restart, and sequential in-process
:meth:`~repro.api.Session.generate` all produce bit-identical graphs.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import threading
import time

from ..obs import get_logger, registry
from .protocol import (
    DONE,
    FAILED,
    TERMINAL_EVENTS,
    Job,
    JobDone,
    JobFailed,
    JobProgress,
    JobStarted,
    WorkerReady,
    parse_event,
    request_key,
    trace_key,
)
from .queue import JobQueue
from .workers import WorkerPool

logger = get_logger(__name__)

_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"
_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            409: "Conflict", 500: "Internal Server Error"}


def _ws_accept(key: str) -> str:
    digest = hashlib.sha1((key + _WS_GUID).encode()).digest()
    return base64.b64encode(digest).decode()


def _ws_text_frame(payload: bytes) -> bytes:
    """One unmasked server->client text frame (FIN set)."""
    header = bytearray([0x81])
    n = len(payload)
    if n < 126:
        header.append(n)
    elif n < 1 << 16:
        header.append(126)
        header += n.to_bytes(2, "big")
    else:
        header.append(127)
        header += n.to_bytes(8, "big")
    return bytes(header) + payload


_WS_CLOSE_FRAME = bytes([0x88, 0x00])


def _http_response(
    status: int,
    payload: "dict | str",
    content_type: str = "application/json",
) -> bytes:
    if isinstance(payload, str):
        body = payload.encode()
    else:
        body = json.dumps(payload).encode()
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    ).encode()
    return head + body


async def _read_http_request(reader: asyncio.StreamReader):
    """Parse one request: (method, path, headers, body)."""
    blob = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), timeout=30)
    lines = blob.decode("latin1").split("\r\n")
    method, path, _ = lines[0].split(" ", 2)
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if ":" in line:
            name, value = line.split(":", 1)
            headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or 0)
    body = await reader.readexactly(length) if length else b""
    return method.upper(), path, headers, body


class ReproServer:
    """The service: queue + worker pool + asyncio HTTP/websocket loop."""

    def __init__(
        self,
        *,
        config=None,
        preset: str = "smoke",
        seed: int | None = None,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir=None,
        queue_dir=None,
    ):
        from ..api import ArtifactStore
        from ..api.presets import resolve_preset

        self.config = config if config is not None else resolve_preset(
            preset, seed=seed
        )
        self._config_payload = self.config.to_dict()
        self.store = ArtifactStore(cache_dir)
        self.queue = JobQueue(queue_dir or (self.store.root / "serve-queue"))
        # Workers share the server's exact store location even when it
        # came from $REPRO_CACHE_DIR -- content-addressing does the rest.
        self.pool = WorkerPool(
            self._config_payload,
            cache_dir=str(self.store.root),
            workers=workers,
        )
        self.host = host
        self.port = port
        self.dedup_hits = 0
        self.workers_ready = 0
        #: Per-worker lifecycle state: ``starting`` (process launched,
        #: session still fitting) -> ``idle`` <-> ``busy``.
        self._worker_state: dict[int, str] = {
            worker_id: "starting" for worker_id in range(self.pool.workers)
        }
        self._by_key: dict[str, str] = {}
        self._history: dict[str, list[dict]] = {}
        self._subscribers: dict[str, list[asyncio.Queue]] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._pump: threading.Thread | None = None
        self._closing = False
        self._started_at = time.time()

    # -- lifecycle -------------------------------------------------------
    async def run(self, ready: threading.Event | None = None) -> None:
        """Serve until ``/shutdown`` (or :meth:`stop`) fires."""
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        replay = self.queue.load()
        for job in self.queue.jobs():
            if job.state != FAILED:
                self._by_key.setdefault(job.result_key, job.job_id)
        self.pool.start()
        for job in replay:
            self.pool.dispatch(job.job_id, job.request, job.result_key)
        self._pump = threading.Thread(
            target=self._pump_events, daemon=True, name="repro-serve-pump"
        )
        self._pump.start()
        server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        if ready is not None:
            ready.set()
        try:
            async with server:
                await self._shutdown.wait()
        finally:
            self._closing = True
            self.pool.stop()

    def start_background(self, timeout: float = 180.0) -> "ReproServer":
        """Boot on a daemon thread; returns once the port is bound."""
        ready = threading.Event()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self.run(ready=ready)),
            daemon=True,
            name="repro-serve",
        )
        self._thread.start()
        if not ready.wait(timeout):
            raise RuntimeError("server failed to start within timeout")
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Clean shutdown: stop accepting, drain workers, join."""
        if self._loop is not None and self._shutdown is not None:
            try:
                self._loop.call_soon_threadsafe(self._shutdown.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def kill(self) -> None:
        """Crash simulation for tests: terminate workers mid-job and
        stop the loop *without* letting in-flight jobs reach a terminal
        state -- the persisted ledger keeps them ``running``/``queued``
        for the next boot's replay."""
        self._closing = True
        for proc in list(self.pool._procs):
            proc.terminate()
        if self._loop is not None and self._shutdown is not None:
            try:
                self._loop.call_soon_threadsafe(self._shutdown.set)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=15.0)
            self._thread = None

    # -- worker events ---------------------------------------------------
    def _pump_events(self) -> None:
        """Bridge the multiprocessing event channel onto the loop."""
        while not self._closing:
            event = self.pool.poll_event(timeout=0.2)
            if event is None:
                continue
            try:
                assert self._loop is not None
                self._loop.call_soon_threadsafe(self._on_event, event)
            except RuntimeError:
                break  # loop closed while shutting down

    def _on_event(self, data: dict) -> None:
        event = parse_event(data)
        reg = registry()
        if isinstance(event, WorkerReady):
            self.workers_ready += 1
            self._worker_state[event.worker] = "idle"
            logger.info("worker %d ready", event.worker)
            return
        if isinstance(event, JobStarted):
            self.queue.mark_running(event.job_id, event.worker)
            self._worker_state[event.worker] = "busy"
            logger.debug("job %s started on worker %d",
                         event.job_id, event.worker)
        elif isinstance(event, JobProgress):
            self.queue.mark_progress(event.job_id, event.index + 1)
        elif isinstance(event, JobDone):
            self.queue.mark_done(event.job_id)
            self._mark_worker_idle(event.job_id)
            reg.counter("serve_jobs_done_total").inc()
            done_job = self.queue.get(event.job_id)
            if done_job is not None:
                reg.counter("serve_records_total").inc(
                    float(done_job.records_done)
                )
            reg.histogram("serve_job_seconds").observe(event.elapsed)
            logger.info("job %s done in %.2fs", event.job_id, event.elapsed)
        elif isinstance(event, JobFailed):
            self.queue.mark_failed(event.job_id, event.error)
            self._mark_worker_idle(event.job_id)
            reg.counter("serve_jobs_failed_total").inc()
            logger.warning("job %s failed: %s",
                           event.job_id, event.error.splitlines()[0])
        reg.gauge("serve_queue_depth").set(self.queue.depth())
        job_id = data.get("job_id")
        if job_id is None:
            return
        self._history.setdefault(job_id, []).append(data)
        for sub in self._subscribers.get(job_id, []):
            sub.put_nowait(data)

    def _mark_worker_idle(self, job_id: str) -> None:
        """Flip the worker that ran ``job_id`` back to idle (terminal
        events carry no worker id; the queue's job record does)."""
        job = self.queue.get(job_id)
        if job is not None and job.worker is not None:
            self._worker_state[job.worker] = "idle"

    # -- submission ------------------------------------------------------
    def submit(self, payload: dict) -> tuple[Job, bool]:
        """Validate, deduplicate, and (if fresh) dispatch one request.

        Returns ``(job, deduplicated)``.  Runs on the event loop thread,
        so the check-then-register sequence is race-free.
        """
        from ..api import GenerateRequest

        dedupe = True
        raw = payload
        if isinstance(payload, dict) and "request" in payload:
            raw = payload["request"]
            dedupe = bool(payload.get("dedupe", True))
        # Round-trip through the dataclass: validates the payload and
        # normalizes defaults so equivalent submits fingerprint equal.
        request = GenerateRequest.from_dict(dict(raw)).to_dict()
        key = request_key(self._config_payload, request)
        if dedupe:
            existing_id = self._by_key.get(key)
            existing = (
                self.queue.get(existing_id) if existing_id is not None
                else None
            )
            if existing is not None and existing.state != FAILED:
                self.dedup_hits += 1
                registry().counter("serve_jobs_deduped_total").inc()
                return existing, True
            if self.store.load_json(key) is not None:
                # Completed in an earlier server life: answer from the
                # artifact store, zero worker dispatch.
                job = self.queue.submit(request, key, state=DONE,
                                        from_cache=True)
                self._by_key[key] = job.job_id
                self.dedup_hits += 1
                registry().counter("serve_jobs_deduped_total").inc()
                return job, True
        job = self.queue.submit(request, key)
        self._by_key[key] = job.job_id
        self.pool.dispatch(job.job_id, job.request, job.result_key)
        registry().counter("serve_jobs_dispatched_total").inc()
        registry().gauge("serve_queue_depth").set(self.queue.depth())
        return job, False

    def stats(self) -> dict:
        from ..api.store import fingerprint

        reg = registry()
        job_seconds = reg.get("serve_job_seconds")
        done = reg.value("serve_jobs_done_total")
        busy = sum(
            1 for state in self._worker_state.values() if state == "busy"
        )
        uptime = time.time() - self._started_at
        return {
            "uptime": uptime,
            "config_fingerprint": fingerprint(self._config_payload)[:12],
            "workers": self.pool.workers,
            "workers_alive": self.pool.alive(),
            "workers_ready": self.workers_ready,
            "workers_busy": busy,
            "workers_idle": max(self.workers_ready - busy, 0),
            "worker_states": {
                str(worker_id): state
                for worker_id, state in sorted(self._worker_state.items())
            },
            "queue": self.queue.counts(),
            "depth": self.queue.depth(),
            "dispatched": self.pool.dispatched,
            "dedup_hits": self.dedup_hits,
            "jobs": {
                "dispatched": reg.value("serve_jobs_dispatched_total"),
                "deduped": reg.value("serve_jobs_deduped_total"),
                "done": done,
                "failed": reg.value("serve_jobs_failed_total"),
                "records": reg.value("serve_records_total"),
            },
            "throughput": {
                "jobs_per_minute": 60.0 * done / uptime if uptime > 0
                else 0.0,
                "p50_seconds": job_seconds.quantile(0.50)
                if job_seconds is not None else None,
                "p99_seconds": job_seconds.quantile(0.99)
                if job_seconds is not None else None,
            },
            "dedup_rate": (
                self.dedup_hits / (self.dedup_hits + self.pool.dispatched)
                if (self.dedup_hits + self.pool.dispatched) else 0.0
            ),
            "store": {
                "root": str(self.store.root),
                "hits": self.store.hits,
                "misses": self.store.misses,
            },
        }

    # -- HTTP ------------------------------------------------------------
    async def _handle_conn(self, reader, writer) -> None:
        try:
            try:
                method, path, headers, body = await _read_http_request(reader)
            except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                    ValueError):
                return
            if (headers.get("upgrade", "").lower() == "websocket"
                    and path.startswith("/jobs/")
                    and path.endswith("/stream")):
                job_id = path[len("/jobs/"):-len("/stream")]
                await self._handle_stream(job_id, headers, reader, writer)
                return
            routed = self._route(method, path, body)
            content_type = (
                routed[2] if len(routed) > 2 else "application/json"
            )
            writer.write(_http_response(routed[0], routed[1], content_type))
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _route(self, method: str, path: str, body: bytes):
        if method == "GET" and path == "/healthz":
            return 200, {"ok": True}
        if method == "GET" and path == "/stats":
            return 200, self.stats()
        if method == "GET" and path == "/metrics":
            return (
                200,
                registry().render_prometheus(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if method == "GET" and path == "/jobs":
            return 200, {"jobs": [j.summary() for j in self.queue.jobs()]}
        if method == "POST" and path == "/jobs":
            try:
                payload = json.loads(body.decode() or "{}")
                job, deduplicated = self.submit(payload)
            except (ValueError, TypeError, KeyError) as exc:
                return 400, {"error": f"bad request: {exc}"}
            return 200, {
                "job_id": job.job_id,
                "state": job.state,
                "deduplicated": deduplicated,
                "result_key": job.result_key,
            }
        if method == "POST" and path == "/shutdown":
            # Let the response flush before the loop unwinds.
            assert self._loop is not None and self._shutdown is not None
            self._loop.call_later(0.05, self._shutdown.set)
            return 200, {"ok": True, "shutting_down": True}
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            if method == "GET" and rest.endswith("/trace"):
                job = self.queue.get(rest[:-len("/trace")])
                if job is None:
                    return 404, {"error": "unknown job"}
                trace = self.store.load_json(trace_key(job.result_key))
                if trace is None:
                    return 404, {
                        "error": "no trace for this job (submit with "
                                 '{"trace": true} to record one)',
                    }
                return 200, trace
            if method == "GET" and rest.endswith("/result"):
                job = self.queue.get(rest[:-len("/result")])
                if job is None:
                    return 404, {"error": "unknown job"}
                if job.state == FAILED:
                    return 409, {"error": job.error, "state": job.state}
                if job.state != DONE:
                    return 409, {"error": "job not finished",
                                 "state": job.state}
                result = self.store.load_json(job.result_key)
                if result is None:
                    return 500, {"error": "result artifact missing"}
                return 200, result
            if method == "GET":
                job = self.queue.get(rest)
                if job is None:
                    return 404, {"error": "unknown job"}
                return 200, job.to_dict()
        return 404, {"error": f"no route {method} {path}"}

    # -- websocket streaming ---------------------------------------------
    async def _handle_stream(self, job_id, headers, reader, writer) -> None:
        job = self.queue.get(job_id)
        ws_key = headers.get("sec-websocket-key")
        if job is None or not ws_key:
            writer.write(_http_response(404, {"error": "unknown job"}))
            await writer.drain()
            return
        writer.write((
            "HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Accept: {_ws_accept(ws_key)}\r\n\r\n"
        ).encode())
        await writer.drain()

        async def send(event: dict) -> None:
            writer.write(_ws_text_frame(json.dumps(event).encode()))
            await writer.drain()

        # Snapshot + subscribe without an await in between: _on_event
        # runs on this same loop, so no event can fall in the gap.
        history = list(self._history.get(job_id, []))
        sub: asyncio.Queue = asyncio.Queue()
        self._subscribers.setdefault(job_id, []).append(sub)
        try:
            await send({"type": "status", **job.summary()})
            terminal_seen = False
            for event in history:
                await send(event)
                terminal_seen = event["type"] in TERMINAL_EVENTS
                if terminal_seen:
                    break
            if not terminal_seen and job.state in (DONE, FAILED):
                # Finished in an earlier server life (or from cache):
                # there is no live history, synthesize the terminal frame.
                if job.state == DONE:
                    await send(JobDone(
                        job_id=job.job_id,
                        result_key=job.result_key,
                        elapsed=job.elapsed or 0.0,
                    ).to_dict())
                else:
                    await send(JobFailed(
                        job_id=job.job_id, error=job.error or "unknown"
                    ).to_dict())
                terminal_seen = True
            while not terminal_seen:
                event = await asyncio.wait_for(sub.get(), timeout=600)
                await send(event)
                terminal_seen = event["type"] in TERMINAL_EVENTS
            writer.write(_WS_CLOSE_FRAME)
            await writer.drain()
        except (ConnectionError, OSError, asyncio.TimeoutError):
            pass  # client went away (or stalled job): drop the stream
        finally:
            subscribers = self._subscribers.get(job_id, [])
            if sub in subscribers:
                subscribers.remove(sub)
