"""Persistent on-disk job queue.

One JSON file per job (``job-<seq>-<id>.json``), written atomically
(same-directory temp file + fsync + ``os.replace``) on every state
transition, so a killed server never leaves a half-written record.  On
restart :meth:`JobQueue.load` rehydrates every job; entries that were
``queued`` or ``running`` at kill time are reset to ``queued`` and
returned in original submit order for replay -- re-running them is safe
because job artifacts are content-addressed and generation is
deterministic in the request seed, so a replayed job writes the same
bytes the interrupted run would have.

Only the server process touches the queue directory; workers report
progress over the :class:`~repro.serve.workers.WorkerPool` event
channel and never write job files.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time

from .protocol import DONE, FAILED, QUEUED, RUNNING, Job, new_job_id


def _write_atomic(path: pathlib.Path, payload: dict) -> None:
    """Durably install ``payload`` as JSON at ``path``."""
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.stem,
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


class JobQueue:
    """Crash-safe job ledger: every transition is one atomic file write."""

    def __init__(self, root: str | os.PathLike):
        self.root = pathlib.Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self._jobs: dict[str, Job] = {}
        self._seq = 0

    # -- persistence -----------------------------------------------------
    def _path(self, job: Job) -> pathlib.Path:
        return self.root / f"job-{job.seq:08d}-{job.job_id}.json"

    def persist(self, job: Job) -> None:
        _write_atomic(self._path(job), job.to_dict())

    def load(self) -> list[Job]:
        """Rehydrate the ledger; returns replayable jobs in submit order.

        Jobs found ``queued`` or ``running`` are reset to ``queued``
        (their progress counters cleared) -- a ``running`` entry means
        the previous server died mid-job, and determinism makes
        re-running it equivalent to having let it finish.
        """
        self._jobs.clear()
        replay: list[Job] = []
        for path in sorted(self.root.glob("job-*.json")):
            try:
                job = Job.from_dict(json.loads(path.read_text()))
            except (ValueError, KeyError):
                # A file from a mid-write crash of a pre-atomic version,
                # or foreign junk: skip rather than wedge the boot.
                continue
            if job.state in (QUEUED, RUNNING):
                job.state = QUEUED
                job.started_at = None
                job.worker = None
                job.records_done = 0
                self.persist(job)
                replay.append(job)
            self._jobs[job.job_id] = job
            self._seq = max(self._seq, job.seq + 1)
        replay.sort(key=lambda j: j.seq)
        return replay

    # -- submission and transitions --------------------------------------
    def submit(self, request: dict, result_key: str, *,
               state: str = QUEUED, from_cache: bool = False) -> Job:
        job = Job(
            job_id=new_job_id(),
            seq=self._seq,
            request=dict(request),
            result_key=result_key,
            state=state,
            submitted_at=time.time(),
            from_cache=from_cache,
        )
        if state == DONE:
            job.finished_at = job.submitted_at
        self._seq += 1
        self._jobs[job.job_id] = job
        self.persist(job)
        return job

    def mark_running(self, job_id: str, worker: int) -> Job | None:
        job = self._jobs.get(job_id)
        if job is None:
            return None
        job.state = RUNNING
        job.worker = worker
        job.started_at = time.time()
        self.persist(job)
        return job

    def mark_progress(self, job_id: str, records_done: int) -> Job | None:
        job = self._jobs.get(job_id)
        if job is None:
            return None
        job.records_done = records_done
        self.persist(job)
        return job

    def mark_done(self, job_id: str) -> Job | None:
        job = self._jobs.get(job_id)
        if job is None:
            return None
        job.state = DONE
        job.records_done = job.count
        job.finished_at = time.time()
        self.persist(job)
        return job

    def mark_failed(self, job_id: str, error: str) -> Job | None:
        job = self._jobs.get(job_id)
        if job is None:
            return None
        job.state = FAILED
        job.error = error
        job.finished_at = time.time()
        self.persist(job)
        return job

    # -- queries ---------------------------------------------------------
    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """All known jobs in submit order."""
        return sorted(self._jobs.values(), key=lambda j: j.seq)

    def depth(self) -> int:
        """Jobs waiting for (or on) a worker."""
        return sum(
            1 for j in self._jobs.values() if j.state in (QUEUED, RUNNING)
        )

    def counts(self) -> dict[str, int]:
        counts = {state: 0 for state in (QUEUED, RUNNING, DONE, FAILED)}
        for job in self._jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts
