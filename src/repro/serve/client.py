"""Session-level client helpers for a running ``repro serve``.

:class:`ServeClient` mirrors the :class:`~repro.api.Session` generation
surface over the wire: :meth:`generate` submits a
:class:`~repro.api.GenerateRequest` and blocks until the typed
:class:`~repro.api.GenerateResult` comes back (served from the artifact
cache when the server has seen the identical request), and
:meth:`stream` yields the job's typed progress events from the
websocket push channel.  Stdlib only (``http.client`` + a minimal
RFC 6455 websocket reader).

    from repro.serve import ServeClient
    from repro.api import GenerateRequest

    client = ServeClient("http://127.0.0.1:8760")
    result = client.generate(GenerateRequest(count=4, nodes=(40, 60)))
"""

from __future__ import annotations

import base64
import http.client
import json
import os
import socket
import time
from typing import Iterator
from urllib.parse import urlparse

from ..api import GenerateRequest, GenerateResult
from .protocol import DONE, FAILED, TERMINAL_EVENTS


class ServeError(RuntimeError):
    """A server-side error response (4xx/5xx or failed job)."""


class ServeClient:
    """Blocking client over the ``repro serve`` HTTP + websocket API."""

    def __init__(self, url: str = "http://127.0.0.1:8760",
                 timeout: float = 60.0):
        parsed = urlparse(url if "//" in url else f"http://{url}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 8760
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------
    def _call(self, method: str, path: str, payload: dict | None = None):
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None if payload is None else json.dumps(payload)
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = json.loads(response.read().decode() or "{}")
            if response.status >= 400:
                raise ServeError(
                    f"{method} {path} -> {response.status}: "
                    f"{data.get('error', data)}"
                )
            return data
        finally:
            conn.close()

    # -- REST surface ----------------------------------------------------
    def healthy(self) -> bool:
        try:
            return bool(self._call("GET", "/healthz").get("ok"))
        except (OSError, ServeError):
            return False

    def stats(self) -> dict:
        return self._call("GET", "/stats")

    def metrics(self) -> str:
        """``GET /metrics``: the Prometheus text exposition (raw text,
        not JSON -- scrape-compatible)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            text = response.read().decode()
            if response.status >= 400:
                raise ServeError(f"GET /metrics -> {response.status}")
            return text
        finally:
            conn.close()

    def trace(self, job_id: str) -> dict:
        """``GET /jobs/<id>/trace``: the job's Chrome trace-event JSON
        (present only when the job was submitted with ``trace=True``)."""
        return self._call("GET", f"/jobs/{job_id}/trace")

    def jobs(self) -> list[dict]:
        return self._call("GET", "/jobs")["jobs"]

    def submit(self, request: GenerateRequest | dict,
               dedupe: bool = True) -> dict:
        """Submit a request; returns the acceptance payload
        (``job_id`` / ``state`` / ``deduplicated`` / ``result_key``)."""
        payload = (
            request.to_dict() if isinstance(request, GenerateRequest)
            else dict(request)
        )
        return self._call(
            "POST", "/jobs", {"request": payload, "dedupe": dedupe}
        )

    def status(self, job_id: str) -> dict:
        return self._call("GET", f"/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 600.0,
             poll: float = 0.05) -> dict:
        """Poll until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in (DONE, FAILED):
                return status
            if time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still {status['state']} "
                                   f"after {timeout:.0f}s")
            time.sleep(poll)

    def result(self, job_id: str) -> GenerateResult:
        """The finished job's typed result (raises on a failed job)."""
        return GenerateResult.from_dict(
            self._call("GET", f"/jobs/{job_id}/result")
        )

    def generate(self, request: GenerateRequest | dict,
                 dedupe: bool = True,
                 timeout: float = 600.0) -> GenerateResult:
        """Session-style one-call generation: submit, wait, fetch."""
        accepted = self.submit(request, dedupe=dedupe)
        status = self.wait(accepted["job_id"], timeout=timeout)
        if status["state"] == FAILED:
            raise ServeError(
                f"job {accepted['job_id']} failed: {status.get('error')}"
            )
        return self.result(accepted["job_id"])

    def shutdown(self) -> dict:
        return self._call("POST", "/shutdown")

    # -- websocket streaming ---------------------------------------------
    def stream(self, job_id: str,
               timeout: float = 600.0) -> Iterator[dict]:
        """Yield the job's event frames (``status`` / ``progress`` /
        ``done`` / ``failed``) until the terminal one."""
        sock = socket.create_connection(
            (self.host, self.port), timeout=timeout
        )
        try:
            key = base64.b64encode(os.urandom(16)).decode()
            sock.sendall((
                f"GET /jobs/{job_id}/stream HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Key: {key}\r\n"
                "Sec-WebSocket-Version: 13\r\n\r\n"
            ).encode())
            # Buffered reader: the 101 response and the first frames can
            # arrive in one TCP segment, so chunked recv() past the
            # header terminator would silently drop frame bytes.
            reader = sock.makefile("rb")
            try:
                status_line = reader.readline().decode("latin1").rstrip()
                if " 101 " not in f"{status_line} ":
                    raise ServeError(
                        f"websocket upgrade refused: {status_line}"
                    )
                while reader.readline() not in (b"\r\n", b""):
                    pass  # drain the response headers
                while True:
                    frame = self._read_frame(reader)
                    if frame is None:  # close frame / connection end
                        return
                    event = json.loads(frame.decode())
                    yield event
                    if event.get("type") in TERMINAL_EVENTS:
                        return
            finally:
                reader.close()
        finally:
            sock.close()

    @staticmethod
    def _read_exact(reader, n: int) -> bytes:
        data = reader.read(n)
        if data is None or len(data) < n:
            raise ServeError("connection closed mid-frame")
        return data

    @classmethod
    def _read_frame(cls, reader) -> bytes | None:
        """One server frame's payload; ``None`` on close."""
        try:
            header = cls._read_exact(reader, 2)
        except ServeError:
            return None
        opcode = header[0] & 0x0F
        length = header[1] & 0x7F
        if length == 126:
            length = int.from_bytes(cls._read_exact(reader, 2), "big")
        elif length == 127:
            length = int.from_bytes(cls._read_exact(reader, 8), "big")
        payload = cls._read_exact(reader, length) if length else b""
        if opcode == 0x8:  # close
            return None
        return payload
