"""`repro top`: live status view of a running generation server.

A dependency-free terminal dashboard (ANSI redraw, in the spirit of the
gridworks admin console's DataTable view): one header block from
``GET /stats``, one row per job from ``GET /jobs``, refreshed on an
interval.  ``--once`` renders a single frame without clearing the
screen -- the mode scripts and the CI smoke job use.
"""

from __future__ import annotations

import time
from typing import Callable

from .client import ServeClient

_CLEAR = "\x1b[2J\x1b[H"
_STATE_GLYPHS = {"queued": "·", "running": ">", "done": "✓", "failed": "✗"}


def render_frame(stats: dict, jobs: list[dict], max_rows: int = 30) -> str:
    """Pure formatter: one dashboard frame from the two API payloads."""
    queue = stats.get("queue", {})
    throughput = stats.get("throughput", {})
    p50 = throughput.get("p50_seconds")
    p99 = throughput.get("p99_seconds")
    lines = [
        (
            f"repro serve  up {stats.get('uptime', 0.0):7.1f}s   "
            f"config {stats.get('config_fingerprint', '?')}   "
            f"workers {stats.get('workers_ready', 0)}"
            f"/{stats.get('workers', 0)} ready"
            f" ({stats.get('workers_busy', 0)} busy)"
        ),
        (
            f"jobs: {queue.get('queued', 0)} queued  "
            f"{queue.get('running', 0)} running  "
            f"{queue.get('done', 0)} done  "
            f"{queue.get('failed', 0)} failed   "
            f"dispatched {stats.get('dispatched', 0)}   "
            f"dedup hits {stats.get('dedup_hits', 0)}"
        ),
        (
            f"rate: {throughput.get('jobs_per_minute', 0.0):6.2f} jobs/min   "
            f"latency p50 {'-' if p50 is None else f'{p50:.2f}s'}  "
            f"p99 {'-' if p99 is None else f'{p99:.2f}s'}   "
            f"dedup rate {stats.get('dedup_rate', 0.0):.0%}"
        ),
        "",
        f"  {'job':<14s}{'state':<9s}{'progress':<10s}{'seed':>6s}"
        f"{'elapsed':>9s}  {'key':<14s}{'note':<s}",
    ]
    for job in jobs[-max_rows:]:
        done = job.get("records_done", 0)
        count = job.get("count", 1)
        elapsed = job.get("elapsed")
        note = ""
        if job.get("from_cache"):
            note = "cache hit"
        elif job.get("error"):
            note = str(job["error"]).splitlines()[0][:40]
        lines.append(
            f"{_STATE_GLYPHS.get(job['state'], '?')} "
            f"{job['job_id']:<14s}{job['state']:<9s}"
            f"{f'{done}/{count}':<10s}"
            f"{str(job.get('seed', '-')):>6s}"
            f"{'' if elapsed is None else f'{elapsed:8.2f}s':>9s}  "
            f"{job.get('result_key', '')[:12]:<14s}{note}"
        )
    if not jobs:
        lines.append("  (no jobs submitted yet)")
    return "\n".join(lines)


def run_top(
    client: ServeClient,
    interval: float = 1.0,
    once: bool = False,
    write: Callable[[str], None] = print,
) -> int:
    """Poll-and-redraw loop; returns an exit code."""
    while True:
        try:
            stats = client.stats()
            jobs = client.jobs()
        except Exception as exc:  # noqa: BLE001 -- any transport failure
            # reads as "server gone", which is a normal way to exit top.
            write(f"repro top: server unreachable ({exc})")
            return 1
        frame = render_frame(stats, jobs)
        if once:
            write(frame)
            return 0
        write(_CLEAR + frame)
        time.sleep(interval)
