"""Multi-process worker pool executing generation jobs.

Each worker is a separate OS process (``spawn`` start method: no
inherited locks or loop state) that builds its own
:class:`~repro.api.Session` over the *shared* content-addressed
:class:`~repro.api.ArtifactStore`.  The first worker to fit a scenario
trains and saves the model artifacts; every other worker -- and every
later server boot -- loads the identical bytes, so which worker runs a
job can never change its output.

Determinism: a job is executed with
:meth:`~repro.api.Session.iter_generate`, whose per-item
``SeedSequence.spawn`` derivation is bit-identical to sequential
:meth:`~repro.api.Session.generate`.  Job artifacts therefore depend
only on (scenario config, request) -- the same pair that forms the
dedup key -- regardless of pool size, dispatch order, or how often a
job is replayed after a crash.

Channel shapes are the typed events of :mod:`repro.serve.protocol`;
records stream up as each circuit finishes, which is what feeds the
per-job websocket progress push.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time
import traceback

from .protocol import (
    JobDone,
    JobFailed,
    JobProgress,
    JobStarted,
    WorkerReady,
    trace_key,
)


def worker_main(
    worker_id: int,
    config_payload: dict,
    cache_dir: str | None,
    job_q,
    event_q,
) -> None:
    """Entry point of one worker process: fit once, then drain jobs."""
    from ..api import (
        GenerateRequest,
        GenerateResult,
        Session,
        SynCircuitConfig,
        SynthRequest,
    )
    from ..obs import TraceRecorder, tracing

    config = SynCircuitConfig.from_dict(config_payload)
    session = Session(config=config, cache_dir=cache_dir)
    session.fit()
    event_q.put(WorkerReady(worker=worker_id).to_dict())

    while True:
        task = job_q.get()
        if task is None:  # shutdown sentinel
            break
        job_id = str(task["job_id"])
        event_q.put(JobStarted(job_id=job_id, worker=worker_id).to_dict())
        try:
            request = GenerateRequest.from_dict(task["request"])
            recorder = TraceRecorder() if request.trace else None
            started = time.perf_counter()
            records = []
            with tracing(recorder):
                for record in session.iter_generate(request):
                    records.append(record)
                    event_q.put(JobProgress(
                        job_id=job_id,
                        index=len(records) - 1,
                        count=request.count,
                        timings=record.timings,
                    ).to_dict())
                synth = None
                if request.synth_period is not None:
                    synth = [
                        session.synth(SynthRequest(rec.graph,
                                                   request.synth_period))
                        for rec in records
                    ]
            result = GenerateResult(
                records=records,
                request=request,
                config=config,
                synth=synth,
                elapsed=time.perf_counter() - started,
            )
            session.store.save_json(task["result_key"], result.to_dict())
            if recorder is not None:
                # Stored beside -- never inside -- the result artifact:
                # traces are wall-clock data and must not perturb the
                # content-addressed result bytes (see protocol.trace_key).
                session.store.save_json(
                    trace_key(str(task["result_key"])),
                    recorder.to_chrome_trace(
                        process_name=f"repro-worker-{worker_id}",
                        metadata={"job_id": job_id},
                    ),
                )
            event_q.put(JobDone(
                job_id=job_id,
                result_key=str(task["result_key"]),
                elapsed=result.elapsed,
            ).to_dict())
        except Exception as exc:  # noqa: BLE001 -- job isolation boundary:
            # a failing job must surface on the job record, not kill the
            # worker (traceback included for the server log).
            event_q.put(JobFailed(
                job_id=job_id,
                error=f"{type(exc).__name__}: {exc}\n"
                      f"{traceback.format_exc()}",
            ).to_dict())


class WorkerPool:
    """Fixed pool of spawn-started worker processes plus the two queues.

    ``dispatched`` counts jobs actually handed to a worker -- the number
    the dedup tests pin at zero for cache hits.
    """

    def __init__(
        self,
        config_payload: dict,
        cache_dir: str | None = None,
        workers: int = 2,
    ):
        self.config_payload = dict(config_payload)
        self.cache_dir = None if cache_dir is None else str(cache_dir)
        self.workers = max(int(workers), 1)
        self._ctx = multiprocessing.get_context("spawn")
        self.job_q = self._ctx.Queue()
        self.event_q = self._ctx.Queue()
        self._procs: list = []
        self.dispatched = 0

    def start(self) -> "WorkerPool":
        for worker_id in range(self.workers):
            proc = self._ctx.Process(
                target=worker_main,
                args=(worker_id, self.config_payload, self.cache_dir,
                      self.job_q, self.event_q),
                daemon=True,
                name=f"repro-serve-worker-{worker_id}",
            )
            proc.start()
            self._procs.append(proc)
        return self

    def dispatch(self, job_id: str, request: dict, result_key: str) -> None:
        self.job_q.put({
            "job_id": job_id,
            "request": dict(request),
            "result_key": result_key,
        })
        self.dispatched += 1

    def poll_event(self, timeout: float = 0.2) -> dict | None:
        """Next worker event, or ``None`` after ``timeout`` seconds."""
        try:
            return self.event_q.get(timeout=timeout)
        except queue_mod.Empty:
            return None

    def alive(self) -> int:
        return sum(1 for proc in self._procs if proc.is_alive())

    def stop(self, timeout: float = 10.0) -> None:
        """Drain-free shutdown: sentinel per worker, then join/terminate."""
        for _ in self._procs:
            self.job_q.put(None)
        deadline = time.monotonic() + timeout
        for proc in self._procs:
            proc.join(timeout=max(deadline - time.monotonic(), 0.1))
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        self._procs.clear()
