"""Typed wire protocol for the generation service.

Every message that crosses a process or socket boundary -- job records
persisted by the queue, worker events on the multiprocessing channel,
websocket frames pushed to streaming clients -- is a dataclass with a
``to_dict`` / ``from_dict`` JSON round-trip, mirroring the request
substrate in :mod:`repro.api.requests`.  The server, the workers, the
client helpers and the ``repro top`` dashboard all speak exactly these
shapes; nothing parses ad-hoc dicts.

Deduplication identity
----------------------
:func:`request_key` is the content address of a generation job: the
server's resolved scenario config plus the request payload, minus the
``workers`` field (worker fan-out is bit-identical to sequential by the
session contract, so it cannot change the artifact).  The key doubles as
the :class:`~repro.api.store.ArtifactStore` key under which the finished
:class:`~repro.api.GenerateResult` is cached -- identical requests
therefore resolve to the same artifact without touching a worker.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field

from ..api.store import ArtifactStore

# -- job lifecycle ----------------------------------------------------------
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: States a job can be observed in (terminal states last).
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED)


def new_job_id() -> str:
    """Short opaque job handle (identity lives in :func:`request_key`)."""
    return uuid.uuid4().hex[:12]


def request_key(config: dict, request: dict) -> str:
    """Content address of one generation job (dedup + artifact key)."""
    payload = dict(request)
    # Bit-identical to sequential by the Session contract; purely a
    # wall-clock knob, so it is not part of the job's identity.
    payload.pop("workers", None)
    # Tracing is observation-only (repro.obs contract), so a traced and
    # an untraced submit produce -- and share -- the same artifact.
    payload.pop("trace", None)
    return ArtifactStore.key("generate", {
        "config": config, "request": payload,
    })


def trace_key(result_key: str) -> str:
    """Store key of the execution trace captured for ``result_key``.

    Kept *separate* from the result artifact: traces are wall-clock
    data, so folding them into the result would make the same content
    address resolve to different bytes across runs.
    """
    return f"{result_key}-trace"


@dataclass
class Job:
    """One persisted queue entry (the unit of dispatch and replay)."""

    job_id: str
    seq: int
    request: dict            # GenerateRequest.to_dict() payload
    result_key: str          # dedup fingerprint == artifact-store key
    state: str = QUEUED
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    worker: int | None = None
    records_done: int = 0
    error: str | None = None
    #: True when this submit was answered from the artifact cache (the
    #: job never went to a worker).
    from_cache: bool = False

    @property
    def count(self) -> int:
        return int(self.request.get("count", 1))

    @property
    def elapsed(self) -> float | None:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "seq": self.seq,
            "request": dict(self.request),
            "result_key": self.result_key,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "worker": self.worker,
            "records_done": self.records_done,
            "error": self.error,
            "from_cache": self.from_cache,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        return cls(
            job_id=str(data["job_id"]),
            seq=int(data["seq"]),
            request=dict(data["request"]),
            result_key=str(data["result_key"]),
            state=str(data.get("state", QUEUED)),
            submitted_at=float(data.get("submitted_at", 0.0)),
            started_at=data.get("started_at"),
            finished_at=data.get("finished_at"),
            worker=data.get("worker"),
            records_done=int(data.get("records_done", 0)),
            error=data.get("error"),
            from_cache=bool(data.get("from_cache", False)),
        )

    def summary(self) -> dict:
        """The ``/jobs`` listing row (no full request payload)."""
        return {
            "job_id": self.job_id,
            "seq": self.seq,
            "state": self.state,
            "count": self.count,
            "records_done": self.records_done,
            "seed": self.request.get("seed"),
            "result_key": self.result_key,
            "worker": self.worker,
            "elapsed": self.elapsed,
            "error": self.error,
            "from_cache": self.from_cache,
        }


# -- worker -> server events (also the websocket stream frames) -------------
@dataclass
class WorkerReady:
    """A worker process finished fitting its session and can take jobs."""

    worker: int

    def to_dict(self) -> dict:
        return {"type": "ready", "worker": self.worker}


@dataclass
class JobStarted:
    job_id: str
    worker: int

    def to_dict(self) -> dict:
        return {"type": "started", "job_id": self.job_id,
                "worker": self.worker}


@dataclass
class JobProgress:
    """One generated record inside a job (streamed as it completes).

    ``timings`` is the record's per-phase wall-second breakdown
    (``sample`` / ``refine`` / ``optimize``) from
    :class:`~repro.api.GenerationRecord` -- the payload ``repro top``
    and latency accounting read.
    """

    job_id: str
    index: int
    count: int
    timings: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"type": "progress", "job_id": self.job_id,
                "index": self.index, "count": self.count,
                "timings": dict(self.timings)}


@dataclass
class JobDone:
    job_id: str
    result_key: str
    elapsed: float

    def to_dict(self) -> dict:
        return {"type": "done", "job_id": self.job_id,
                "result_key": self.result_key, "elapsed": self.elapsed}


@dataclass
class JobFailed:
    job_id: str
    error: str

    def to_dict(self) -> dict:
        return {"type": "failed", "job_id": self.job_id,
                "error": self.error}


#: Event types that end a job's stream.
TERMINAL_EVENTS = ("done", "failed")


def parse_event(data: dict):
    """Rehydrate a worker/stream event dict into its typed message."""
    kind = data.get("type")
    if kind == "ready":
        return WorkerReady(worker=int(data["worker"]))
    if kind == "started":
        return JobStarted(job_id=str(data["job_id"]),
                          worker=int(data["worker"]))
    if kind == "progress":
        return JobProgress(
            job_id=str(data["job_id"]), index=int(data["index"]),
            count=int(data["count"]), timings=dict(data.get("timings", {})),
        )
    if kind == "done":
        return JobDone(job_id=str(data["job_id"]),
                       result_key=str(data["result_key"]),
                       elapsed=float(data.get("elapsed", 0.0)))
    if kind == "failed":
        return JobFailed(job_id=str(data["job_id"]),
                         error=str(data.get("error", "unknown")))
    raise ValueError(f"unknown event type {kind!r}")
