"""Neural network layers on top of the autograd engine.

A lightweight ``Module`` system mirrors the familiar PyTorch structure:
modules own parameters and sub-modules, ``parameters()`` walks the tree,
and layers are callables over :class:`~repro.nn.tensor.Tensor`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .tensor import Tensor, parameter


class Module:
    """Base class; sub-modules and parameters are discovered by attribute."""

    def parameters(self) -> list[Tensor]:
        params: list[Tensor] = []
        seen: set[int] = set()
        for value in self.__dict__.values():
            for p in _collect(value):
                if id(p) not in seen:
                    seen.add(id(p))
                    params.append(p)
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        return {str(i): p.data.copy() for i, p in enumerate(self.parameters())}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(
                f"state has {len(state)} arrays, model has {len(params)}"
            )
        for i, p in enumerate(params):
            src = state[str(i)]
            if src.shape != p.data.shape:
                raise ValueError(f"shape mismatch for parameter {i}")
            p.data[...] = src

    def __call__(self, *args: Any, **kwargs: Any) -> Tensor:
        return self.forward(*args, **kwargs)

    def forward(self, *args: Any, **kwargs: Any) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError


def _collect(value) -> list[Tensor]:
    if isinstance(value, Tensor):
        return [value] if value.requires_grad else []
    if isinstance(value, Module):
        return value.parameters()
    if isinstance(value, (list, tuple)):
        out: list[Tensor] = []
        for item in value:
            out.extend(_collect(item))
        return out
    return []


class Linear(Module):
    """Affine map ``x @ W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True):
        self.weight = parameter((in_features, out_features), rng)
        self.bias = parameter((out_features,), rng) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Index -> dense vector lookup table."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator):
        self.weight = parameter((num_embeddings, dim), rng, scale=0.1)

    def forward(self, index: np.ndarray) -> Tensor:
        return self.weight.take_rows(np.asarray(index, dtype=np.int64))


_ACTIVATIONS = {
    "relu": Tensor.relu,
    "tanh": Tensor.tanh,
    "sigmoid": Tensor.sigmoid,
}


class MLP(Module):
    """Multi-layer perceptron: Linear -> activation -> ... -> Linear."""

    def __init__(self, dims: list[int], rng: np.random.Generator,
                 activation: str = "relu", final_activation: str | None = None):
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        self.layers = [
            Linear(dims[i], dims[i + 1], rng) for i in range(len(dims) - 1)
        ]
        self.activation = activation
        self.final_activation = final_activation

    def forward(self, x: Tensor) -> Tensor:
        act = _ACTIVATIONS[self.activation]
        for layer in self.layers[:-1]:
            x = act(layer(x))
        x = self.layers[-1](x)
        if self.final_activation:
            x = _ACTIVATIONS[self.final_activation](x)
        return x


class GRUCell(Module):
    """Single gated recurrent unit step (used by the GraphRNN baseline)."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        self.w_z = Linear(input_dim + hidden_dim, hidden_dim, rng)
        self.w_r = Linear(input_dim + hidden_dim, hidden_dim, rng)
        self.w_h = Linear(input_dim + hidden_dim, hidden_dim, rng)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        xh = x.concat(h, axis=-1)
        z = self.w_z(xh).sigmoid()
        r = self.w_r(xh).sigmoid()
        xrh = x.concat(r * h, axis=-1)
        h_tilde = self.w_h(xrh).tanh()
        one = Tensor(np.ones_like(z.data))
        return (one - z) * h + z * h_tilde
