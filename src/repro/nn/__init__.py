"""Numpy autograd substrate: tensors, layers, optimizers, losses."""

from .functional import (
    bce_with_logits,
    mse,
    sigmoid_np,
    softmax_cross_entropy,
    time_features,
)
from .layers import MLP, Embedding, GRUCell, Linear, Module
from .optim import SGD, Adam
from .tensor import Tensor, concat_all, parameter

__all__ = [
    "MLP",
    "SGD",
    "Adam",
    "Embedding",
    "GRUCell",
    "Linear",
    "Module",
    "Tensor",
    "bce_with_logits",
    "concat_all",
    "mse",
    "parameter",
    "sigmoid_np",
    "softmax_cross_entropy",
    "time_features",
]
