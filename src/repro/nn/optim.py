"""Optimizers for the autograd substrate: SGD and Adam."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor


class Optimizer:
    def __init__(self, params: list[Tensor], lr: float):
        self.params = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Tensor], lr: float = 1e-2,
                 momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v -= self.lr * p.grad
            p.data += v


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, params: list[Tensor], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= b1
            m += (1.0 - b1) * grad
            v *= b2
            v += (1.0 - b2) * grad * grad
            p.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
