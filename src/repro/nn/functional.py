"""Loss functions and stateless helpers."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor


def bce_with_logits(logits: Tensor, targets: np.ndarray | Tensor,
                    weights: np.ndarray | None = None) -> Tensor:
    """Numerically stable binary cross-entropy on raw logits.

    Uses the identity ``bce = max(x, 0) - x*y + log(1 + exp(-|x|))`` realised
    through the autograd graph as ``softplus`` terms, so gradients are exact.
    ``weights`` optionally reweights each element (e.g. for class balance).
    """
    y = targets.data if isinstance(targets, Tensor) else np.asarray(
        targets, dtype=np.float64
    )
    # log(1 + e^x) == max(x,0) + log(1+e^-|x|); build via sigmoid/log ops.
    p = logits.sigmoid()
    one = Tensor(np.ones_like(p.data))
    eps = 1e-12
    loss = -(Tensor(y) * (p + eps).log() + (one - Tensor(y)) * (one - p + eps).log())
    if weights is not None:
        loss = loss * Tensor(np.asarray(weights, dtype=np.float64))
        return loss.sum() * (1.0 / max(float(np.sum(weights)), eps))
    return loss.mean()


def mse(pred: Tensor, targets: np.ndarray | Tensor) -> Tensor:
    y = targets if isinstance(targets, Tensor) else Tensor(targets)
    diff = pred - y
    return (diff * diff).mean()


def softmax_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy over rows of ``logits`` given integer ``labels``."""
    labels = np.asarray(labels, dtype=np.int64)
    shifted = logits - Tensor(logits.data.max(axis=-1, keepdims=True))
    log_z = shifted.exp().sum(axis=-1, keepdims=True).log()
    log_probs = shifted - log_z
    onehot = np.zeros_like(logits.data)
    onehot[np.arange(len(labels)), labels] = 1.0
    return -(log_probs * Tensor(onehot)).sum() * (1.0 / len(labels))


def sigmoid_np(x: np.ndarray) -> np.ndarray:
    """Plain numpy sigmoid for inference-only fast paths."""
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


def time_features(t: np.ndarray | float, dim: int) -> np.ndarray:
    """Sinusoidal features of a (possibly fractional) timestep.

    Matches the common diffusion-model positional embedding; the result is
    fed to small MLPs to obtain the paper's learnable ``d(t)`` and ``r(t)``.
    """
    t = np.atleast_1d(np.asarray(t, dtype=np.float64))
    half = dim // 2
    freqs = np.exp(-np.log(1000.0) * np.arange(half) / max(half - 1, 1))
    angles = t[:, None] * freqs[None, :] * 2.0 * np.pi
    feats = np.concatenate([np.sin(angles), np.cos(angles)], axis=-1)
    if feats.shape[-1] < dim:  # odd dim: pad one zero column
        feats = np.pad(feats, ((0, 0), (0, dim - feats.shape[-1])))
    return feats
