"""Minimal reverse-mode automatic differentiation over numpy arrays.

The paper trains its denoising network (and the baseline generators) with
PyTorch on GPUs.  This module is the CPU substitute: a small, well-tested
autograd engine sufficient for MLPs, message-passing layers and the
embedding lookups used throughout the repository.

Gradients are accumulated into ``Tensor.grad`` by :meth:`Tensor.backward`,
which topologically sorts the recorded tape.  Broadcasting is supported for
elementwise operations; gradients are un-broadcast (summed) back to the
operand shapes.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

Array = np.ndarray


def _as_array(value) -> Array:
    if isinstance(value, np.ndarray):
        return value.astype(np.float64, copy=False)
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: Array, shape: tuple[int, ...]) -> Array:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an optional gradient tape entry."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev")

    def __init__(self, data, requires_grad: bool = False):
        self.data: Array = _as_array(data)
        self.grad: Array | None = None
        self.requires_grad = bool(requires_grad)
        self._backward: Callable[[], None] | None = None
        self._prev: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data.item())

    def numpy(self) -> Array:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    # ------------------------------------------------------------------
    # Graph construction helper
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: Array,
        parents: tuple["Tensor", ...],
        backward: Callable[["Tensor"], None] | None,
    ) -> "Tensor":
        out = Tensor(data)
        if any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._prev = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: Array) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other.data

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(-out.grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other)

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other.data

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self * other.pow(-1.0)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) * self.pow(-1.0)

    def pow(self, exponent: float) -> "Tensor":
        out_data = self.data ** exponent

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(
                    out.grad * exponent * self.data ** (exponent - 1.0)
                )

        return Tensor._make(out_data, (self,), backward)

    __pow__ = pow

    # ------------------------------------------------------------------
    # Matrix ops
    # ------------------------------------------------------------------
    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data @ other.data

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                grad = out.grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                grad = np.swapaxes(self.data, -1, -2) @ out.grad
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def transpose(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(np.swapaxes(out.grad, -1, -2))

        return Tensor._make(np.swapaxes(self.data, -1, -2), (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def reshape(self, *shape: int) -> "Tensor":
        old_shape = self.shape

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad.reshape(old_shape))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None,
            keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(out: Tensor) -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(a % self.ndim for a in axes):
                    grad = np.expand_dims(grad, ax)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None,
             keepdims: bool = False) -> "Tensor":
        count = self.size if axis is None else (
            np.prod([self.shape[a] for a in
                     ((axis,) if isinstance(axis, int) else axis)])
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    # ------------------------------------------------------------------
    # Nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def sigmoid(self) -> "Tensor":
        s = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * s * (1.0 - s))

        return Tensor._make(s, (self,), backward)

    def tanh(self) -> "Tensor":
        t = np.tanh(self.data)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (1.0 - t * t))

        return Tensor._make(t, (self,), backward)

    def exp(self) -> "Tensor":
        e = np.exp(np.clip(self.data, -60.0, 60.0))

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad * e)

        return Tensor._make(e, (self,), backward)

    def log(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            if self.requires_grad:
                self._accumulate(out.grad / np.maximum(self.data, 1e-12))

        return Tensor._make(np.log(np.maximum(self.data, 1e-12)), (self,), backward)

    # ------------------------------------------------------------------
    # Indexing / combination
    # ------------------------------------------------------------------
    def take_rows(self, index: Array) -> "Tensor":
        """Gather rows (embedding lookup); gradients scatter-add back."""
        index = np.asarray(index, dtype=np.int64)

        def backward(out: Tensor) -> None:
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                np.add.at(grad, index, out.grad)
                self._accumulate(grad)

        return Tensor._make(self.data[index], (self,), backward)

    def concat(self, other: "Tensor", axis: int = -1) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = np.concatenate([self.data, other.data], axis=axis)
        split = self.shape[axis]

        def backward(out: Tensor) -> None:
            left, right = np.split(out.grad, [split], axis=axis)
            if self.requires_grad:
                self._accumulate(left)
            if other.requires_grad:
                other._accumulate(right)

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Array | None = None) -> None:
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that has no grad tape")
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        if grad is None:
            if self.size != 1:
                raise RuntimeError("backward() without grad requires a scalar")
            grad = np.ones_like(self.data)
        self.grad = np.asarray(grad, dtype=np.float64).reshape(self.shape)

        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node)


def concat_all(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate many tensors along ``axis`` (left fold of pairwise concat)."""
    tensors = list(tensors)
    out = tensors[0]
    for t in tensors[1:]:
        out = out.concat(t, axis=axis)
    return out


def parameter(shape: tuple[int, ...], rng: np.random.Generator,
              scale: float | None = None) -> Tensor:
    """Trainable tensor with Glorot-style initialisation."""
    if scale is None:
        fan_in = shape[0] if len(shape) > 1 else max(shape[0], 1)
        scale = 1.0 / np.sqrt(fan_in)
    t = Tensor(rng.uniform(-scale, scale, size=shape))
    t.requires_grad = True
    return t
