"""Tour of the synthesis substrate: RTL graph -> gates -> PPA report.

Builds a small accumulator design with the GraphBuilder API, emits its
Verilog, lowers it to a gate-level netlist, runs the optimization passes
and static timing analysis, and prints a Design-Compiler-style report
with a Pareto sweep over target clock periods.

    python examples/synthesis_flow.py
"""

from repro.api import Session, SynthRequest
from repro.hdl import generate_verilog
from repro.ir import GraphBuilder
from repro.synth import elaborate, optimize, pareto_sweep


def build_accumulator() -> "GraphBuilder":
    b = GraphBuilder("mac8")
    a = b.input("a", 8)
    w = b.input("w", 8)
    clear = b.input("clear", 1)
    acc = b.reg("acc", 16)
    product = b.mul(a, w, width=16)
    summed = b.add(acc, product, width=16)
    zero = b.const(0, 16)
    b.drive_reg(acc, b.mux(clear, zero, summed))
    b.output("result", acc)
    # A deliberately redundant register: swept by synthesis.
    stuck = b.reg("stuck", 4)
    b.drive_reg(stuck, stuck)
    b.output("debug", stuck)
    return b.build()


def main() -> None:
    graph = build_accumulator()
    print("=== RTL (generated Verilog) ===")
    print(generate_verilog(graph))

    raw = elaborate(graph)
    optimized, stats = optimize(raw)
    print("=== Logic optimization ===")
    print(f"gates: {stats.gates_before} -> {stats.gates_after} "
          f"({stats.rounds} pass rounds)")
    print(f"flip-flops: {stats.dffs_before} -> {stats.dffs_after} "
          "(the 'stuck' register is swept)")

    # The session API memoizes the PPA summary in its artifact store, so
    # repeat runs of this report are a cache hit.
    session = Session(preset="fast")
    result = session.synth(SynthRequest(graph, clock_period=1.0))
    print("\n=== PPA report @ 1.0 ns ===")
    print(f"area:           {result.area:9.2f} um^2")
    print(f"cells:          {result.num_cells:6d}")
    print(f"flip-flops:     {result.num_dffs:6d}")
    print(f"SCPR:           {result.scpr:9.2f}")
    print(f"WNS:            {result.wns:+9.3f} ns")
    print(f"TNS:            {result.tns:+9.3f} ns ({result.nvp} violations)")
    for reg, slack in sorted(result.register_slacks.items()):
        print(f"  register {graph.node(reg).name or reg}: "
              f"slack {slack:+.3f} ns")

    print("\n=== Pareto sweep ===")
    print(f"{'period':>8s}{'strength':>9s}{'area':>10s}{'wns':>9s}")
    for point in pareto_sweep(graph):
        print(f"{point.clock_period:>8.3f}{point.strength:>9d}"
              f"{point.area:>10.2f}{point.wns:>+9.3f}")


if __name__ == "__main__":
    main()
