"""Data augmentation for ML-based RTL PPA prediction (the paper's Table III).

Demonstrates the paper's headline application: a gradient-boosted PPA
predictor trained on a small set of real designs improves when the
training set is augmented with SynCircuit-generated pseudo-circuits.

    python examples/ppa_augmentation.py
"""

from repro.bench_designs import train_test_split
from repro.diffusion import DiffusionConfig
from repro.mcts import MCTSConfig
from repro.pipeline import SynCircuit, SynCircuitConfig
from repro.ppa import evaluate_augmentation, format_table


def main() -> None:
    train, test = train_test_split(seed=2025)
    print(f"{len(train)} real training designs, {len(test)} held-out designs")

    config = SynCircuitConfig(
        diffusion=DiffusionConfig(epochs=80, hidden=48, num_layers=4, seed=0),
        mcts=MCTSConfig(num_simulations=40, max_depth=6, branching=5, seed=0),
        degree_guidance=0.5,
    )
    pipeline = SynCircuit(config).fit(train)
    print("generating 10 pseudo-circuits (w/ and w/o MCTS optimization) ...")
    records = pipeline.generate(10, num_nodes=(40, 60), optimize=True, seed=3)

    rows = evaluate_augmentation(
        base_train=train,
        test=test,
        synthetic_sets={
            "SynCircuit w/o opt": [r.g_val for r in records],
            "SynCircuit w/ opt": [r.g_opt for r in records],
        },
        clock_period=1.0,
        # Tight periods so WNS/TNS labels carry real violations.
        periods=[0.12, 0.2, 0.35, 0.6],
    )
    print()
    print(format_table(rows))


if __name__ == "__main__":
    main()
