"""Data augmentation for ML-based RTL PPA prediction (the paper's Table III).

Demonstrates the paper's headline application through the session API: a
gradient-boosted PPA predictor trained on a small set of real designs
improves when the training set is augmented with SynCircuit-generated
pseudo-circuits.  The fitted generator is cached in the session's
artifact store, so re-running the experiment only pays for generation.

    python examples/ppa_augmentation.py
"""

from repro.api import GenerateRequest, Session
from repro.bench_designs import train_test_split
from repro.ppa import evaluate_augmentation, format_table


def main() -> None:
    train, test = train_test_split(seed=2025)
    print(f"{len(train)} real training designs, {len(test)} held-out designs")

    session = Session(preset="fast", seed=0)
    session.config.diffusion.epochs = 80
    session.config.mcts.num_simulations = 40
    session.config.mcts.max_depth = 6
    session.config.mcts.branching = 5
    session.fit(train)

    print("generating 10 pseudo-circuits (w/ and w/o MCTS optimization) ...")
    result = session.generate_batch(GenerateRequest(
        count=10, nodes=(40, 60), optimize=True, seed=3, workers=4,
    ))

    rows = evaluate_augmentation(
        base_train=train,
        test=test,
        synthetic_sets={
            "SynCircuit w/o opt": [r.g_val for r in result.records],
            "SynCircuit w/ opt": [r.g_opt for r in result.records],
        },
        clock_period=1.0,
        # Tight periods so WNS/TNS labels carry real violations.
        periods=[0.12, 0.2, 0.35, 0.6],
    )
    print()
    print(format_table(rows))


if __name__ == "__main__":
    main()
