"""Quickstart: train SynCircuit on real designs and emit new Verilog.

Runs the full three-phase pipeline at a small scale:
  1. load the 22-design benchmark corpus and train the diffusion model,
  2. generate three brand-new synthetic circuits,
  3. MCTS-optimize their logic redundancy,
  4. print the synthesizable Verilog of the best one with its PPA report.

    python examples/quickstart.py
"""

import numpy as np

from repro.bench_designs import train_test_split
from repro.diffusion import DiffusionConfig
from repro.hdl import generate_verilog
from repro.mcts import MCTSConfig
from repro.pipeline import SynCircuit, SynCircuitConfig
from repro.synth import synthesize


def main() -> None:
    train, _ = train_test_split(seed=2025)
    print(f"training on {len(train)} real designs "
          f"({sum(g.num_nodes for g in train)} nodes total)")

    config = SynCircuitConfig(
        diffusion=DiffusionConfig(epochs=80, hidden=48, num_layers=4, seed=0),
        mcts=MCTSConfig(num_simulations=40, max_depth=6, branching=5, seed=0),
        degree_guidance=0.5,
    )
    pipeline = SynCircuit(config).fit(train, verbose=True)

    records = pipeline.generate(3, num_nodes=(40, 60), optimize=True, seed=1)
    best = None
    for rec in records:
        val = synthesize(rec.g_val, clock_period=1.0)
        opt = synthesize(rec.g_opt, clock_period=1.0)
        print(
            f"{rec.g_val.name}: {rec.g_val.num_nodes} nodes | "
            f"SCPR {val.scpr:.2f} -> {opt.scpr:.2f} | "
            f"PCS {val.pcs:.2f} -> {opt.pcs:.2f} | "
            f"area {opt.area:.1f} um^2, WNS {opt.wns:+.3f} ns"
        )
        if best is None or opt.scpr > best[1].scpr:
            best = (rec, opt)

    rec, report = best
    print(f"\n--- Verilog for {rec.g_opt.name} "
          f"(SCPR {report.scpr:.2f}, {report.num_cells} cells) ---")
    print(generate_verilog(rec.g_opt))


if __name__ == "__main__":
    main()
