"""Quickstart: train SynCircuit through the session API and emit Verilog.

Runs the full three-phase pipeline at a small scale:
  1. open a Session (scenario preset + persistent artifact store) and
     fit it on the 22-design benchmark corpus -- rerunning this script
     hits the store and skips retraining entirely,
  2. generate three brand-new synthetic circuits in parallel,
  3. MCTS-optimize their logic redundancy,
  4. print the synthesizable Verilog of the best one with its PPA report.

    python examples/quickstart.py
"""

from repro.api import GenerateRequest, Session, SynthRequest
from repro.hdl import generate_verilog
from repro.obs import configure_logging


def main() -> None:
    # fit(verbose=True) reports training progress via the repro.*
    # loggers at INFO; opt in so the demo shows its work.
    configure_logging(verbose=1)
    session = Session(
        preset="fast",
        seed=0,
    )
    # Overriding a couple of preset fields keeps the demo minutes-scale.
    session.config.diffusion.epochs = 80
    session.config.mcts.num_simulations = 40
    session.config.mcts.max_depth = 6
    session.config.mcts.branching = 5
    session.config.mcts.clock_period = 1.0

    print("fitting (cached in the artifact store after the first run) ...")
    session.fit(verbose=True)

    result = session.generate_batch(GenerateRequest(
        count=3, nodes=(40, 60), optimize=True, seed=1,
        workers=3, synth_period=1.0,
    ))

    best = None
    for record, opt in zip(result.records, result.synth):
        val = session.synth(SynthRequest(record.g_val, clock_period=1.0))
        print(
            f"{record.g_val.name}: {record.g_val.num_nodes} nodes | "
            f"SCPR {val.scpr:.2f} -> {opt.scpr:.2f} | "
            f"PCS {val.pcs:.2f} -> {opt.pcs:.2f} | "
            f"area {opt.area:.1f} um^2, WNS {opt.wns:+.3f} ns"
        )
        if best is None or opt.scpr > best[1].scpr:
            best = (record, opt)

    record, report = best
    graph = record.graph  # G_opt when optimization ran, else G_val
    print(f"\n--- Verilog for {graph.name} "
          f"(SCPR {report.scpr:.2f}, {report.num_cells} cells) ---")
    print(generate_verilog(graph))


if __name__ == "__main__":
    main()
