"""Phase 3 deep-dive: MCTS redundancy optimization on a redundant design.

Builds a circuit whose registers are fed by degenerate logic (XOR of a
signal with itself, constant-selected muxes), shows that synthesis sweeps
them (low SCPR), then runs the MCTS optimizer against the random-search
ablation at the same simulation budget -- Figure 4 in miniature.

    python examples/mcts_optimization.py
"""

from repro.api import Session, SynthRequest
from repro.ir import GraphBuilder
from repro.mcts import (
    MCTSConfig,
    SynthesisReward,
    optimize_registers,
    random_search_registers,
)
from repro.obs import configure_logging


def build_redundant_design() -> "GraphBuilder":
    """Four registers, three of them fed by logic that folds away."""
    b = GraphBuilder("redundant_demo")
    a = b.input("a", 4)
    c = b.input("c", 4)
    sel = b.input("sel", 1)

    r_dead1 = b.reg("dead1", 4)
    b.drive_reg(r_dead1, b.xor(a, a))            # XOR(x, x) == 0

    r_dead2 = b.reg("dead2", 4)
    one = b.const(1, 1)
    b.drive_reg(r_dead2, b.mux(one, b.const(0, 4), c))   # constant select

    r_dead3 = b.reg("dead3", 4)
    b.drive_reg(r_dead3, b.and_(a, b.not_(a)))   # x AND ~x == 0

    r_live = b.reg("live", 4)
    b.drive_reg(r_live, b.add(a, r_live, width=4))

    merged = b.mux(sel, b.or_(r_dead1, r_dead2), b.xor(r_dead3, r_live))
    b.output("y", merged)
    b.output("z", r_live)
    return b.build()


def main() -> None:
    # verbose=True routes per-cone progress through the repro.mcts
    # logger at INFO; opt in so the walkthrough stays chatty.
    configure_logging(verbose=1)
    graph = build_redundant_design()
    # PPA reports go through the session API so repeated runs hit the
    # artifact store; the MCTS deep-dive below stays on the phase-3
    # primitives it demonstrates.
    session = Session(preset="fast")
    before = session.synth(SynthRequest(graph, clock_period=1.0))
    print(f"G_val: {graph.num_nodes} nodes, "
          f"{graph.total_register_bits()} register bits")
    print(f"  before optimization: SCPR {before.scpr:.2f} "
          f"({before.num_dffs} flip-flops survive), PCS {before.pcs:.3f}")

    cfg = MCTSConfig(num_simulations=120, max_depth=8, branching=6, seed=0)
    reward = SynthesisReward(clock_period=1.0)

    report = optimize_registers(graph, reward_fn=reward, config=cfg, verbose=True)
    after = session.synth(SynthRequest(report.graph, clock_period=1.0))
    print(f"  after MCTS ({reward.calls} synthesis calls): "
          f"SCPR {after.scpr:.2f} ({after.num_dffs} flip-flops), "
          f"PCS {after.pcs:.3f}")

    random_report = random_search_registers(graph, config=cfg)
    random_after = session.synth(
        SynthRequest(random_report.graph, clock_period=1.0)
    )
    print(f"  random search (same budget): SCPR {random_after.scpr:.2f}, "
          f"PCS {random_after.pcs:.3f}")

    print("\nper-cone search results (MCTS):")
    for reg, result in report.cone_results.items():
        name = graph.node(reg).name or f"reg{reg}"
        print(f"  {name:8s}: PCS {result.initial_reward:.3f} -> "
              f"{result.best_reward:.3f} "
              f"({'improved' if result.improved else 'kept'})")


if __name__ == "__main__":
    main()
