"""Figure 4: SCPR improvement and preserved registers from MCTS.

(a) The five most redundant G_val circuits are optimized with MCTS and
with the random-search ablation at the same simulation budget; SCPR is
reported before and after.
(b) The distribution of registers preserved after logic synthesis under
no optimization / random search / MCTS across the synthetic dataset.
"""

import numpy as np

from repro.mcts import MCTSConfig, SynthesisReward, random_search_registers
from repro.synth import synthesize

from conftest import CLOCK_PERIOD, write_result


def test_fig4_scpr_improvement(syncircuit, syncircuit_records, benchmark):
    # Rank G_val by redundancy (lowest SCPR first), take the worst five.
    scored = []
    for rec in syncircuit_records:
        result = synthesize(rec.g_val, clock_period=CLOCK_PERIOD)
        scored.append((result.scpr, rec))
    scored.sort(key=lambda pair: pair[0])
    worst = scored[:5]

    cfg = syncircuit.config.mcts
    lines_a = [
        f"{'design':<10s}{'scpr_no_opt':>14s}{'scpr_random':>14s}"
        f"{'scpr_mcts':>14s}"
    ]
    mcts_wins = 0
    for scpr_before, rec in worst:
        random_rep = random_search_registers(
            rec.g_val, reward_fn=syncircuit._reward_fn, config=cfg
        )
        scpr_random = synthesize(
            random_rep.graph, clock_period=CLOCK_PERIOD
        ).scpr
        scpr_mcts = synthesize(rec.g_opt, clock_period=CLOCK_PERIOD).scpr
        if scpr_mcts >= scpr_random:
            mcts_wins += 1
        lines_a.append(
            f"{rec.g_val.name:<10s}{scpr_before:>14.3f}"
            f"{scpr_random:>14.3f}{scpr_mcts:>14.3f}"
        )
    write_result("fig4a_scpr", "\n".join(lines_a))

    # (b) Registers preserved across the full synthetic set.
    preserved = {"no_opt": [], "mcts": []}
    for rec in syncircuit_records:
        preserved["no_opt"].append(
            synthesize(rec.g_val, clock_period=CLOCK_PERIOD).num_dffs
        )
        preserved["mcts"].append(
            synthesize(rec.g_opt, clock_period=CLOCK_PERIOD).num_dffs
        )
    lines_b = [f"{'method':<10s}{'mean_dffs':>12s}{'median':>10s}{'max':>8s}"]
    for method, counts in preserved.items():
        arr = np.array(counts)
        lines_b.append(
            f"{method:<10s}{arr.mean():>12.1f}"
            f"{np.median(arr):>10.1f}{arr.max():>8d}"
        )
    write_result("fig4b_preserved_registers", "\n".join(lines_b))

    # Shape checks per the paper: MCTS lifts SCPR well above the
    # unoptimized circuits and is at least as good as random search on a
    # majority of the worst designs.
    mean_before = np.mean([s for s, _ in worst])
    mean_after = np.mean(
        [synthesize(r.g_opt, clock_period=CLOCK_PERIOD).scpr for _, r in worst]
    )
    assert mean_after > mean_before
    assert mcts_wins >= 3
    assert np.mean(preserved["mcts"]) > np.mean(preserved["no_opt"])

    # Benchmark: one full-design PCS reward evaluation (the MCTS inner loop).
    reward = SynthesisReward(CLOCK_PERIOD)
    g = syncircuit_records[0].g_val
    benchmark(lambda: reward(g))
