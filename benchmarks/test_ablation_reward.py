"""Ablation: learned PCS discriminator vs exact synthesis reward.

The paper replaces the synthesis tool with a trained discriminator inside
the MCTS loop.  This bench quantifies that substitution on our substrate:
(1) rank correlation between discriminator predictions and true PCS on
held-out perturbed states, and (2) end-to-end SCPR after MCTS under each
reward at the same simulation budget.
"""

import numpy as np

from repro.mcts import (
    MCTSConfig,
    SynthesisReward,
    collect_training_set,
    optimize_registers,
    train_discriminator,
)
from repro.synth import synthesize

from conftest import CLOCK_PERIOD, write_result


def test_ablation_reward_model(syncircuit, syncircuit_records, benchmark):
    gvals = [rec.g_val for rec in syncircuit_records[:8]]
    disc = train_discriminator(
        gvals[:4], clock_period=CLOCK_PERIOD, perturbations=10, seed=0
    )

    # (1) Fidelity on held-out designs and their perturbations.
    feats, targets = collect_training_set(
        gvals[4:8], clock_period=CLOCK_PERIOD, perturbations=6, seed=1
    )
    preds = disc.predict(feats)
    if np.std(preds) > 1e-9 and np.std(targets) > 1e-9:
        corr = float(np.corrcoef(preds, targets)[0, 1])
    else:
        corr = float("nan")

    # (2) End-to-end SCPR under each reward, same budget.
    cfg = MCTSConfig(
        num_simulations=40, max_depth=6, branching=5,
        clock_period=CLOCK_PERIOD, seed=3,
    )
    rows = [
        f"held-out PCS prediction correlation: {corr:.3f}",
        "",
        f"{'design':<8s}{'scpr_before':>13s}{'scpr_disc':>12s}{'scpr_synth':>12s}",
    ]
    deltas = []
    for rec in syncircuit_records[:4]:
        before = synthesize(rec.g_val, clock_period=CLOCK_PERIOD).scpr
        with_disc = optimize_registers(rec.g_val, reward_fn=disc, config=cfg)
        scpr_disc = synthesize(with_disc.graph, clock_period=CLOCK_PERIOD).scpr
        with_synth = optimize_registers(
            rec.g_val, reward_fn=SynthesisReward(CLOCK_PERIOD), config=cfg
        )
        scpr_synth = synthesize(
            with_synth.graph, clock_period=CLOCK_PERIOD
        ).scpr
        deltas.append((scpr_disc - before, scpr_synth - before))
        rows.append(
            f"{rec.g_val.name:<8s}{before:>13.3f}"
            f"{scpr_disc:>12.3f}{scpr_synth:>12.3f}"
        )
    write_result("ablation_reward_model", "\n".join(rows))

    # The synthesis-verified acceptance guarantees neither reward hurts.
    assert all(d_disc >= -1e-9 for d_disc, _ in deltas)
    assert all(d_synth >= -1e-9 for _, d_synth in deltas)

    benchmark.pedantic(
        lambda: disc.predict(feats), rounds=3, iterations=1
    )
