"""Table III: synthetic-data augmentation for RTL-stage PPA prediction.

(a) Basic training set of 15 real designs; (b) basic set of 5 designs.
Each is augmented with 25 pseudo-circuits from GraphRNN, DVAE, SynCircuit
w/o optimization (G_val) and SynCircuit w/ optimization (G_opt); models
are evaluated on the 7 held-out real designs with R / MAPE / RRSE on
register slack, WNS, TNS and area.
"""

import numpy as np

from repro.ppa import evaluate_augmentation, format_table

from conftest import CLOCK_PERIOD, LABEL_PERIODS, write_result


def _augmentation_sets(graphrnn_set, dvae_set, syncircuit_records):
    return {
        "GraphRNN": graphrnn_set,
        "DVAE": dvae_set,
        "SynCircuit w/o opt": [r.g_val for r in syncircuit_records],
        "SynCircuit w/ opt": [r.g_opt for r in syncircuit_records],
    }


def _mean_metric(rows, metric_index: int) -> dict[str, float]:
    """label -> mean metric across the four tasks (for shape checks)."""
    out = {}
    for row in rows:
        values = []
        for s in row.scores.values():
            value = (s.r, s.mape, s.rrse)[metric_index]
            if not np.isnan(value):
                values.append(value)
        out[row.label] = float(np.mean(values)) if values else float("nan")
    return out


def _task_metric(rows, task: str, metric_index: int) -> dict[str, float]:
    return {
        row.label: (row.scores[task].r, row.scores[task].mape,
                    row.scores[task].rrse)[metric_index]
        for row in rows
    }


def test_table3a_ppa_15_designs(
    split, graphrnn_set, dvae_set, syncircuit_records, benchmark
):
    train, test = split
    rows = evaluate_augmentation(
        train, test,
        _augmentation_sets(graphrnn_set, dvae_set, syncircuit_records),
        clock_period=CLOCK_PERIOD,
        periods=LABEL_PERIODS,
    )
    write_result("table3a_ppa_15designs", format_table(rows))

    mape = _mean_metric(rows, 1)
    # Shape check: SynCircuit w/ opt augmentation should beat the
    # real-only baseline and both DAG baselines on mean MAPE.
    assert mape["SynCircuit w/ opt"] <= mape["Basic training data"] * 1.10
    assert mape["SynCircuit w/ opt"] <= min(
        mape["GraphRNN"], mape["DVAE"]
    ) * 1.10

    benchmark.pedantic(
        lambda: evaluate_augmentation(
            train[:5], test[:2], {}, periods=LABEL_PERIODS[:2]
        ),
        rounds=1, iterations=1,
    )


def test_table3b_ppa_5_designs(
    split, graphrnn_set, dvae_set, syncircuit_records, benchmark
):
    train, test = split
    rng = np.random.default_rng(5)
    small_train = [train[i] for i in rng.choice(len(train), 5, replace=False)]
    rows = evaluate_augmentation(
        small_train, test,
        _augmentation_sets(graphrnn_set, dvae_set, syncircuit_records),
        clock_period=CLOCK_PERIOD,
        periods=LABEL_PERIODS,
    )
    write_result("table3b_ppa_5designs", format_table(rows))

    # Shape checks per the paper's 5-design discussion: the register-slack
    # gain is the headline ("Register Slack MAPE is reduced by 10% in both
    # basic training settings") and overall fit (RRSE is the scale-free
    # aggregate at this noisy regime) must not degrade.
    reg_mape = _task_metric(rows, "reg_slack", 1)
    assert (
        reg_mape["SynCircuit w/ opt"]
        <= reg_mape["Basic training data"] - 0.05
    )
    rrse = _mean_metric(rows, 2)
    assert rrse["SynCircuit w/ opt"] <= rrse["Basic training data"] * 1.05

    benchmark.pedantic(
        lambda: evaluate_augmentation(
            small_train, test[:2], {}, periods=LABEL_PERIODS[:2]
        ),
        rounds=1, iterations=1,
    )
