"""Table I: dataset composition and design size statistics.

Regenerates the paper's corpus table: per-family design counts, original
HDL types and {min, median, max} post-synthesis gate counts for the
22-design benchmark suite.
"""

from repro.bench_designs import corpus_statistics, load_design
from repro.synth import synthesize

from conftest import CLOCK_PERIOD, write_result


def test_table1_dataset_composition(corpus, benchmark):
    gate_counts = {}
    for graph in corpus:
        result = synthesize(graph, clock_period=CLOCK_PERIOD)
        gate_counts[graph.name] = result.num_cells

    rows = corpus_statistics(gate_counts)
    header = (
        f"{'Source Benchmark':<18s}{'# Designs':>10s}{'HDL Type':>10s}"
        f"{'Min':>8s}{'Median':>8s}{'Max':>8s}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['source']:<18s}{row['num_designs']:>10d}"
            f"{row['hdl_type']:>10s}{row['min_gates']:>8d}"
            f"{row['median_gates']:>8d}{row['max_gates']:>8d}"
        )
    write_result("table1_dataset", "\n".join(lines))

    assert sum(r["num_designs"] for r in rows) == 22
    assert all(r["min_gates"] > 0 for r in rows)

    # Benchmark: one representative synthesis run (the flow that produced
    # every cell of the table).
    design = load_design("uart_tx")
    benchmark(lambda: synthesize(design, clock_period=CLOCK_PERIOD))
