"""Table II: structural-property similarity with the reference designs.

Six generators (four baselines, SynCircuit without diffusion, full
SynCircuit) are compared against the two reference designs on the six
metrics of the paper: W1 distances of out-degree / clustering / orbit
distributions (lower better) and expectation ratios of triangle count,
h^(A,Y) and h^(A^2,Y) (closer to 1 better).
"""

import zlib

import numpy as np

from repro.metrics import structural_similarity

from conftest import write_result

SAMPLES_PER_MODEL = 4


def _model_seed(model_name: str) -> int:
    """Stable per-model seed.  ``hash()`` is salted per process, which
    made every run regenerate results/table2_structural.txt with
    different numbers -- exactly the silent drift the golden tests in
    tests/test_results_golden.py now reject."""
    return zlib.crc32(model_name.encode()) % 1000


def _generate_set(generate, num_nodes: int, seed: int):
    rng = np.random.default_rng(seed)
    return [generate(num_nodes, rng) for _ in range(SAMPLES_PER_MODEL)]


def test_table2_structural_similarity(
    references, graphrnn, dvae, graphmaker, sparse_digress,
    syncircuit, syncircuit_no_diff, benchmark,
):
    generators = {
        "GraphRNN": lambda n, rng: graphrnn.generate(n, rng),
        "DVAE": lambda n, rng: dvae.generate(n, rng),
        "GraphMaker-v": lambda n, rng: graphmaker.generate(n, rng),
        "SparseDigress-v": lambda n, rng: sparse_digress.generate(n, rng),
        "SynCircuit w/o diff": lambda n, rng: syncircuit_no_diff.generate_one(
            n, rng, optimize=False
        ).g_val,
        "SynCircuit w/ diff": lambda n, rng: syncircuit.generate_one(
            n, rng, optimize=False
        ).g_val,
    }

    metric_names = ("out_degree", "cluster", "orbit",
                    "triangle", "h(A,Y)", "h(A2,Y)")
    results: dict[str, dict[str, dict[str, float]]] = {}
    for model_name, generate in generators.items():
        results[model_name] = {}
        for ref_name, ref in references.items():
            graphs = _generate_set(generate, ref.num_nodes,
                                   seed=_model_seed(model_name))
            report = structural_similarity(ref, graphs)
            results[model_name][ref_name] = report.as_row()

    ref_names = list(references)
    header = f"{'Model':<22s}" + "".join(
        f"{m + '/' + r.split('_')[0]:>18s}"
        for m in metric_names for r in ref_names
    )
    lines = [header, "-" * len(header)]
    for model_name, per_ref in results.items():
        cells = []
        for metric in metric_names:
            for ref_name in ref_names:
                value = per_ref[ref_name][metric]
                cells.append(f"{value:>18.3f}")
        lines.append(f"{model_name:<22s}" + "".join(cells))
    write_result("table2_structural", "\n".join(lines))

    # Shape check (paper: SynCircuit w/ diff wins most W1 metrics, and the
    # no-diffusion ablation is clearly worse than the full model).
    w1_metrics = ("out_degree", "cluster", "orbit")
    for ref_name in ref_names:
        full = np.mean([
            results["SynCircuit w/ diff"][ref_name][m] for m in w1_metrics
        ])
        baseline_means = {
            name: np.mean([results[name][ref_name][m] for m in w1_metrics])
            for name in ("GraphRNN", "DVAE")
        }
        assert full <= max(baseline_means.values()) * 1.5, (
            f"SynCircuit w/ diff should be competitive on {ref_name}"
        )

    # Benchmark the metric computation itself.
    ref = references["core_like"]
    sample = _generate_set(
        lambda n, rng: syncircuit.generate_one(n, rng, optimize=False).g_val,
        ref.num_nodes, seed=0,
    )
    benchmark.pedantic(
        lambda: structural_similarity(ref, sample), rounds=2, iterations=1
    )
