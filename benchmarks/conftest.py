"""Shared experiment context for the paper-reproduction benchmarks.

Everything expensive (model training, synthetic dataset generation) is
built once per session here and reused by the per-table benchmark files.
Scales are CPU-friendly; see DESIGN.md section 5 for the scale notes.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.baselines import (
    DVAEBaseline,
    DVAEConfig,
    GraphRNNBaseline,
    GraphRNNConfig,
    GraphMakerV,
    SparseDigressV,
)
from repro.bench_designs import load_corpus, reference_designs, train_test_split
from repro.diffusion import DiffusionConfig
from repro.mcts import MCTSConfig
from repro.pipeline import SynCircuit, SynCircuitConfig

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: Node-count range for generated pseudo-circuits (paper uses larger
#: designs on GPUs; see DESIGN.md scale notes).
SYN_SIZE = (40, 70)
NUM_PSEUDO = 25          # paper: 25 pseudo-circuits per augmentation set
CLOCK_PERIOD = 1.0
#: Tight label periods: most Pareto points carry real timing violations,
#: so WNS/TNS labels have informative spread (as in the paper's labels).
LABEL_PERIODS = [0.12, 0.2, 0.35, 0.6]


def write_result(name: str, text: str) -> None:
    """Persist a rendered table/figure so EXPERIMENTS.md can cite it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}\n")


@pytest.fixture(scope="session")
def corpus():
    return load_corpus()


@pytest.fixture(scope="session")
def split():
    train, test = train_test_split(seed=2025, num_test=7)
    return train, test


@pytest.fixture(scope="session")
def references():
    return reference_designs()


# ---------------------------------------------------------------------------
# Trained generators (shared across benches)
# ---------------------------------------------------------------------------


def _syncircuit_config(use_diffusion: bool = True) -> SynCircuitConfig:
    return SynCircuitConfig(
        diffusion=DiffusionConfig(
            epochs=300, hidden=48, num_layers=4, num_steps=9,
            neg_ratio=8.0, seed=0,
        ),
        mcts=MCTSConfig(
            num_simulations=100, max_depth=8, branching=6,
            clock_period=CLOCK_PERIOD, seed=0,
        ),
        degree_guidance=0.5,
        use_diffusion=use_diffusion,
        # The paper uses a discriminator because Design Compiler calls are
        # minutes each; our synthesis substrate evaluates a 40-70 node
        # design in ~2 ms, so the exact PCS reward is affordable.  The
        # discriminator path is exercised by test_ablation_reward.py.
        reward="synthesis",
        discriminator_perturbations=10,
    )


@pytest.fixture(scope="session")
def syncircuit(split):
    train, _ = split
    return SynCircuit(_syncircuit_config()).fit(train)


@pytest.fixture(scope="session")
def syncircuit_no_diff(split):
    train, _ = split
    return SynCircuit(_syncircuit_config(use_diffusion=False)).fit(train)


@pytest.fixture(scope="session")
def graphrnn(split):
    train, _ = split
    return GraphRNNBaseline(
        GraphRNNConfig(epochs=40, hidden=48, window=24, seed=0)
    ).fit(train)


@pytest.fixture(scope="session")
def dvae(split):
    train, _ = split
    return DVAEBaseline(
        DVAEConfig(epochs=40, hidden=48, window=24, seed=0)
    ).fit(train)


@pytest.fixture(scope="session")
def graphmaker(split):
    train, _ = split
    return GraphMakerV(seed=0).fit(train)


@pytest.fixture(scope="session")
def sparse_digress(split):
    train, _ = split
    return SparseDigressV(seed=0).fit(train)


# ---------------------------------------------------------------------------
# Generated pseudo-circuit datasets (shared by Fig 4/5 and Table III)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="session")
def syncircuit_records(syncircuit):
    """25 generation records: G_val plus MCTS-optimized G_opt each."""
    return syncircuit.generate(
        NUM_PSEUDO, SYN_SIZE, optimize=True, seed=11, name_prefix="sc"
    )


@pytest.fixture(scope="session")
def graphrnn_set(graphrnn):
    rng = np.random.default_rng(13)
    sizes = rng.integers(SYN_SIZE[0], SYN_SIZE[1] + 1, size=NUM_PSEUDO)
    return [
        graphrnn.generate(int(n), rng, name=f"grnn{i}")
        for i, n in enumerate(sizes)
    ]


@pytest.fixture(scope="session")
def dvae_set(dvae):
    rng = np.random.default_rng(17)
    sizes = rng.integers(SYN_SIZE[0], SYN_SIZE[1] + 1, size=NUM_PSEUDO)
    return [
        dvae.generate(int(n), rng, name=f"dvae{i}")
        for i, n in enumerate(sizes)
    ]
