"""Figure 5: netlist timing statistics of synthetic vs real designs.

Compares the distributions of WNS (critical-path slack) and TNS divided
by the number of violating paths across the real benchmark set and the
three synthetic datasets (GraphRNN, DVAE, SynCircuit).  Per the paper,
the DAG-only baselines show compressed distributions near zero while
SynCircuit's sequential-feedback circuits track the real designs.
"""

import numpy as np

from repro.metrics import collect_timing_distribution

from conftest import write_result

TIGHT_PERIOD = 0.25   # surfaces negative slack on realistic logic depths


def test_fig5_timing_distributions(
    corpus, graphrnn_set, dvae_set, syncircuit_records, benchmark
):
    datasets = {
        "Real designs": corpus,
        "GraphRNN": graphrnn_set,
        "DVAE": dvae_set,
        "SynCircuit": [rec.g_opt for rec in syncircuit_records],
    }
    distributions = {
        label: collect_timing_distribution(
            graphs, label, clock_period=TIGHT_PERIOD
        )
        for label, graphs in datasets.items()
    }

    header = (
        f"{'dataset':<14s}{'wns_mean':>10s}{'wns_std':>10s}{'wns_min':>10s}"
        f"{'tns/nvp_mean':>14s}{'tns/nvp_std':>13s}{'tns/nvp_min':>13s}"
    )
    lines = [header, "-" * len(header)]
    for label, dist in distributions.items():
        s = dist.summary()
        lines.append(
            f"{label:<14s}{s['wns_mean']:>10.3f}{s['wns_std']:>10.3f}"
            f"{s['wns_min']:>10.3f}{s['tns_nvp_mean']:>14.3f}"
            f"{s['tns_nvp_std']:>13.3f}{s['tns_nvp_min']:>13.3f}"
        )
    write_result("fig5_timing_stats", "\n".join(lines))

    real = distributions["Real designs"].summary()
    sync = distributions["SynCircuit"].summary()
    grnn = distributions["GraphRNN"].summary()
    dvae_s = distributions["DVAE"].summary()

    # Shape check: the paper observes GraphRNN/DVAE circuits have very
    # small WNS magnitudes (shallow DAG logic, few long paths) while
    # SynCircuit matches the reals more closely.
    def wns_gap(summary):
        return abs(summary["wns_mean"] - real["wns_mean"])

    baseline_best = min(wns_gap(grnn), wns_gap(dvae_s))
    assert wns_gap(sync) <= baseline_best + 0.05, (
        f"SynCircuit WNS distribution should track the real designs: "
        f"gap {wns_gap(sync):.3f} vs baselines {baseline_best:.3f}"
    )

    # Benchmark: timing-stat collection for a handful of designs.
    sample = corpus[:3]
    benchmark.pedantic(
        lambda: collect_timing_distribution(sample, "bench", TIGHT_PERIOD),
        rounds=2, iterations=1,
    )
