"""Ablations beyond the paper's tables (DESIGN.md A3).

1. Diffusion step count: 1 vs 3 vs 9 reverse steps (paper default 9).
2. Decoder asymmetry: the TransE decoder vs a symmetric elementwise
   decoder (the failure mode of prior work that the paper motivates).
3. Post-processing degree guidance: on vs off.
"""

import numpy as np

from repro.bench_designs import train_test_split
from repro.diffusion import (
    DiffusionConfig,
    graph_attributes,
    sample_initial_graph,
    train_diffusion,
)
from repro.metrics import structural_similarity
from repro.postprocess import refine_to_valid

from conftest import write_result


def _gval_samples(trained, reference, count, seed, guidance=0.5):
    rng = np.random.default_rng(seed)
    graphs = []
    for _ in range(count):
        res = sample_initial_graph(trained, reference.num_nodes, rng=rng)
        graphs.append(
            refine_to_valid(
                res.types, res.widths, res.adjacency, res.edge_probability,
                rng=rng, degree_guidance=guidance,
            )
        )
    return graphs


def test_ablation_diffusion_steps(benchmark):
    train, _ = train_test_split(seed=2025)
    reference = train[0]
    lines = [f"{'steps':>6s}{'w1_out_degree':>16s}{'w1_orbit':>12s}"]
    scores = {}
    for steps in (1, 3, 9):
        cfg = DiffusionConfig(
            num_steps=steps, epochs=80, hidden=32, num_layers=3, seed=0
        )
        trained = train_diffusion(train, cfg)
        graphs = _gval_samples(trained, reference, count=3, seed=steps)
        report = structural_similarity(reference, graphs)
        scores[steps] = report
        lines.append(
            f"{steps:>6d}{report.w1_out_degree:>16.3f}"
            f"{report.w1_orbit:>12.3f}"
        )
    write_result("ablation_diffusion_steps", "\n".join(lines))
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ablation_decoder_asymmetry(benchmark):
    """Measure directional information: a symmetric decoder cannot favour
    the true edge direction over its reverse."""
    train, _ = train_test_split(seed=2025)
    cfg = DiffusionConfig(epochs=80, hidden=32, num_layers=3, seed=0)
    trained = train_diffusion(train, cfg)

    rng = np.random.default_rng(0)
    margins = []
    for g in train[:6]:
        types, buckets = graph_attributes(g)
        a0 = g.adjacency()
        a1 = trained.schedule.sample_t(a0, 1, rng)
        p = trained.model.predict_full(types, buckets, a1, 1 / 9)
        fwd = a0 & ~a0.T   # edges whose reverse is absent
        if fwd.sum() == 0:
            continue
        margins.append(float(p[fwd].mean() - p.T[fwd].mean()))
    mean_margin = float(np.mean(margins))
    lines = [
        "directional margin = mean P(true direction) - P(reverse direction)",
        f"TransE decoder margin: {mean_margin:+.4f}",
        "(a symmetric decoder is exactly 0 by construction)",
    ]
    write_result("ablation_decoder_asymmetry", "\n".join(lines))
    assert mean_margin > 0.02, (
        "the asymmetric decoder must assign higher probability to the "
        "true edge direction than to its reverse"
    )
    benchmark.pedantic(
        lambda: trained.model.predict_full(
            *graph_attributes(train[0]), train[0].adjacency(), 1.0
        ),
        rounds=2, iterations=1,
    )


def test_ablation_degree_guidance(benchmark):
    """Out-degree guidance in Phase 2 should leave no zero-fanout
    registers (the observability prerequisite for Phase 3)."""
    train, _ = train_test_split(seed=2025)
    cfg = DiffusionConfig(epochs=60, hidden=32, num_layers=3, seed=0)
    trained = train_diffusion(train, cfg)
    reference = train[0]

    rows = [f"{'guidance':>10s}{'zero_fanout_regs':>18s}{'total_regs':>12s}"]
    zero_counts = {}
    for guidance in (0.0, 0.5):
        zero = total = 0
        for g in _gval_samples(
            trained, reference, count=4, seed=31, guidance=guidance
        ):
            for reg in g.registers():
                total += 1
                if not g.children(reg):
                    zero += 1
        zero_counts[guidance] = zero
        rows.append(f"{guidance:>10.1f}{zero:>18d}{total:>12d}")
    write_result("ablation_degree_guidance", "\n".join(rows))
    assert zero_counts[0.5] <= zero_counts[0.0]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
