"""Tests for trained-generator persistence."""

import numpy as np
import pytest

from repro.bench_designs import load_corpus
from repro.diffusion import (
    DiffusionConfig,
    graph_attributes,
    load_trained,
    sample_initial_graph,
    save_trained,
    train_diffusion,
)


@pytest.fixture(scope="module")
def trained():
    graphs = load_corpus()[:4]
    cfg = DiffusionConfig(epochs=8, hidden=16, num_layers=2, seed=0)
    return train_diffusion(graphs, cfg)


class TestPersistence:
    def test_roundtrip_predictions_identical(self, trained, tmp_path):
        path = tmp_path / "model.npz"
        save_trained(trained, path)
        restored = load_trained(path)

        g = load_corpus()[0]
        types, buckets = graph_attributes(g)
        a_t = g.adjacency()
        p1 = trained.model.predict_full(types, buckets, a_t, 0.5)
        p2 = restored.model.predict_full(types, buckets, a_t, 0.5)
        np.testing.assert_allclose(p1, p2)

    def test_roundtrip_preserves_metadata(self, trained, tmp_path):
        path = tmp_path / "model.npz"
        save_trained(trained, path)
        restored = load_trained(path)
        assert restored.config.num_steps == trained.config.num_steps
        assert restored.config.hidden == trained.config.hidden
        assert restored.schedule.noise_density == pytest.approx(
            trained.schedule.noise_density
        )
        assert restored.mean_edges_per_node == pytest.approx(
            trained.mean_edges_per_node
        )
        assert restored.losses == pytest.approx(trained.losses)

    def test_restored_model_samples(self, trained, tmp_path):
        path = tmp_path / "model.npz"
        save_trained(trained, path)
        restored = load_trained(path)
        res = sample_initial_graph(
            restored, num_nodes=20, rng=np.random.default_rng(0)
        )
        assert res.adjacency.shape == (20, 20)

    def test_sampling_matches_original_given_same_rng(self, trained, tmp_path):
        path = tmp_path / "model.npz"
        save_trained(trained, path)
        restored = load_trained(path)
        r1 = sample_initial_graph(
            trained, num_nodes=15, rng=np.random.default_rng(7)
        )
        r2 = sample_initial_graph(
            restored, num_nodes=15, rng=np.random.default_rng(7)
        )
        np.testing.assert_array_equal(r1.adjacency, r2.adjacency)
        np.testing.assert_array_equal(r1.types, r2.types)
