"""Differential property tests: the bit-parallel simulator must be
bit-identical to the scalar reference on random valid netlists.

Hypothesis-style seeded fuzzing without the dependency: the shared
harness (``fuzz_harness``) draws random DAG-plus-feedback netlists
(DFF-heavy, MUX-heavy, comb-only and mixed profiles) and random
stimulus with randomly *missing* inputs, and this module asserts both
backends agree cycle for cycle.  The perf test at the bottom pins the
acceptance criterion: >= 10x on a 64-cycle stimulus over the largest
bench design.
"""

import timeit

import numpy as np
import pytest
from fuzz_harness import PROFILES, random_netlist, random_stimulus

from repro.synth.netlist import Gate, Netlist
from repro.synth.simulate import (
    BACKENDS,
    BitParallelSimulator,
    simulate,
)


class TestBackendEquivalence:
    @pytest.mark.fuzz_smoke
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    @pytest.mark.parametrize("seed", range(8))
    def test_random_netlists(self, profile, seed):
        netlist = random_netlist(seed, profile=profile)
        rng = np.random.default_rng(1000 + seed)
        stimulus = random_stimulus(netlist, rng, cycles=70)
        assert (
            simulate(netlist, stimulus, backend="scalar")
            == simulate(netlist, stimulus, backend="bitparallel")
        )

    @pytest.mark.fuzz_smoke
    @pytest.mark.parametrize("cycles", [0, 1, 63, 64, 65, 130])
    def test_word_block_boundaries(self, cycles):
        netlist = random_netlist(99, num_gates=40, profile="dff_heavy")
        rng = np.random.default_rng(cycles)
        stimulus = random_stimulus(netlist, rng, cycles=cycles)
        assert (
            simulate(netlist, stimulus, backend="scalar")
            == simulate(netlist, stimulus, backend="bitparallel")
        )

    def test_deep_feedback_chain(self):
        # Toggle-flop ripple counter: worst case for the fixpoint (every
        # word needs the full block-length pass count to settle).
        netlist = Netlist()
        netlist.ensure_consts()
        carry = netlist.const1
        for b in range(6):
            q = netlist.new_net()
            toggled = netlist.add_gate("XOR", q, carry)
            carry = netlist.add_gate("AND", q, carry)
            netlist.gates.append(Gate("DFF", (toggled,), q))
            netlist.add_output(f"count[{b}]", q)
        stimulus = [{} for _ in range(130)]
        scalar = simulate(netlist, stimulus, backend="scalar")
        packed = simulate(netlist, stimulus, backend="bitparallel")
        assert scalar == packed
        # And it really counts: cycle t shows t mod 64.
        from repro.synth.simulate import pack_word

        assert [pack_word(row, "count") for row in packed[:5]] == [0, 1, 2, 3, 4]

    def test_corpus_designs_equivalent(self):
        from repro.bench_designs import load_design
        from repro.synth import elaborate

        rng = np.random.default_rng(7)
        for name in ("uart_tx", "alu", "mac_unit"):
            netlist = elaborate(load_design(name), check=False)
            stimulus = random_stimulus(netlist, rng, cycles=96, drop_rate=0.0)
            assert (
                simulate(netlist, stimulus, backend="scalar")
                == simulate(netlist, stimulus, backend="bitparallel")
            ), name

    def test_unknown_backend_rejected(self):
        netlist = random_netlist(0, num_gates=5)
        with pytest.raises(ValueError, match="unknown simulation backend"):
            simulate(netlist, [{}], backend="fpga")
        assert set(BACKENDS) == {"scalar", "bitparallel"}

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_combinational_loop_rejected(self, backend):
        netlist = Netlist()
        netlist.ensure_consts()
        x = netlist.new_net()
        y = netlist.new_net()
        netlist.gates.append(Gate("NOT", (y,), x))
        netlist.gates.append(Gate("NOT", (x,), y))
        netlist.add_output("y[0]", y)
        with pytest.raises(ValueError, match="combinational loop"):
            simulate(netlist, [{}], backend=backend)

    def test_comb_loop_inside_feedback_scc_rejected(self):
        # A DFF-bearing SCC that *also* contains a purely combinational
        # cycle must still be rejected by the bit-parallel planner.
        netlist = Netlist()
        netlist.ensure_consts()
        q = netlist.new_net()
        a = netlist.new_net()
        b = netlist.new_net()
        netlist.gates.append(Gate("AND", (b, q), a))
        netlist.gates.append(Gate("OR", (a, q), b))
        netlist.gates.append(Gate("DFF", (a,), q))
        netlist.add_output("y[0]", a)
        with pytest.raises(ValueError, match="combinational loop"):
            simulate(netlist, [{}], backend="bitparallel")

    def test_run_packed_matches_dict_interface(self):
        netlist = random_netlist(5, profile="dff_heavy")
        rng = np.random.default_rng(5)
        stimulus = random_stimulus(netlist, rng, cycles=80, drop_rate=0.0)
        simulator = BitParallelSimulator(netlist)
        packed_inputs = {}
        for _, net in netlist.primary_inputs:
            word = 0
            for t, cycle in enumerate(stimulus):
                if cycle.get(net):
                    word |= 1 << t
            packed_inputs[net] = word
        words = simulator.run_packed(packed_inputs, len(stimulus))
        rows = simulator.run(stimulus)
        for name, _ in netlist.primary_outputs:
            expected = 0
            for t, row in enumerate(rows):
                if row[name]:
                    expected |= 1 << t
            assert words[name] == expected


class TestAcceptanceSpeedup:
    def test_bitparallel_10x_on_largest_design(self):
        """The PR's acceptance criterion, pinned as a test: >= 10x on a
        64-cycle stimulus over the largest bench design, bit-identical
        primary outputs included."""
        from repro.bench.suites import _sim_workload

        name, netlist, stimulus = _sim_workload()
        assert len(stimulus) == 64
        scalar_out = simulate(netlist, stimulus, backend="scalar")
        packed_out = simulate(netlist, stimulus, backend="bitparallel")
        assert scalar_out == packed_out, f"backends disagree on {name}"

        scalar = min(timeit.repeat(
            lambda: simulate(netlist, stimulus, backend="scalar"),
            number=1, repeat=3,
        ))
        packed = min(timeit.repeat(
            lambda: simulate(netlist, stimulus, backend="bitparallel"),
            number=1, repeat=5,
        ))
        assert scalar >= packed * 10.0, (
            f"bit-parallel speedup on {name} is only {scalar / packed:.1f}x"
        )


# ---------------------------------------------------------------------------
class TestPatchableSimulator:
    """Differential fuzz for the patch-compiled plan: after chains of
    random graph edits, ``PatchableSimulator.patch(delta)`` must be
    bit-exact against a freshly compiled :class:`BitParallelSimulator`
    of ``delta.materialize()`` -- the acceptance gate for removing the
    per-candidate Kahn/Tarjan compile from the evaluation loops."""

    @staticmethod
    def _packed_inputs(pairs, cycles, seed):
        from repro.synth.simulate import packed_stimulus_word

        return {
            net: packed_stimulus_word(seed, name, cycles)
            for name, net in pairs
        }

    @pytest.mark.fuzz_smoke
    @pytest.mark.parametrize(
        "design,seed", [("uart_tx", 0), ("alu", 1), ("gray_counter", 2),
                        ("fifo_sync", 3)]
    )
    def test_chained_edits_bit_exact_vs_fresh_compile(self, design, seed):
        from repro.bench_designs import load_design
        from repro.incr import DeltaNetlist
        from repro.mcts import apply_swap, sample_swaps
        from repro.synth.simulate import PatchableSimulator

        cycles = 150  # crosses a word-block boundary
        rng = np.random.default_rng(seed)
        graph = load_design(design)
        base = DeltaNetlist.from_graph(graph, check=False)
        simulator = PatchableSimulator(base)
        anchor = list(range(graph.num_nodes))
        state, delta = graph, base
        checked = 0
        for _ in range(10):
            swaps = sample_swaps(state, anchor, rng, 1)
            if not swaps:
                break
            successor = apply_swap(state, swaps[0])
            if successor is None:
                continue
            state = successor
            # Chain the delta like CandidateQueue does (one edit deep).
            delta = delta.apply_edit(state)
            reference_netlist = delta.materialize()
            reference = BitParallelSimulator(reference_netlist)
            want = reference.run_packed(
                self._packed_inputs(
                    reference_netlist.primary_inputs, cycles, seed
                ),
                cycles,
            )
            got = simulator.patch(delta).run_packed(
                self._packed_inputs(simulator.primary_inputs, cycles, seed),
                cycles,
            )
            assert got == want, f"{design}: patched plan diverged"
            checked += 1
        assert checked >= 3, f"{design}: too few valid edits exercised"

    @pytest.mark.fuzz_smoke
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    @pytest.mark.parametrize("seed", range(3))
    def test_random_netlist_base_plans_agree(self, profile, seed):
        """Plan coarseness check on adversarial netlists: the node-level
        plan of an (un-edited) tracked elaboration must already match
        the gate-level compile on random feedback-heavy graphs."""
        from repro.bench_designs import load_corpus
        from repro.incr import DeltaNetlist
        from repro.synth.simulate import PatchableSimulator

        import zlib

        graphs = sorted(load_corpus(), key=lambda g: g.num_nodes)
        # crc32, not hash(): builtin hash is salted per process and
        # would make the chosen design irreproducible.
        pick = seed * 7 + zlib.crc32(profile.encode()) % 5
        graph = graphs[pick % len(graphs)]
        delta = DeltaNetlist.from_graph(graph, check=False)
        netlist = delta.materialize()
        cycles = 96
        want = BitParallelSimulator(netlist).run_packed(
            self._packed_inputs(netlist.primary_inputs, cycles, seed), cycles
        )
        sim = PatchableSimulator(delta)
        got = sim.run_packed(
            self._packed_inputs(sim.primary_inputs, cycles, seed), cycles
        )
        assert got == want

    def test_port_views_match_materialized_netlist(self):
        from repro.bench_designs import load_design
        from repro.incr import DeltaNetlist
        from repro.synth.simulate import PatchableSimulator

        delta = DeltaNetlist.from_graph(load_design("alu"), check=False)
        netlist = delta.materialize()
        sim = PatchableSimulator(delta)
        assert sim.primary_inputs == netlist.primary_inputs
        assert sim.primary_outputs == netlist.primary_outputs
