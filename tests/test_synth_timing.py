"""Tests for static timing analysis, area, and the synthesis flow."""

import pytest

from repro.ir import GraphBuilder
from repro.synth import (
    DEFAULT_LIBRARY,
    CellLibrary,
    analyze_timing,
    pareto_sweep,
    synthesize,
    total_area,
)
from repro.synth.netlist import Netlist


def _inverter_chain(length: int) -> Netlist:
    nl = Netlist()
    nl.ensure_consts()
    net = nl.add_input("a[0]")
    for _ in range(length):
        net = nl.add_gate("NOT", net)
    nl.add_output("y[0]", net)
    return nl


class TestLibrary:
    def test_all_kinds_have_cells(self):
        for kind in ("NOT", "AND", "OR", "XOR", "MUX", "DFF"):
            assert DEFAULT_LIBRARY.cell(kind).area > 0

    def test_drive_strengths_trade_area_for_delay(self):
        x1 = DEFAULT_LIBRARY.cell("AND", 1)
        x4 = DEFAULT_LIBRARY.cell("AND", 4)
        assert x4.area > x1.area
        assert x4.delay < x1.delay

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            DEFAULT_LIBRARY.cell("NAND3")

    def test_custom_strengths(self):
        lib = CellLibrary(strengths=(1, 2))
        assert lib.cell("NOT", 2).name == "INV_X2"
        with pytest.raises(KeyError):
            lib.cell("NOT", 4)


class TestTiming:
    def test_chain_delay_additive(self):
        nl = _inverter_chain(10)
        report = analyze_timing(nl, clock_period=1.0)
        inv_delay = DEFAULT_LIBRARY.cell("NOT").delay
        assert report.critical_delay == pytest.approx(10 * inv_delay)

    def test_slack_decreases_with_chain_length(self):
        short = analyze_timing(_inverter_chain(2), 1.0)
        long = analyze_timing(_inverter_chain(40), 1.0)
        assert long.wns < short.wns

    def test_negative_slack_when_period_too_tight(self):
        nl = _inverter_chain(30)
        delay = 30 * DEFAULT_LIBRARY.cell("NOT").delay
        report = analyze_timing(nl, clock_period=delay / 2)
        assert report.wns < 0
        assert report.nvp >= 1
        assert report.tns <= report.wns

    def test_register_slack_per_rtl_register(self):
        b = GraphBuilder("t")
        a = b.input("a", 2)
        r = b.reg("r", 2)
        b.drive_reg(r, b.add(a, r, width=2))
        b.output("y", r)
        result = synthesize(b.build(), clock_period=2.0)
        assert set(result.register_slacks) == {r}
        assert result.register_slacks[r] < 2.0  # some logic before the reg

    def test_dff_endpoints_include_setup(self):
        nl = Netlist()
        nl.ensure_consts()
        a = nl.add_input("a[0]")
        q = nl.add_gate("DFF", a)
        nl.add_output("y[0]", q)
        report = analyze_timing(nl, clock_period=1.0)
        dff = DEFAULT_LIBRARY.cell("DFF")
        # Two endpoints: the D pin (slack = T - setup - 0) and the primary
        # output fed by Q (slack = T - clk_to_q).
        assert sorted(report.endpoint_slacks) == pytest.approx(
            sorted([1.0 - dff.setup, 1.0 - dff.clk_to_q])
        )

    def test_tns_per_violation(self):
        nl = _inverter_chain(50)
        report = analyze_timing(nl, clock_period=0.1)
        assert report.tns_per_violation == pytest.approx(report.tns / report.nvp)
        clean = analyze_timing(nl, clock_period=10.0)
        assert clean.tns_per_violation == 0.0


class TestArea:
    def test_area_sums_cells(self):
        nl = _inverter_chain(5)
        inv = DEFAULT_LIBRARY.cell("NOT")
        assert total_area(nl) == pytest.approx(5 * inv.area)

    def test_higher_strength_bigger_area(self):
        nl = _inverter_chain(5)
        assert total_area(nl, strength=4) > total_area(nl, strength=1)


class TestFlow:
    def _design(self):
        b = GraphBuilder("flowtest")
        a = b.input("a", 8)
        c = b.input("c", 8)
        r = b.reg("acc", 8)
        b.drive_reg(r, b.add(r, b.mul(a, c, width=8), width=8))
        b.output("y", r)
        return b.build()

    def test_synthesize_produces_result(self):
        result = synthesize(self._design(), clock_period=2.0)
        assert result.area > 0
        assert result.num_dffs == 8
        assert result.scpr == pytest.approx(1.0)
        assert result.pcs > 0

    def test_scpr_reflects_swept_registers(self):
        b = GraphBuilder("redundant")
        a = b.input("a", 4)
        live = b.reg("live", 4)
        stuck = b.reg("stuck", 4)
        b.drive_reg(live, b.xor(a, live))
        b.drive_reg(stuck, stuck)        # never toggles: swept
        b.output("y_live", live)
        b.output("y_stuck", stuck)
        result = synthesize(b.build(), clock_period=2.0)
        assert result.num_dffs == 4
        assert result.scpr == pytest.approx(0.5)

    def test_no_optimization_keeps_gates(self):
        raw = synthesize(self._design(), run_optimization=False)
        opt = synthesize(self._design(), run_optimization=True)
        assert raw.num_cells >= opt.num_cells

    def test_pareto_sweep_monotone_tradeoff(self):
        results = pareto_sweep(self._design())
        assert results
        # On the frontier, lower area must not come with better timing.
        by_area = sorted(results, key=lambda r: r.area)
        for first, second in zip(by_area, by_area[1:]):
            if second.area > first.area:
                assert second.wns >= first.wns - 1e-12

    def test_pareto_sweep_custom_periods(self):
        results = pareto_sweep(self._design(), periods=[0.2, 1.0, 5.0])
        assert all(r.clock_period in (0.2, 1.0, 5.0) for r in results)
