"""Cross-module property tests: the invariants the whole stack rests on.

These exercise random circuits through refine -> HDL -> parse -> synth
and check end-to-end invariants (validity, roundtrip stability,
behavioural equivalence of optimization).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import generate_verilog, parse_verilog
from repro.ir import NodeType, type_index, validate
from repro.postprocess import refine_to_valid
from repro.synth import elaborate, optimize, synthesize
from repro.synth.simulate import simulate


_OP_POOL = [
    NodeType.ADD, NodeType.SUB, NodeType.AND, NodeType.OR, NodeType.XOR,
    NodeType.NOT, NodeType.MUX, NodeType.EQ, NodeType.LT, NodeType.SHL,
    NodeType.SHR, NodeType.SLICE, NodeType.CONCAT, NodeType.REDUCE_OR,
    NodeType.REG, NodeType.MUL,
]


def random_valid_circuit(seed: int, n_ops: int):
    """A random valid circuit via the Phase 2 refiner (fuzzing source)."""
    rng = np.random.default_rng(seed)
    types = [NodeType.IN, NodeType.IN, NodeType.CONST, NodeType.REG]
    types += [_OP_POOL[rng.integers(0, len(_OP_POOL))] for _ in range(n_ops)]
    types += [NodeType.OUT, NodeType.OUT]
    t = np.array([type_index(x) for x in types], dtype=np.int64)
    w = rng.integers(1, 9, size=len(types)).astype(np.int64)
    n = len(t)
    adjacency = rng.random((n, n)) < 0.1
    probs = rng.random((n, n))
    return refine_to_valid(t, w, adjacency, probs, name=f"fuzz{seed}", rng=rng)


class TestRandomCircuitProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), n_ops=st.integers(5, 30))
    def test_hdl_roundtrip_preserves_structure(self, seed, n_ops):
        g = random_valid_circuit(seed, n_ops)
        text = generate_verilog(g)
        parsed = parse_verilog(text)
        assert validate(parsed).ok
        assert parsed.num_nodes == g.num_nodes
        assert parsed.num_edges == g.num_edges
        # Codegen must be deterministic and parse-stable.
        assert generate_verilog(parsed) != ""

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), n_ops=st.integers(5, 20))
    def test_synthesis_never_crashes_on_valid_circuits(self, seed, n_ops):
        g = random_valid_circuit(seed, n_ops)
        result = synthesize(g, clock_period=1.0)
        assert result.area >= 0
        assert 0 <= result.scpr <= 1.0 + 1e-9
        assert result.num_cells == len(result.netlist.gates)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_optimization_preserves_steady_state_behaviour(self, seed):
        """Optimized and raw netlists agree at the primary outputs.

        Constant-register sweeping (like commercial tools with
        uninitialised flops) may differ from the reset state for the
        first few cycles; after a warmup of #DFF cycles every constant
        chain has converged, so steady-state outputs must be identical.
        """
        g = random_valid_circuit(seed, 14)
        raw = elaborate(g)
        opt, stats = optimize(raw)
        warmup = stats.dffs_before
        rng = np.random.default_rng(seed)
        stim = []
        for _ in range(warmup + 4):
            cycle = {
                net: bool(rng.integers(0, 2))
                for _, net in raw.primary_inputs
            }
            stim.append(cycle)
        raw_out = simulate(raw, stim)
        opt_out = simulate(opt, stim)
        assert raw_out[warmup:] == opt_out[warmup:]

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), n_ops=st.integers(5, 25))
    def test_parsed_circuit_synthesizes_identically(self, seed, n_ops):
        """graph -> verilog -> graph' must synthesize to the same PPA."""
        g = random_valid_circuit(seed, n_ops)
        parsed = parse_verilog(generate_verilog(g))
        r1 = synthesize(g, clock_period=1.0)
        r2 = synthesize(parsed, clock_period=1.0)
        assert r1.num_cells == r2.num_cells
        assert r1.num_dffs == r2.num_dffs
        assert r1.area == pytest.approx(r2.area)
        assert r1.wns == pytest.approx(r2.wns)
