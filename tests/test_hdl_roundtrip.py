"""Tests for the HDL bijection: codegen, parsing, and roundtripping."""

import pytest

from repro.hdl import HDLSyntaxError, generate_verilog, parse_verilog
from repro.ir import GraphBuilder, NodeType, validate


def _signature(graph):
    """Canonical structural signature keyed by emitted signal names."""

    # Parser may order nodes differently; match by (type, width, params)
    # multiset plus the parent structure expressed through name mapping.
    by_type = sorted(
        (n.type.value, n.width, tuple(sorted(n.params.items())))
        for n in graph.nodes()
    )
    return by_type


def assert_roundtrip(graph):
    """graph -> verilog -> graph' preserves structure."""
    text = generate_verilog(graph)
    parsed = parse_verilog(text)
    assert validate(parsed).ok
    assert parsed.num_nodes == graph.num_nodes
    assert parsed.num_edges == graph.num_edges
    assert _signature(parsed) == _signature(graph)
    # Emitting again must be a fixpoint in node/edge counts.
    text2 = generate_verilog(parsed)
    parsed2 = parse_verilog(text2)
    assert parsed2.num_nodes == parsed.num_nodes
    assert parsed2.num_edges == parsed.num_edges


def build_counter():
    b = GraphBuilder("counter")
    en = b.input("en", 1)
    one = b.const(1, 4)
    count = b.reg("count", 4)
    nxt = b.mux(en, b.add(count, one, width=4), count)
    b.drive_reg(count, nxt)
    b.output("value", count)
    return b.build()


def build_all_ops():
    b = GraphBuilder("all_ops")
    a = b.input("a", 8)
    c = b.input("c", 8)
    s = b.input("s", 1)
    r = b.reg("r", 8)
    results = [
        b.add(a, c), b.sub(a, c), b.mul(a, c, width=8),
        b.and_(a, c), b.or_(a, c), b.xor(a, c),
        b.eq(a, c), b.lt(a, c), b.shl(a, c), b.shr(a, c),
        b.not_(a), b.reduce_or(a), b.slice_(a, 5, 2),
        b.concat(a, c), b.mux(s, a, c),
    ]
    acc = results[0]
    for x in results[1:]:
        acc = b.xor(acc, x, width=8)
    b.drive_reg(r, acc)
    b.output("y", r)
    return b.build()


class TestCodegen:
    def test_module_header(self):
        text = generate_verilog(build_counter())
        assert text.startswith("module counter(")
        assert "input clk;" in text
        assert text.rstrip().endswith("endmodule")

    def test_register_in_always_block(self):
        text = generate_verilog(build_counter())
        assert "always @(posedge clk) begin" in text
        assert "<=" in text

    def test_const_emitted_as_sized_literal(self):
        text = generate_verilog(build_counter())
        assert "4'd1" in text

    def test_every_op_emits(self):
        text = generate_verilog(build_all_ops())
        for op in ["+", "-", "*", "&", "|", "^", "==", "<", "<<", ">>", "~"]:
            assert op in text


class TestParser:
    def test_simple_module(self):
        text = """
        module t(clk, a, y);
          input clk;
          input [3:0] a;
          output [3:0] y;
          assign y = ~a;
        endmodule
        """
        g = parse_verilog(text)
        assert len(g.nodes_of_type(NodeType.NOT)) == 1
        assert g.node(g.outputs()[0]).width == 4

    def test_nested_expression_decomposed(self):
        text = """
        module t(clk, a, b, c, y);
          input clk;
          input [3:0] a; input [3:0] b; input [3:0] c;
          output [3:0] y;
          assign y = (a + b) ^ c;
        endmodule
        """
        g = parse_verilog(text)
        assert len(g.nodes_of_type(NodeType.ADD)) == 1
        assert len(g.nodes_of_type(NodeType.XOR)) == 1

    def test_register_feedback(self):
        text = """
        module t(clk, y);
          input clk;
          output y;
          reg r;
          wire nr;
          assign nr = ~r;
          always @(posedge clk) begin
            r <= nr;
          end
          assign y = r;
        endmodule
        """
        g = parse_verilog(text)
        reg = g.nodes_of_type(NodeType.REG)[0]
        inv = g.nodes_of_type(NodeType.NOT)[0]
        assert g.filled_parents(reg) == [inv]
        assert g.filled_parents(inv) == [reg]

    def test_sized_literals(self):
        text = """
        module t(clk, y);
          input clk;
          output [7:0] y;
          wire [7:0] k;
          assign k = 8'hA5;
          assign y = k;
        endmodule
        """
        g = parse_verilog(text)
        const = g.node(g.nodes_of_type(NodeType.CONST)[0])
        assert const.params["value"] == 0xA5
        assert const.width == 8

    def test_unsupported_statement_raises(self):
        with pytest.raises(HDLSyntaxError):
            parse_verilog("module t(clk); input clk; initial x = 1; endmodule")

    def test_undeclared_signal_raises(self):
        text = """
        module t(clk, y);
          input clk; output y;
          assign y = ghost;
        endmodule
        """
        with pytest.raises(HDLSyntaxError, match="undeclared"):
            parse_verilog(text)

    def test_missing_module_raises(self):
        with pytest.raises(HDLSyntaxError):
            parse_verilog("wire x;")


class TestRoundtrip:
    def test_counter(self):
        assert_roundtrip(build_counter())

    def test_all_ops(self):
        assert_roundtrip(build_all_ops())

    def test_slice_beyond_source_width_uses_pad(self):
        b = GraphBuilder("padded")
        a = b.input("a", 4)
        s = b.slice_(a, 7, 2)  # hi=7 exceeds 4-bit source: needs padding
        b.output("y", s)
        g = b.build()
        text = generate_verilog(g)
        assert "_pad" in text
        assert_roundtrip(g)

    def test_pure_sequential_loop(self):
        b = GraphBuilder("osc")
        r = b.reg("r", 1)
        b.drive_reg(r, b.not_(r))
        b.output("q", r)
        assert_roundtrip(b.build())
