"""Tests for the four baseline generators and their shared machinery."""

import numpy as np
import pytest

from repro.baselines import (
    DVAEBaseline,
    DVAEConfig,
    GraphMakerV,
    GraphRNNBaseline,
    GraphRNNConfig,
    GravityDirectioner,
    SparseDigressV,
    dagify,
    guaranteed_attributes,
    topological_order,
    type_position_prior,
)
from repro.bench_designs import load_corpus
from repro.ir import NodeType, arity_of, type_from_index, type_index, validate


@pytest.fixture(scope="module")
def corpus():
    return load_corpus()[:6]


class TestDagify:
    def test_removes_all_cycles(self, corpus):
        import networkx as nx

        for g in corpus:
            a = dagify(g)
            nx_g = nx.from_numpy_array(a, create_using=nx.DiGraph)
            assert nx.is_directed_acyclic_graph(nx_g)

    def test_only_removes_edges(self, corpus):
        for g in corpus:
            a_orig = g.adjacency()
            a_dag = dagify(g)
            assert not (a_dag & ~a_orig).any()

    def test_acyclic_graph_untouched(self):
        from repro.ir import GraphBuilder

        b = GraphBuilder("dag")
        x = b.input("x", 1)
        b.output("y", b.not_(x))
        g = b.build()
        np.testing.assert_array_equal(dagify(g), g.adjacency())


class TestTopologicalOrder:
    def test_parents_precede_children(self, corpus):
        for g in corpus:
            a = dagify(g)
            order = topological_order(a)
            pos = {int(v): i for i, v in enumerate(order)}
            for src, dst in zip(*np.nonzero(a)):
                assert pos[int(src)] < pos[int(dst)]

    def test_cyclic_input_rejected(self):
        a = np.zeros((2, 2), dtype=bool)
        a[0, 1] = a[1, 0] = True
        with pytest.raises(ValueError):
            topological_order(a)


class TestAttributeOrdering:
    def test_position_prior_orders_io(self, corpus):
        prior = type_position_prior(corpus)
        assert prior[type_index(NodeType.IN)] < prior[type_index(NodeType.OUT)]

    def test_guaranteed_source_first(self):
        types = np.array([
            type_index(NodeType.MUX), type_index(NodeType.IN)
        ])
        widths = np.array([4, 4])
        t2, w2 = guaranteed_attributes(types, widths)
        assert arity_of(type_from_index(int(t2[0]))) == 0


class TestGravity:
    def test_learns_direction_bias(self, corpus):
        gravity = GravityDirectioner().fit(corpus)
        # Edges into OUT nodes exist; edges out of OUT nodes never do, so
        # OUT must have high mass relative to IN (which only drives).
        p = gravity.orientation_probability(
            np.array([type_index(NodeType.IN)]),
            np.array([type_index(NodeType.OUT)]),
        )
        assert p[0] > 0.5

    def test_no_edges_rejected(self):
        from repro.ir import CircuitGraph

        g = CircuitGraph()
        g.add_node(NodeType.IN, 1)
        with pytest.raises(ValueError):
            GravityDirectioner().fit([g])


class TestAutoregressiveBaselines:
    @pytest.fixture(scope="class")
    def graphrnn(self):
        graphs = load_corpus()[:6]
        return GraphRNNBaseline(
            GraphRNNConfig(epochs=6, hidden=24, window=16, seed=0)
        ).fit(graphs)

    @pytest.fixture(scope="class")
    def dvae(self):
        graphs = load_corpus()[:6]
        return DVAEBaseline(
            DVAEConfig(epochs=6, hidden=24, window=16, seed=0)
        ).fit(graphs)

    def test_graphrnn_loss_decreases(self, graphrnn):
        assert graphrnn.losses[-1] < graphrnn.losses[0]

    def test_dvae_loss_decreases(self, dvae):
        assert dvae.losses[-1] < dvae.losses[0]

    def test_graphrnn_generates_valid_dag(self, graphrnn):
        import networkx as nx

        rng = np.random.default_rng(0)
        g = graphrnn.generate(40, rng)
        assert validate(g).ok
        nx_g = nx.from_numpy_array(g.adjacency(), create_using=nx.DiGraph)
        # The paper's point: these baselines can only make DAGs.
        assert nx.is_directed_acyclic_graph(nx_g)

    def test_dvae_generates_valid_dag(self, dvae):
        import networkx as nx

        rng = np.random.default_rng(0)
        g = dvae.generate(40, rng)
        assert validate(g).ok
        nx_g = nx.from_numpy_array(g.adjacency(), create_using=nx.DiGraph)
        assert nx.is_directed_acyclic_graph(nx_g)

    def test_generate_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GraphRNNBaseline().generate(10, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            DVAEBaseline().generate(10, np.random.default_rng(0))

    def test_fit_empty_rejected(self):
        with pytest.raises(ValueError):
            GraphRNNBaseline().fit([])
        with pytest.raises(ValueError):
            DVAEBaseline().fit([])


class TestOneShotBaselines:
    @pytest.mark.parametrize("cls", [GraphMakerV, SparseDigressV])
    def test_generates_valid_graphs(self, cls, corpus):
        model = cls(seed=0).fit(corpus)
        rng = np.random.default_rng(1)
        g = model.generate(40, rng)
        assert validate(g).ok
        assert g.num_nodes == 40

    def test_one_shot_graphs_can_contain_cycles(self, corpus):
        """Unlike the autoregressive baselines, direction assignment can
        produce sequential feedback (cycles through registers)."""
        import networkx as nx

        model = GraphMakerV(seed=0).fit(corpus)
        found_cycle = False
        for seed in range(8):
            g = model.generate(50, np.random.default_rng(seed))
            nx_g = nx.from_numpy_array(g.adjacency(), create_using=nx.DiGraph)
            if not nx.is_directed_acyclic_graph(nx_g):
                found_cycle = True
                break
        assert found_cycle

    def test_sparse_digress_respects_budget_scale(self, corpus):
        model = SparseDigressV(seed=0).fit(corpus)
        rng = np.random.default_rng(0)
        g = model.generate(60, rng)
        # Edge count should be near the corpus edges-per-node rate (after
        # validity refinement it can only move moderately).
        rate = g.num_edges / g.num_nodes
        assert 0.5 < rate < 4.0

    @pytest.mark.parametrize("cls", [GraphMakerV, SparseDigressV])
    def test_unfitted_raises(self, cls):
        with pytest.raises(RuntimeError):
            cls().generate(10, np.random.default_rng(0))
