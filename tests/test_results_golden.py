"""Golden-file regression tests for the ``results/`` tables.

The paper-reproduction tables under ``results/`` are rewritten in place
by the (slow, session-scoped) ``benchmarks/`` suite, so a metric drift
used to *silently* rewrite them.  These tests pin the pipeline that
produces every table family:

* ``table1_dataset``    -- regenerated at full fidelity (it only depends
  on the corpus and the synthesis flow) and diffed against the committed
  ``results/table1_dataset.txt`` itself.
* ``fig5_real_designs`` -- the training-independent "Real designs" row of
  Fig. 5, full fidelity.
* ``table2_structural_smoke`` / ``fig4a_scpr_smoke`` -- the trained-model
  tables, regenerated on the ``smoke`` preset against goldens committed
  under ``tests/goldens/``.

Comparison is numeric with tolerances (ints exact, floats atol+rtol), so
cross-platform float noise passes while real metric drift fails.

To refresh after an *intentional* metric change::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_results_golden.py
"""

import os
import pathlib
import re

import numpy as np
import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"
GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "goldens"
CLOCK_PERIOD = 1.0

_NUMBER = re.compile(r"-?\d+(?:\.\d+)?")


def assert_tables_match(actual: str, golden: str, atol=2e-3, rtol=1e-2):
    """Numeric table diff: identical skeleton, ints exact, floats close."""
    skeleton_actual = _NUMBER.sub("<n>", actual).strip()
    skeleton_golden = _NUMBER.sub("<n>", golden).strip()
    assert skeleton_actual == skeleton_golden, (
        "table layout changed:\n--- golden ---\n"
        f"{golden}\n--- regenerated ---\n{actual}"
    )
    numbers_actual = _NUMBER.findall(actual)
    numbers_golden = _NUMBER.findall(golden)
    assert len(numbers_actual) == len(numbers_golden)
    for got, want in zip(numbers_actual, numbers_golden):
        if "." not in got and "." not in want:
            assert int(got) == int(want), f"integer cell {got} != {want}"
        else:
            assert float(got) == pytest.approx(
                float(want), abs=atol, rel=rtol
            ), f"numeric cell {got} drifted from {want}"


# ---------------------------------------------------------------------------
# Shared smoke-preset models (trained once per module)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def smoke_split():
    from repro.bench_designs import train_test_split

    return train_test_split(seed=2025)


@pytest.fixture(scope="module")
def smoke_engine(smoke_split):
    from repro.api import SynCircuit, resolve_preset

    return SynCircuit(resolve_preset("smoke")).fit(smoke_split[0])


@pytest.fixture(scope="module")
def smoke_engine_no_diff(smoke_split):
    from repro.api import SynCircuit, resolve_preset

    config = resolve_preset("smoke")
    config.use_diffusion = False
    return SynCircuit(config).fit(smoke_split[0])


# ---------------------------------------------------------------------------
# Table builders (same rendering as the benchmarks/ suite)
# ---------------------------------------------------------------------------


def build_table1(request) -> str:
    from repro.bench_designs import corpus_statistics, load_corpus
    from repro.synth import synthesize

    gate_counts = {
        graph.name: synthesize(graph, clock_period=CLOCK_PERIOD).num_cells
        for graph in load_corpus()
    }
    rows = corpus_statistics(gate_counts)
    header = (
        f"{'Source Benchmark':<18s}{'# Designs':>10s}{'HDL Type':>10s}"
        f"{'Min':>8s}{'Median':>8s}{'Max':>8s}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['source']:<18s}{row['num_designs']:>10d}"
            f"{row['hdl_type']:>10s}{row['min_gates']:>8d}"
            f"{row['median_gates']:>8d}{row['max_gates']:>8d}"
        )
    return "\n".join(lines)


def build_fig5_real(request) -> str:
    from repro.bench_designs import load_corpus
    from repro.metrics import collect_timing_distribution

    distribution = collect_timing_distribution(
        load_corpus(), "Real designs", clock_period=0.25
    )
    summary = distribution.summary()
    header = (
        f"{'dataset':<14s}{'wns_mean':>10s}{'wns_std':>10s}{'wns_min':>10s}"
        f"{'tns/nvp_mean':>14s}{'tns/nvp_std':>13s}{'tns/nvp_min':>13s}"
    )
    row = (
        f"{'Real designs':<14s}{summary['wns_mean']:>10.3f}"
        f"{summary['wns_std']:>10.3f}{summary['wns_min']:>10.3f}"
        f"{summary['tns_nvp_mean']:>14.3f}{summary['tns_nvp_std']:>13.3f}"
        f"{summary['tns_nvp_min']:>13.3f}"
    )
    return "\n".join([header, "-" * len(header), row])


def build_table2_smoke(request) -> str:
    from repro.bench_designs import reference_designs
    from repro.metrics import structural_similarity

    engine = request.getfixturevalue("smoke_engine")
    engine_no_diff = request.getfixturevalue("smoke_engine_no_diff")
    generators = {
        "SynCircuit w/o diff": engine_no_diff,
        "SynCircuit w/ diff": engine,
    }
    references = reference_designs()
    metric_names = ("out_degree", "cluster", "orbit",
                    "triangle", "h(A,Y)", "h(A2,Y)")
    results = {}
    for model_name, model in generators.items():
        results[model_name] = {}
        for ref_name, reference in references.items():
            rng = np.random.default_rng(17)
            graphs = [
                model.generate_one(
                    reference.num_nodes, rng, optimize=False
                ).g_val
                for _ in range(2)
            ]
            results[model_name][ref_name] = structural_similarity(
                reference, graphs
            ).as_row()

    ref_names = list(references)
    header = f"{'Model':<22s}" + "".join(
        f"{metric + '/' + ref.split('_')[0]:>18s}"
        for metric in metric_names for ref in ref_names
    )
    lines = [header, "-" * len(header)]
    for model_name, per_ref in results.items():
        cells = [
            f"{per_ref[ref_name][metric]:>18.3f}"
            for metric in metric_names for ref_name in ref_names
        ]
        lines.append(f"{model_name:<22s}" + "".join(cells))
    return "\n".join(lines)


def build_fig4a_smoke(request) -> str:
    from repro.mcts import random_search_registers
    from repro.synth import synthesize

    engine = request.getfixturevalue("smoke_engine")
    records = engine.generate(2, (40, 50), optimize=True, seed=11,
                              name_prefix="sc")
    lines = [
        f"{'design':<10s}{'scpr_no_opt':>14s}{'scpr_random':>14s}"
        f"{'scpr_mcts':>14s}"
    ]
    for record in records:
        scpr_before = synthesize(record.g_val, clock_period=CLOCK_PERIOD).scpr
        random_report = random_search_registers(
            record.g_val, reward_fn=engine._reward_fn,
            config=engine.config.mcts,
        )
        scpr_random = synthesize(
            random_report.graph, clock_period=CLOCK_PERIOD
        ).scpr
        scpr_mcts = synthesize(record.g_opt, clock_period=CLOCK_PERIOD).scpr
        lines.append(
            f"{record.g_val.name:<10s}{scpr_before:>14.3f}"
            f"{scpr_random:>14.3f}{scpr_mcts:>14.3f}"
        )
    return "\n".join(lines)


#: case name -> (builder, committed golden path)
CASES = {
    "table1_dataset": (build_table1, RESULTS_DIR / "table1_dataset.txt"),
    "fig5_real_designs": (build_fig5_real,
                          GOLDEN_DIR / "fig5_real_designs.txt"),
    "table2_structural_smoke": (build_table2_smoke,
                                GOLDEN_DIR / "table2_structural_smoke.txt"),
    "fig4a_scpr_smoke": (build_fig4a_smoke,
                         GOLDEN_DIR / "fig4a_scpr_smoke.txt"),
}


@pytest.mark.parametrize("case", list(CASES))
def test_results_tables_match_goldens(case, request):
    builder, golden_path = CASES[case]
    regenerated = builder(request)
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        golden_path.parent.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(regenerated + "\n")
    assert golden_path.exists(), (
        f"missing golden {golden_path}; run with REPRO_UPDATE_GOLDENS=1 "
        "to create it"
    )
    assert_tables_match(regenerated, golden_path.read_text())


def test_fig5_real_row_consistent_with_results_table():
    """The committed full Fig. 5 table must contain the same
    training-independent row this test regenerates -- the guard that
    benchmarks/ and tests/ do not drift apart."""
    committed = (RESULTS_DIR / "fig5_timing_stats.txt").read_text()
    row = next(
        line for line in committed.splitlines()
        if line.startswith("Real designs")
    )
    regenerated_row = build_fig5_real(None).splitlines()[-1]
    assert_tables_match(regenerated_row, row)
