"""Tests for the repro.bench subsystem: harness, report schema, the CI
regression gate, and the Session/CLI entry points."""

import json

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    BenchRecord,
    Benchmark,
    BenchReport,
    compare,
    run_benchmark,
    run_suite,
)

#: The stable contract of BENCH_<suite>.json; renaming or dropping any of
#: these keys is a schema break and must bump SCHEMA_VERSION.
REPORT_KEYS = {
    "schema_version", "suite", "preset", "config_fingerprint", "git_rev",
    "created_unix", "python_version", "numpy_version", "benchmarks",
}
RECORD_KEYS = {
    "name", "repeats", "ops", "wall_best", "wall_mean", "wall_std",
    "ops_per_s", "meta",
}


def _record(name: str, wall: float) -> BenchRecord:
    return BenchRecord(
        name=name, repeats=3, ops=10,
        wall_best=wall, wall_mean=wall, wall_std=0.0,
    )


def _report(**walls) -> BenchReport:
    return BenchReport(
        suite="t", preset="t", config_fingerprint="cfg",
        records=[_record(k, v) for k, v in walls.items()],
    )


class TestHarness:
    def test_run_benchmark_counts_and_ops(self):
        calls = []
        bench = Benchmark(
            name="demo",
            setup=lambda: calls.append("setup") or "state",
            run=lambda state: calls.append(state),
            ops=7,
        )
        record = run_benchmark(bench, repeats=3, warmup=2)
        assert calls == ["setup", "state", "state", "state", "state", "state"]
        assert record.repeats == 3 and record.ops == 7
        assert 0 <= record.wall_best <= record.wall_mean
        assert record.ops_per_s > 0

    def test_run_return_value_overrides_ops(self):
        bench = Benchmark(name="dyn", setup=lambda: None, run=lambda _: 123)
        assert run_benchmark(bench, repeats=1, warmup=0).ops == 123

    def test_benchmark_repeats_override(self):
        count = []
        bench = Benchmark(
            name="once", setup=lambda: None,
            run=lambda _: count.append(1), repeats=1,
        )
        record = run_benchmark(bench, repeats=5, warmup=0)
        assert record.repeats == 1 and len(count) == 1

    def test_invalid_repeats(self):
        bench = Benchmark(name="x", setup=lambda: None, run=lambda _: None)
        with pytest.raises(ValueError):
            run_benchmark(bench, repeats=0)


class TestReportSchema:
    def test_schema_keys_stable(self, tmp_path):
        report = _report(a=0.1)
        data = json.loads(report.write(tmp_path / "b.json").read_text())
        assert set(data) == REPORT_KEYS
        assert data["schema_version"] == SCHEMA_VERSION
        assert all(set(row) == RECORD_KEYS for row in data["benchmarks"])

    def test_json_roundtrip(self, tmp_path):
        report = _report(a=0.25, b=0.5)
        report.git_rev = "abc123"
        path = report.write(tmp_path / "BENCH_t.json")
        loaded = BenchReport.load(path)
        assert loaded.to_dict() == report.to_dict()

    def test_render_mentions_every_benchmark(self):
        text = _report(alpha=0.1, beta=0.2).render()
        assert "alpha" in text and "beta" in text


class TestRegressionGate:
    def test_no_regression_within_budget(self):
        current, baseline = _report(a=0.018), _report(a=0.010)
        assert compare(current, baseline, max_regression=2.0) == []

    def test_regression_detected(self):
        current, baseline = _report(a=0.021, b=0.010), _report(a=0.010, b=0.010)
        regressions = compare(current, baseline, max_regression=2.0)
        assert [r.name for r in regressions] == ["a"]
        assert regressions[0].ratio == pytest.approx(2.1)
        assert "2.10x" in str(regressions[0])

    def test_tiny_benchmarks_are_noise_exempt(self):
        current, baseline = _report(a=0.004), _report(a=0.0001)
        assert compare(current, baseline, max_regression=2.0) == []
        assert compare(current, baseline, max_regression=2.0, min_time=0.0)

    def test_added_and_removed_benchmarks_ignored(self):
        current, baseline = _report(new=9.0), _report(old=0.01)
        assert compare(current, baseline) == []


class TestSuite:
    def test_simulation_suite_and_speedup_annotation(self):
        report = run_suite(
            preset="smoke", repeats=1, warmup=0, filter_pattern="simulate"
        )
        names = [record.name for record in report.records]
        assert names == [
            "simulate.scalar", "simulate.bitparallel",
            "simulate.bitparallel_steady",
        ]
        by_name = {record.name: record for record in report.records}
        packed = by_name["simulate.bitparallel"]
        assert packed.meta["speedup_vs_scalar"] > 1.0
        # Throughput accounting: both backends report the same op count.
        assert packed.ops == by_name["simulate.scalar"].ops > 0
        assert report.suite == "smoke" and report.config_fingerprint

    def test_batch_queue_reports_ms_per_candidate(self):
        report = run_suite(
            preset="smoke", repeats=1, warmup=0,
            filter_pattern="incr.batch_queue",
        )
        (record,) = report.records
        per_candidate = record.meta["ms_per_candidate"]
        assert per_candidate == pytest.approx(
            record.wall_best * 1000.0 / record.ops, rel=1e-3
        )
        # The ROADMAP target the CI job tracks: compile/patch cost per
        # candidate stays well under the pre-patchable ~1.2ms floor.
        assert per_candidate < 1.0

    def test_profile_rendering_shows_drift(self):
        from repro.bench import render_profile

        report = run_suite(
            preset="smoke", repeats=1, warmup=0,
            filter_pattern="metrics",
        )
        text = render_profile(report, report)
        assert "metrics.structural" in text
        assert "+0%" in text or "-0%" in text
        assert "baseline rev" in text
        # Without a baseline the table still renders (dashes).
        assert "metrics.structural" in render_profile(report, None)

    def test_session_bench_writes_report(self, tmp_path):
        from repro.api import BenchRequest, Session

        out = tmp_path / "BENCH_out.json"
        session = Session(preset="smoke")
        report = session.bench(BenchRequest(
            repeats=1, warmup=0, filter="metrics", output=str(out),
        ))
        assert [r.name for r in report.records] == ["metrics.structural"]
        assert report.suite == "smoke"
        assert json.loads(out.read_text())["suite"] == "smoke"

    def test_bench_request_roundtrip(self):
        from repro.api import BenchRequest

        request = BenchRequest(repeats=5, filter="sim", output="x.json")
        assert BenchRequest.from_dict(request.to_dict()) == request


class TestCli:
    def test_cli_bench_writes_and_gates(self, tmp_path, capsys):
        from repro.cli import main

        # simulate.scalar is well above compare()'s noise floor.
        run = ["bench", "--filter", "simulate.scalar", "--repeats", "1"]
        out = tmp_path / "BENCH_smoke.json"
        assert main([*run, "-o", str(out)]) == 0
        assert out.exists()
        capsys.readouterr()

        # A wildly faster baseline must trip the gate ...
        fast = BenchReport.load(out)
        for record in fast.records:
            record.wall_best = record.wall_best / 100.0
        baseline = tmp_path / "baseline.json"
        fast.write(baseline)
        assert main([*run, "-o", str(out), "--compare", str(baseline)]) == 1
        assert "PERF REGRESSION" in capsys.readouterr().out

        # ... and a generous one must pass.
        slow = BenchReport.load(out)
        for record in slow.records:
            record.wall_best = record.wall_best * 100.0
        slow.write(baseline)
        assert main([*run, "-o", str(out), "--compare", str(baseline)]) == 0

    def test_cli_bench_profile_flag(self, tmp_path, monkeypatch, capsys):
        # --profile prints the per-op drift table against the committed
        # BENCH_<suite>.json in the working directory.
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        run = ["bench", "--filter", "metrics", "--repeats", "1"]
        assert main([*run, "-o", "BENCH_smoke.json"]) == 0
        capsys.readouterr()
        assert main([*run, "--profile", "-o", str(tmp_path / "x.json")]) == 0
        out = capsys.readouterr().out
        assert "per-op" in out and "baseline" in out
        assert "metrics.structural" in out

    def test_cli_compare_with_default_output_does_not_self_compare(
        self, tmp_path, monkeypatch, capsys
    ):
        # `repro bench --compare BENCH_smoke.json` (no -o) writes its
        # report to that same default path; the gate must still run
        # against the baseline's *old* contents, not the fresh report.
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        run = ["bench", "--filter", "simulate.scalar", "--repeats", "1"]
        assert main([*run, "-o", "BENCH_smoke.json"]) == 0
        baseline = BenchReport.load("BENCH_smoke.json")
        for record in baseline.records:
            record.wall_best = record.wall_best / 100.0
        baseline.write("BENCH_smoke.json")
        assert main([*run, "--compare", "BENCH_smoke.json"]) == 1
        assert "PERF REGRESSION" in capsys.readouterr().out
