"""End-to-end coverage of the ``repro.pipeline`` deprecation shim.

The shim must (1) warn on access -- once per call site under the default
warning filter, (2) hand out the *same* objects as ``repro.api``, and
(3) keep the old entry points fully functional: fitting and generating a
valid graph through ``repro.pipeline.SynCircuit`` must still work."""

import warnings

import pytest

import repro.api
import repro.pipeline as pipeline


class TestShimSurface:
    def test_access_warns_and_aliases_api(self):
        for name in ("SynCircuit", "SynCircuitConfig", "GenerationRecord"):
            with pytest.warns(DeprecationWarning, match=f"repro.pipeline.{name}"):
                obj = getattr(pipeline, name)
            assert obj is getattr(repro.api, name)

    def test_warning_emitted_once_per_site(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("default")
            for _ in range(3):
                pipeline.SynCircuitConfig  # same call site each iteration
        assert len(caught) == 1
        assert issubclass(caught[0].category, DeprecationWarning)

    def test_dir_lists_moved_names_only(self):
        assert dir(pipeline) == [
            "GenerationRecord", "SynCircuit", "SynCircuitConfig",
        ]

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute 'Frobnicator'"):
            pipeline.Frobnicator


class TestShimEndToEnd:
    def test_old_entry_points_still_generate(self):
        from repro.bench_designs import load_corpus
        from repro.diffusion import DiffusionConfig
        from repro.ir import validate
        from repro.mcts import MCTSConfig

        with pytest.warns(DeprecationWarning):
            from repro.pipeline import SynCircuit, SynCircuitConfig

        config = SynCircuitConfig(
            diffusion=DiffusionConfig(epochs=4, hidden=12, num_layers=2),
            mcts=MCTSConfig(num_simulations=5, max_depth=3, branching=3),
        )
        engine = SynCircuit(config).fit(load_corpus()[:3])
        record = engine.generate(1, 24, optimize=False, seed=0)[0]
        assert validate(record.g_val).ok
        assert record.graph is record.g_val
        # The shim and the api build literally the same class of record.
        assert isinstance(record, repro.api.GenerationRecord)
