"""Tests for the observability layer (``repro.obs``).

Three contracts are load-bearing:

* **Bit-identity** -- tracing is observation only, so a traced run of
  the MCTS optimizer or ``Session.generate`` must reproduce the
  untraced output exactly (same graphs, same rewards, same counters).
* **Bounded memory** -- the span ring holds the newest ``capacity``
  records, counts what it overwrote, and never grows.
* **Loadable export** -- the Chrome trace JSON round-trips through
  ``json`` and carries the event shapes Perfetto expects
  (``"X"`` complete events with ``ts``/``dur``, ``"M"`` metadata).
"""

import contextvars
import io
import json
import logging
import threading

import pytest

from repro.api import GenerateRequest, Session
from repro.api.presets import resolve_preset
from repro.bench_designs import load_corpus, load_design
from repro.mcts.optimize import optimize_registers
from repro.obs import (
    MetricsRegistry,
    TraceRecorder,
    configure_logging,
    get_logger,
    instant,
    is_tracing,
    parse_env_spec,
    registry,
    span,
    tracing,
)


# ---------------------------------------------------------------------------
# Spans and the activation contract
# ---------------------------------------------------------------------------


class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        # No active recorder: every call site gets the same stateless
        # object -- the zero-allocation fast path the bench gate keeps.
        assert not is_tracing()
        first = span("a", x=1)
        second = span("b")
        assert first is second
        with first as handle:
            handle.add(ignored=True)  # must not raise

    def test_span_records_name_duration_attrs(self):
        recorder = TraceRecorder()
        with tracing(recorder):
            assert is_tracing()
            with span("phase", design="uart") as active:
                active.add(items=3)
        assert not is_tracing()
        [record] = recorder.spans()
        assert record.name == "phase"
        assert record.duration_ns >= 0
        assert record.attrs == {"design": "uart", "items": 3}

    def test_tracing_none_is_noop(self):
        with tracing(None):
            assert not is_tracing()
            with span("never"):
                pass
        assert len(TraceRecorder()) == 0

    def test_nested_spans_both_recorded(self):
        recorder = TraceRecorder()
        with tracing(recorder):
            with span("outer"):
                with span("inner"):
                    pass
        names = [record.name for record in recorder.spans()]
        # Inner closes first (completion order, like Chrome traces).
        assert names == ["inner", "outer"]

    def test_instant_records_zero_duration(self):
        recorder = TraceRecorder()
        with tracing(recorder):
            instant("marker", reason="test")
        [record] = recorder.spans()
        assert record.duration_ns == 0
        assert record.attrs == {"reason": "test"}

    def test_recorder_propagates_into_copied_context(self):
        # Session.generate_batch submits pool work through
        # contextvars.copy_context().run -- this is the contract that
        # makes worker-thread spans land in the caller's recorder.
        recorder = TraceRecorder()
        results = []

        def worker():
            with span("in-thread"):
                results.append(is_tracing())

        with tracing(recorder):
            ctx = contextvars.copy_context()
        thread = threading.Thread(target=ctx.run, args=(worker,))
        thread.start()
        thread.join()
        assert results == [True]
        [record] = recorder.spans()
        assert record.name == "in-thread"
        assert record.thread_id != threading.get_ident()


class TestRingBuffer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)

    def test_wraparound_keeps_newest_and_counts_dropped(self):
        recorder = TraceRecorder(capacity=8)
        with tracing(recorder):
            for index in range(20):
                with span("tick", index=index):
                    pass
        assert len(recorder) == 8
        assert recorder.recorded == 20
        assert recorder.dropped == 12
        # Oldest-first order over the survivors: the last 8 spans.
        kept = [record.attrs["index"] for record in recorder.spans()]
        assert kept == list(range(12, 20))

    def test_clear_resets_everything(self):
        recorder = TraceRecorder(capacity=4)
        with tracing(recorder):
            for _ in range(9):
                with span("tick"):
                    pass
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.recorded == 0
        assert recorder.dropped == 0
        assert recorder.spans() == []

    def test_totals_aggregates_by_name(self):
        recorder = TraceRecorder()
        with tracing(recorder):
            for _ in range(3):
                with span("a"):
                    pass
            with span("b"):
                pass
        totals = recorder.totals()
        assert totals["a"][0] == 3
        assert totals["b"][0] == 1
        assert totals["a"][1] >= 0.0


# ---------------------------------------------------------------------------
# Chrome trace export (the Perfetto-loadable JSON)
# ---------------------------------------------------------------------------


class TestChromeTrace:
    def test_round_trip_through_json(self, tmp_path):
        recorder = TraceRecorder()
        with tracing(recorder):
            with span("work", nodes=40):
                pass
        path = recorder.write_chrome_trace(
            tmp_path / "trace.json", metadata={"preset": "smoke"}
        )
        with open(path) as handle:
            payload = json.load(handle)

        events = payload["traceEvents"]
        assert payload["displayTimeUnit"] == "ms"
        # Process metadata first, then one thread_name per thread seen.
        assert events[0] == {
            "ph": "M", "pid": events[0]["pid"], "tid": 0,
            "name": "process_name", "args": {"name": "repro"},
        }
        assert any(
            e["ph"] == "M" and e["name"] == "thread_name" for e in events
        )
        [complete] = [e for e in events if e["ph"] == "X"]
        assert complete["name"] == "work"
        assert isinstance(complete["ts"], float)
        assert isinstance(complete["dur"], float)
        assert complete["ts"] >= 0.0 and complete["dur"] >= 0.0
        assert complete["args"] == {"nodes": 40}

        other = payload["otherData"]
        assert other["recorded"] == 1
        assert other["dropped"] == 0
        assert other["preset"] == "smoke"

    def test_non_json_attrs_are_coerced(self):
        recorder = TraceRecorder()
        with tracing(recorder):
            with span("odd", path=object(), seq=(1, 2), table={3: "x"}):
                pass
        [event] = [
            e for e in recorder.to_chrome_trace()["traceEvents"]
            if e["ph"] == "X"
        ]
        json.dumps(event)  # must not raise
        assert event["args"]["seq"] == [1, 2]
        assert event["args"]["table"] == {"3": "x"}
        assert isinstance(event["args"]["path"], str)

    def test_threads_get_compact_ids(self):
        recorder = TraceRecorder()
        # Both threads must be alive at once: the OS reuses thread ids,
        # so a sequentially-run pair can legitimately share one.
        barrier = threading.Barrier(2)

        def work():
            with span("t"):
                barrier.wait(timeout=10)

        with tracing(recorder):
            # One context copy per thread: a Context object can only be
            # entered by one thread at a time (the Session pool copies
            # per submit for the same reason).
            threads = [
                threading.Thread(
                    target=contextvars.copy_context().run, args=(work,)
                )
                for _ in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            with span("t"):
                pass
        events = recorder.to_chrome_trace()["traceEvents"]
        tids = {e["tid"] for e in events if e["ph"] == "X"}
        assert tids == {0, 1, 2}


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        counter = reg.counter("jobs_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("depth")
        gauge.set(5)
        gauge.dec(2)
        gauge.inc()
        assert gauge.value == 4.0

    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("hits") is reg.counter("hits")

    def test_kind_mismatch_is_loud(self):
        reg = MetricsRegistry()
        reg.counter("hits")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("hits")

    def test_prefix_applies_to_names(self):
        reg = MetricsRegistry(prefix="repro_")
        reg.counter("hits").inc()
        assert reg.names() == ["repro_hits"]
        assert reg.value("hits") == 1.0
        assert reg.value("absent") == 0.0
        assert reg.get("hits").name == "repro_hits"

    def test_histogram_quantiles_and_buckets(self):
        reg = MetricsRegistry()
        hist = reg.histogram("seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 2.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(3.05)
        assert hist.quantile(0.5) == 0.5
        assert hist.quantile(1.0) == 2.0
        assert hist.quantile(0.0) == 0.05
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        assert MetricsRegistry().histogram("empty").quantile(0.5) is None

    def test_histogram_window_keeps_recent_samples(self):
        from repro.obs.metrics import _SAMPLE_WINDOW

        hist = MetricsRegistry().histogram("seconds")
        for value in range(_SAMPLE_WINDOW + 100):
            hist.observe(float(value))
        # Lifetime counters keep everything; quantiles see the window.
        assert hist.count == _SAMPLE_WINDOW + 100
        assert hist.quantile(0.0) == 100.0

    def test_render_prometheus_text_format(self):
        reg = MetricsRegistry(prefix="repro_")
        reg.counter("jobs_total", help="jobs finished").inc(42)
        reg.gauge("queue_depth").set(3)
        hist = reg.histogram("job_seconds", buckets=(1.0, 5.0))
        hist.observe(0.5)
        hist.observe(7.0)
        text = reg.render_prometheus()
        assert "# HELP repro_jobs_total jobs finished" in text
        assert "# TYPE repro_jobs_total counter" in text
        assert "repro_jobs_total 42" in text  # integer: no trailing .0
        assert "# TYPE repro_queue_depth gauge" in text
        assert 'repro_job_seconds_bucket{le="1"} 1' in text
        assert 'repro_job_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_job_seconds_sum 7.5" in text
        assert "repro_job_seconds_count 2" in text
        assert text.endswith("\n")

    def test_to_dict_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.histogram("seconds").observe(0.25)
        snapshot = reg.to_dict()
        assert snapshot["hits"] == 1.0
        assert snapshot["seconds"]["count"] == 1
        assert snapshot["seconds"]["p50"] == 0.25

    def test_global_registry_is_shared_and_prefixed(self):
        assert registry() is registry()
        assert registry().prefix == "repro_"


# ---------------------------------------------------------------------------
# Logging configuration
# ---------------------------------------------------------------------------


class TestLogs:
    def test_get_logger_prefixes_bare_names(self):
        assert get_logger("mcts").name == "repro.mcts"
        assert get_logger("repro.mcts.optimize").name == "repro.mcts.optimize"

    def test_parse_env_spec(self):
        assert parse_env_spec("DEBUG") == {"repro": logging.DEBUG}
        assert parse_env_spec("serve=DEBUG, mcts=INFO") == {
            "repro.serve": logging.DEBUG,
            "repro.mcts": logging.INFO,
        }
        assert parse_env_spec("") == {}
        with pytest.raises(ValueError, match="unknown level"):
            parse_env_spec("serve=LOUD")

    def test_configure_is_idempotent_and_level_gated(self):
        stream = io.StringIO()
        root = configure_logging(verbose=0, stream=stream, env="")
        handlers_before = len(root.handlers)
        configure_logging(verbose=1, stream=stream, env="")
        assert len(root.handlers) == handlers_before  # no stacking
        assert root.level == logging.INFO

        logger = get_logger("repro.obs.test")
        logger.debug("hidden")
        logger.info("shown")
        output = stream.getvalue()
        assert "hidden" not in output
        assert "shown" in output

        configure_logging(verbose=2, stream=stream, env="")
        assert root.level == logging.DEBUG
        configure_logging(verbose=0, stream=stream,
                          env="obs.test=DEBUG,WARNING")
        assert root.level == logging.WARNING
        assert logging.getLogger("repro.obs.test").level == logging.DEBUG
        logging.getLogger("repro.obs.test").setLevel(logging.NOTSET)


# ---------------------------------------------------------------------------
# Bit-identity: a traced run reproduces the untraced output exactly
# ---------------------------------------------------------------------------


def _report_fingerprint(report):
    """Everything search-determined in an OptimizationReport."""
    return {
        "total_simulations": report.total_simulations,
        "reward_calls": report.reward_calls,
        "cones": {
            register: (
                result.best_reward,
                result.initial_reward,
                result.simulations,
                None if result.best_graph is None
                else result.best_graph.to_json(),
            )
            for register, result in report.cone_results.items()
        },
    }


class TestBitIdentity:
    def test_traced_optimize_matches_untraced(self):
        config = resolve_preset("smoke").mcts
        graph = load_design("uart_tx")
        untraced = optimize_registers(graph, config=config)

        recorder = TraceRecorder()
        with tracing(recorder):
            traced = optimize_registers(graph, config=config)

        assert recorder.recorded > 0
        assert _report_fingerprint(traced) == _report_fingerprint(untraced)
        names = {record.name for record in recorder.spans()}
        assert "mcts.optimize" in names
        assert "mcts.cone" in names

    def test_traced_session_generate_matches_untraced(self, tmp_path):
        session = Session(preset="smoke", seed=0, cache_dir=tmp_path)
        session.fit(load_corpus()[:4])
        request = GenerateRequest(count=2, nodes=30, seed=5, optimize=False)
        plain = session.generate(request)

        recorder = TraceRecorder()
        with tracing(recorder):
            traced = session.generate(request)

        assert [r.graph.to_dict() for r in traced.records] == \
            [r.graph.to_dict() for r in plain.records]
        names = {record.name for record in recorder.spans()}
        assert "session.generate" in names
        assert "session.item" in names
        assert "diffusion.sample_batch" in names
