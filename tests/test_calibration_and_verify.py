"""Tests for inference calibration (diffusion) and verified acceptance (MCTS)."""

import numpy as np
import pytest

from repro.bench_designs import load_corpus
from repro.diffusion import (
    DiffusionConfig,
    graph_attributes,
    sample_initial_graph,
    train_diffusion,
)
from repro.ir import GraphBuilder, validate
from repro.mcts import MCTSConfig, optimize_registers
from repro.synth import synthesize


@pytest.fixture(scope="module")
def trained():
    graphs = load_corpus()[:6]
    cfg = DiffusionConfig(epochs=30, hidden=24, num_layers=2, neg_ratio=6, seed=0)
    return train_diffusion(graphs, cfg)


class TestCalibration:
    def test_target_density_decreases_with_size(self, trained):
        assert trained.target_density(50) > trained.target_density(500)

    def test_target_density_bounded(self, trained):
        assert 1e-4 <= trained.target_density(10_000) <= 0.5
        assert 1e-4 <= trained.target_density(2) <= 0.5

    def test_calibration_bias_negative_for_sparse_targets(self, trained):
        # True density << training positive rate: logits must shift down.
        assert trained.calibration_bias(200) < 0

    def test_bias_shifts_probabilities_down(self, trained):
        g = load_corpus()[0]
        types, buckets = graph_attributes(g)
        a_t = g.adjacency()
        p_raw = trained.model.predict_full(types, buckets, a_t, 0.5)
        p_cal = trained.model.predict_full(
            types, buckets, a_t, 0.5, logit_bias=trained.calibration_bias(200)
        )
        assert p_cal.mean() < p_raw.mean()

    def test_bias_preserves_ranking(self, trained):
        g = load_corpus()[0]
        types, buckets = graph_attributes(g)
        a_t = g.adjacency()
        p_raw = trained.model.predict_full(types, buckets, a_t, 0.5)
        p_cal = trained.model.predict_full(
            types, buckets, a_t, 0.5, logit_bias=-2.0
        )
        col = p_raw[:, 3], p_cal[:, 3]
        np.testing.assert_array_equal(
            np.argsort(col[0]), np.argsort(col[1])
        )

    def test_sampled_density_tracks_target(self, trained):
        rng = np.random.default_rng(0)
        n = 80
        res = sample_initial_graph(trained, num_nodes=n, rng=rng)
        target = trained.target_density(n)
        # Within a factor of ~4 of the target for a lightly trained model.
        assert res.adjacency.mean() < max(4 * target, 0.15)

    def test_mean_edges_per_node_recorded(self, trained):
        assert 0.5 < trained.mean_edges_per_node < 4.0


class _LyingReward:
    """Claims every perturbed state is fantastic (forces bad acceptance)."""

    def __init__(self):
        self.calls = 0

    def __call__(self, graph, cone=None):
        self.calls += 1
        return float(self.calls)  # strictly increasing: everything "improves"


class TestVerifiedAcceptance:
    def _design(self):
        b = GraphBuilder("verify")
        a = b.input("a", 4)
        c = b.input("c", 4)
        r1 = b.reg("r1", 4)
        r2 = b.reg("r2", 4)
        b.drive_reg(r1, b.add(a, r1, width=4))
        b.drive_reg(r2, b.xor(c, r2))
        b.output("y", b.and_(r1, r2))
        return b.build()

    def test_lying_reward_cannot_regress_pcs(self):
        g = self._design()
        before = synthesize(g, clock_period=1.0).pcs
        cfg = MCTSConfig(
            num_simulations=15, max_depth=4, branching=4,
            clock_period=1.0, verify_with_synthesis=True, seed=0,
        )
        report = optimize_registers(g, reward_fn=_LyingReward(), config=cfg)
        after = synthesize(report.graph, clock_period=1.0).pcs
        assert after >= before - 1e-9
        assert validate(report.graph).ok

    def test_unverified_lying_reward_can_change_graph(self):
        g = self._design()
        cfg = MCTSConfig(
            num_simulations=15, max_depth=4, branching=4,
            clock_period=1.0, verify_with_synthesis=False, seed=0,
        )
        report = optimize_registers(g, reward_fn=_LyingReward(), config=cfg)
        # Without verification the lying reward's picks are committed.
        assert validate(report.graph).ok
