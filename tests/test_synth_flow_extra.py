"""Extra coverage for the synthesis flow: SCPR/PCS semantics, sweeps."""

import pytest

from repro.ir import GraphBuilder
from repro.synth import SynthResult, pareto_sweep, synthesize
from repro.synth.elaborate import MUL_WIDTH_CAP, elaborate


class TestMetricsSemantics:
    def test_pcs_definition(self):
        b = GraphBuilder("t")
        a = b.input("a", 4)
        r = b.reg("r", 4)
        b.drive_reg(r, b.xor(a, r))
        b.output("y", r)
        g = b.build()
        result = synthesize(g, clock_period=2.0)
        assert result.pcs == pytest.approx(result.area / g.num_nodes)

    def test_scpr_definition(self):
        b = GraphBuilder("t")
        a = b.input("a", 8)
        r = b.reg("r", 8)
        b.drive_reg(r, b.not_(r))
        b.output("y", b.and_(r, a))
        g = b.build()
        result = synthesize(g, clock_period=2.0)
        assert result.scpr == pytest.approx(
            result.num_dffs / g.total_register_bits()
        )

    def test_combinational_design_scpr_is_one(self):
        b = GraphBuilder("comb")
        a = b.input("a", 4)
        b.output("y", b.not_(a))
        result = synthesize(b.build(), clock_period=1.0)
        assert result.scpr == 1.0  # no registers: vacuously preserved

    def test_wns_improves_with_looser_clock(self):
        b = GraphBuilder("t")
        a = b.input("a", 8)
        c = b.input("c", 8)
        b.output("y", b.mul(a, c, width=16))
        g = b.build()
        tight = synthesize(g, clock_period=0.2)
        loose = synthesize(g, clock_period=5.0)
        assert loose.wns > tight.wns
        assert loose.area == tight.area  # same netlist, same strength

    def test_stronger_cells_faster_but_bigger(self):
        b = GraphBuilder("t")
        a = b.input("a", 8)
        c = b.input("c", 8)
        b.output("y", b.mul(a, c, width=16))
        g = b.build()
        weak = synthesize(g, clock_period=1.0, strength=1)
        strong = synthesize(g, clock_period=1.0, strength=4)
        assert strong.wns > weak.wns
        assert strong.area > weak.area


class TestElaborationLimits:
    def test_mul_width_capped(self):
        b = GraphBuilder("wide")
        a = b.input("a", 64)
        c = b.input("c", 64)
        b.output("y", b.mul(a, c, width=64))
        netlist = elaborate(b.build())
        # The array multiplier only covers MUL_WIDTH_CAP operand bits.
        assert netlist.num_gates < 64 * 64 * 6
        assert MUL_WIDTH_CAP <= 16

    def test_invalid_graph_rejected_by_default(self):
        from repro.ir import CircuitGraph, NodeType

        g = CircuitGraph()
        g.add_node(NodeType.NOT, 1)  # dangling parent
        with pytest.raises(ValueError):
            elaborate(g)

    def test_check_can_be_skipped_for_subcircuits(self):
        b = GraphBuilder("t")
        a = b.input("a", 1)
        b.output("y", b.not_(a))
        g = b.build()
        assert elaborate(g, check=False).num_gates == 1


class TestParetoSweep:
    def _design(self):
        b = GraphBuilder("sweep")
        a = b.input("a", 8)
        r = b.reg("acc", 8)
        b.drive_reg(r, b.add(a, r, width=8))
        b.output("y", r)
        return b.build()

    def test_frontier_not_dominated(self):
        results = pareto_sweep(self._design())
        for x in results:
            for y in results:
                strictly_better = (
                    y.area <= x.area and y.wns >= x.wns
                    and (y.area < x.area or y.wns > x.wns)
                )
                assert not strictly_better

    def test_default_periods_derived_from_critical_path(self):
        results = pareto_sweep(self._design())
        assert len({r.clock_period for r in results}) >= 1

    def test_meets_timing_prefers_cheapest(self):
        # At a very loose period every strength meets timing; X1 is cheapest.
        results = pareto_sweep(self._design(), periods=[100.0])
        assert results[0].strength == 1

    def test_impossible_period_falls_back_to_fastest(self):
        results = pareto_sweep(self._design(), periods=[1e-6])
        assert results[0].strength == max((1, 2, 4))

    def test_result_properties(self):
        result = synthesize(self._design(), clock_period=1.0)
        assert isinstance(result, SynthResult)
        assert result.nvp == result.timing.nvp
        assert result.register_slacks == result.timing.register_slacks
