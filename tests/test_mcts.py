"""Tests for Phase 3: cones, swap actions, MCTS search, discriminator."""

import numpy as np
import pytest

from repro.ir import GraphBuilder, NodeType, validate
from repro.mcts import (
    MCTSConfig,
    MCTSOptimizer,
    PCSDiscriminator,
    Swap,
    SynthesisReward,
    all_cones,
    apply_swap,
    collect_training_set,
    cone_features,
    cone_subcircuit,
    driving_cone,
    graph_features,
    is_applicable,
    optimize_registers,
    random_search_registers,
    sample_swaps,
)
from repro.synth import synthesize


def chain_design():
    """in -> xor -> reg -> out with an extra redundant reg."""
    b = GraphBuilder("chain")
    a = b.input("a", 4)
    r = b.reg("r", 4)
    x = b.xor(a, r)
    b.drive_reg(r, x)
    dead = b.reg("dead", 4)
    b.drive_reg(dead, dead)    # self-loop: swept by synthesis
    b.output("y", r)
    b.output("z", dead)
    return b.build()


def redundant_design():
    """Registers fed by XOR(x, x) (folds to 0) but with fanout."""
    b = GraphBuilder("redundant")
    a = b.input("a", 4)
    c = b.input("c", 4)
    r1 = b.reg("r1", 4)
    r2 = b.reg("r2", 4)
    x1 = b.xor(a, a)          # constant 0: r1 swept
    b.drive_reg(r1, x1)
    x2 = b.and_(a, c)
    b.drive_reg(r2, x2)
    m = b.mux(b.bit(c, 0), r1, r2)
    b.output("y", m)
    return b.build()


class TestCones:
    def test_driving_cone_stops_at_boundary(self):
        g = chain_design()
        reg = g.registers()[0]
        cone = driving_cone(g, reg)
        types = {g.node(v).type for v in cone.boundary}
        assert types <= {NodeType.IN, NodeType.CONST, NodeType.REG}
        assert all(
            g.node(v).type not in (NodeType.IN, NodeType.CONST, NodeType.REG)
            for v in cone.interior
        )

    def test_cone_of_non_register_raises(self):
        g = chain_design()
        with pytest.raises(ValueError):
            driving_cone(g, g.inputs()[0])

    def test_self_loop_register_cone_empty_interior(self):
        g = chain_design()
        dead = g.registers()[1]
        cone = driving_cone(g, dead)
        assert cone.interior == []
        # Self-feedback: the register is its own boundary.
        assert cone.boundary == [dead]

    def test_cone_subcircuit_is_valid_and_synthesizable(self):
        g = redundant_design()
        for cone in all_cones(g):
            sub = cone_subcircuit(g, cone)
            assert validate(sub).ok
            result = synthesize(sub, clock_period=2.0, check=False)
            assert result.num_cells >= 0

    def test_all_cones_sorted_by_size(self):
        g = redundant_design()
        cones = all_cones(g)
        sizes = [c.size for c in cones]
        assert sizes == sorted(sizes, reverse=True)


class TestSwapAction:
    def test_swap_preserves_degrees(self):
        from collections import Counter

        g = redundant_design()
        rng = np.random.default_rng(0)
        cones = all_cones(g)
        swaps = sample_swaps(g, [cones[0].register, *cones[0].interior], rng, 5)

        def degrees(graph):
            out_deg = Counter(p for p, _ in graph.edges())
            in_deg = Counter(c for _, c in graph.edges())
            return out_deg, in_deg

        out_before, in_before = degrees(g)
        for swap in swaps:
            g2 = apply_swap(g, swap)
            if g2 is None:
                continue
            out_after, in_after = degrees(g2)
            # Slot-level (multigraph) degrees are exactly preserved: the
            # paper's rationale for the atomic swap operation.
            assert out_after == out_before
            assert in_after == in_before

    def test_swap_keeps_validity(self):
        g = redundant_design()
        rng = np.random.default_rng(1)
        cone = all_cones(g)[0]
        for swap in sample_swaps(g, [cone.register, *cone.interior], rng, 10):
            g2 = apply_swap(g, swap)
            if g2 is not None:
                assert validate(g2).ok

    def test_degenerate_swaps_rejected(self):
        g = chain_design()
        reg = g.registers()[0]
        xor = g.nodes_of_type(NodeType.XOR)[0]
        a = g.inputs()[0]
        # Same child on both edges: no-op.
        assert not is_applicable(g, Swap(a, xor, reg, xor))
        # Nonexistent edge.
        assert not is_applicable(g, Swap(xor, a, reg, xor))

    def test_duplicate_parent_swap_rejected(self):
        b = GraphBuilder("dup")
        x = b.input("x", 1)
        y = b.input("y", 1)
        n1 = b.and_(x, y)
        n2 = b.or_(x, y)
        r = b.reg("r", 1)
        b.drive_reg(r, b.xor(n1, n2))
        b.output("o", r)
        g = b.build()
        # Swapping (x->n1) with (y->n1) is degenerate (same child).
        assert not is_applicable(g, Swap(x, n1, y, n1))
        # Swapping (x->n1),(x->n2) is degenerate (same parent).
        assert not is_applicable(g, Swap(x, n1, x, n2))


class TestRewards:
    def test_synthesis_reward_counts_calls(self):
        reward = SynthesisReward(clock_period=2.0)
        g = chain_design()
        value = reward(g, None)
        assert reward.calls == 1
        assert value > 0

    def test_redundant_design_scores_lower(self):
        reward = SynthesisReward(clock_period=2.0)
        assert reward(redundant_design()) < reward(chain_design()) * 10

    def test_feature_dims(self):
        g = redundant_design()
        gf = graph_features(g)
        from repro.mcts import CONE_FEATURE_DIM, GRAPH_FEATURE_DIM

        assert gf.shape == (GRAPH_FEATURE_DIM,)
        cone = all_cones(g)[0]
        cf = cone_features(g, cone)
        assert cf.shape == (CONE_FEATURE_DIM,)

    def test_features_respond_to_structure(self):
        g1 = chain_design()
        g2 = redundant_design()
        assert not np.allclose(graph_features(g1), graph_features(g2))


class TestDiscriminator:
    def test_fit_and_predict(self):
        graphs = [chain_design(), redundant_design()]
        features, targets = collect_training_set(
            graphs, perturbations=4, seed=0
        )
        assert len(features) == len(targets)
        disc = PCSDiscriminator(seed=0)
        losses = disc.fit(features, targets, epochs=100)
        assert losses[-1] < losses[0]
        assert disc.trained
        preds = disc.predict(features)
        assert preds.shape == (len(targets),)

    def test_callable_protocol(self):
        graphs = [chain_design(), redundant_design()]
        features, targets = collect_training_set(graphs, perturbations=2)
        disc = PCSDiscriminator(seed=0)
        disc.fit(features, targets, epochs=50)
        assert isinstance(disc(chain_design()), float)

    def test_empty_fit_rejected(self):
        disc = PCSDiscriminator()
        with pytest.raises(ValueError):
            disc.fit(np.zeros((0, 5)), np.zeros(0))


class TestMCTSSearch:
    def test_optimization_never_worsens(self):
        g = redundant_design()
        cfg = MCTSConfig(num_simulations=25, max_depth=4, branching=4, seed=0)
        before = synthesize(g, clock_period=2.0).pcs
        report = optimize_registers(g, config=cfg)
        after = synthesize(report.graph, clock_period=2.0).pcs
        assert after >= before - 1e-9
        assert validate(report.graph).ok

    def test_improves_redundant_design(self):
        g = redundant_design()
        cfg = MCTSConfig(num_simulations=40, max_depth=6, branching=6, seed=0)
        before = synthesize(g, clock_period=2.0)
        report = optimize_registers(g, config=cfg)
        after = synthesize(report.graph, clock_period=2.0)
        assert after.pcs > before.pcs

    def test_register_subset_filter(self):
        g = redundant_design()
        cfg = MCTSConfig(num_simulations=5, max_depth=2, seed=0)
        target = g.registers()[0]
        report = optimize_registers(g, config=cfg, registers=[target])
        assert set(report.cone_results) <= {target}

    def test_random_search_baseline_runs(self):
        g = redundant_design()
        cfg = MCTSConfig(num_simulations=20, max_depth=4, seed=0)
        report = random_search_registers(g, config=cfg)
        assert validate(report.graph).ok
        before = synthesize(g, clock_period=2.0).pcs
        after = synthesize(report.graph, clock_period=2.0).pcs
        assert after >= before - 1e-9

    def test_search_result_bookkeeping(self):
        g = redundant_design()
        reward = SynthesisReward(2.0)
        optimizer = MCTSOptimizer(
            reward, num_simulations=10, max_depth=3, branching=3, seed=1
        )
        cone = [c for c in all_cones(g) if c.interior][0]
        result = optimizer.optimize_cone(g, cone)
        assert result.simulations == 10
        assert result.best_reward >= result.initial_reward
        assert result.rewards_seen


class TestCachedReward:
    def test_hits_and_transparency(self):
        from repro.mcts import CachedReward

        g = redundant_design()
        inner = SynthesisReward(2.0)
        cached = CachedReward(inner)
        cone = all_cones(g)[0]
        first = cached(g, cone)
        second = cached(g, cone)
        assert first == second == inner(g, cone)
        assert cached.calls == 2 and cached.hits == 1
        assert inner.calls == 2  # one miss + the direct check call

    def test_distinct_states_and_cones_not_conflated(self):
        from repro.mcts import CachedReward, structural_fingerprint

        g = redundant_design()
        cones = [c for c in all_cones(g) if c.interior]
        cached = CachedReward(SynthesisReward(2.0))
        cached(g, cones[0])
        cached(g, cones[1])          # same graph, different cone: a miss
        assert cached.hits == 0
        rng = np.random.default_rng(0)
        swaps = sample_swaps(g, cones[0].nodes, rng, 8)
        changed = next(
            s for s in (apply_swap(g, sw) for sw in swaps) if s is not None
        )
        assert structural_fingerprint(changed) != structural_fingerprint(g)
        cached(changed, cones[0])    # different state: a miss
        assert cached.hits == 0 and cached.calls == 3

    def test_caching_never_changes_the_search(self):
        g = redundant_design()
        on = MCTSConfig(num_simulations=12, max_depth=3, branching=3, seed=4)
        off = MCTSConfig(num_simulations=12, max_depth=3, branching=3, seed=4,
                         cache_rewards=False)
        report_on = optimize_registers(g, config=on)
        report_off = optimize_registers(g, config=off)
        assert report_on.graph.to_dict() == report_off.graph.to_dict()
        assert report_on.reward_calls > 0
        assert report_off.reward_calls == report_off.reward_cache_hits == 0


class TestConeBatchEvaluator:
    def test_signatures_detect_functional_change(self):
        from repro.mcts import ConeBatchEvaluator

        g = redundant_design()
        register = g.registers()[1]    # r2 = AND(a, c): a real function
        evaluator = ConeBatchEvaluator(num_cycles=64, seed=0)
        base = evaluator.signature(g, register)
        assert base == evaluator.signature(g, register)  # deterministic
        assert len(base.words) == g.node(register).width
        assert base.num_cycles == 64
        # Activity proxy: toggles counts the bit flips between
        # consecutive cycles of every output word.
        expected_toggles = sum(
            bin((word ^ (word >> 1)) & ((1 << 63) - 1)).count("1")
            for word in base.words
        )
        assert base.toggles == expected_toggles
        assert 0 <= base.toggles <= (base.num_cycles - 1) * len(base.words)

        rng = np.random.default_rng(1)
        cone = driving_cone(g, register)
        candidates = [g]
        state = g
        for _ in range(12):
            swaps = sample_swaps(state, [register, *cone.interior], rng, 1)
            if not swaps:
                break
            nxt = apply_swap(state, swaps[0])
            if nxt is not None:
                state = nxt
                candidates.append(state)
        assert len(candidates) > 2
        signatures = evaluator.evaluate(candidates, register)
        assert len(signatures) == len(candidates)
        distinct = evaluator.distinct_functions(candidates, register)
        assert 1 <= distinct <= len(candidates)

    def test_stimulus_shared_across_candidates(self):
        from repro.mcts import ConeBatchEvaluator

        g = redundant_design()
        register = g.registers()[1]
        evaluator = ConeBatchEvaluator(num_cycles=32, seed=5)
        evaluator.signature(g, register)
        words_after_first = dict(evaluator._words)
        evaluator.signature(g, register)
        # Second candidate re-used every packed stimulus word.
        assert evaluator._words == words_after_first

    def test_function_preservation_reported(self):
        g = redundant_design()
        cfg = MCTSConfig(num_simulations=25, max_depth=4, branching=4, seed=2)
        report = optimize_registers(g, config=cfg)
        assert set(report.cone_function_preserved) <= set(g.registers())
        for preserved in report.cone_function_preserved.values():
            assert isinstance(preserved, bool)
        off = MCTSConfig(num_simulations=5, max_depth=2, seed=2,
                         track_cone_function=False)
        assert optimize_registers(g, config=off).cone_function_preserved == {}
