"""Additional coverage for the nn substrate: errors, edge shapes, misc ops."""

import numpy as np
import pytest

from repro.nn import MLP, Adam, Linear, Module, Tensor, concat_all, parameter


class TestTensorErrors:
    def test_backward_on_non_grad_tensor(self):
        t = Tensor(np.zeros(3))
        with pytest.raises(RuntimeError):
            t.backward()

    def test_backward_non_scalar_needs_grad(self):
        t = Tensor(np.zeros(3))
        t.requires_grad = True
        with pytest.raises(RuntimeError):
            (t * 2.0).backward()

    def test_backward_with_explicit_grad(self):
        t = Tensor(np.array([1.0, 2.0]))
        t.requires_grad = True
        out = t * 3.0
        out.backward(np.array([1.0, 1.0]))
        np.testing.assert_allclose(t.grad, [3.0, 3.0])

    def test_detach_breaks_tape(self):
        t = Tensor(np.array([1.0]))
        t.requires_grad = True
        d = (t * 2.0).detach()
        assert not d.requires_grad

    def test_grad_accumulates_across_uses(self):
        t = Tensor(np.array([2.0]))
        t.requires_grad = True
        out = t * 3.0 + t * 4.0
        out.backward(np.array([1.0]))
        np.testing.assert_allclose(t.grad, [7.0])

    def test_zero_grad(self):
        t = Tensor(np.array([1.0]))
        t.requires_grad = True
        (t * t).backward(np.array([1.0]))
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None


class TestTensorOps:
    def test_item_and_size(self):
        t = Tensor(np.array([[3.5]]))
        assert t.item() == 3.5
        assert t.size == 1
        assert t.ndim == 2

    def test_rsub_rdiv(self):
        t = Tensor(np.array([2.0]))
        assert (3.0 - t).data[0] == 1.0
        assert (8.0 / t).data[0] == 4.0

    def test_concat_all(self):
        parts = [Tensor(np.ones((2, 2))) for _ in range(3)]
        out = concat_all(parts, axis=1)
        assert out.shape == (2, 6)

    def test_diamond_graph_gradient(self):
        # y = f(x) used twice; topological sort must visit f once.
        x = Tensor(np.array([1.5]))
        x.requires_grad = True
        shared = x * 2.0
        out = (shared * shared).sum()
        out.backward()
        np.testing.assert_allclose(x.grad, [2 * 2.0 * 2.0 * 1.5])


class TestModules:
    def test_parameter_init_scale(self):
        rng = np.random.default_rng(0)
        p = parameter((100, 50), rng)
        assert p.requires_grad
        assert np.abs(p.data).max() <= 1.0 / np.sqrt(100) + 1e-12

    def test_linear_no_bias(self):
        rng = np.random.default_rng(0)
        layer = Linear(3, 2, rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_mlp_validations(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            MLP([4], rng)
        with pytest.raises(ValueError):
            MLP([4, 2], rng, activation="swish")

    def test_mlp_final_activation(self):
        rng = np.random.default_rng(0)
        mlp = MLP([2, 4, 1], rng, final_activation="sigmoid")
        out = mlp(Tensor(np.zeros((3, 2))))
        assert np.all((0 < out.data) & (out.data < 1))

    def test_module_dedupes_shared_parameters(self):
        rng = np.random.default_rng(0)

        class Shared(Module):
            def __init__(self):
                self.a = Linear(2, 2, rng)
                self.b = self.a  # alias

        assert len(Shared().parameters()) == 2  # weight + bias once

    def test_state_dict_shape_mismatch(self):
        rng = np.random.default_rng(0)
        m1 = MLP([2, 3, 1], rng)
        m2 = MLP([2, 4, 1], rng)
        with pytest.raises(ValueError):
            m2.load_state_dict(m1.state_dict())

    def test_num_parameters(self):
        rng = np.random.default_rng(0)
        layer = Linear(3, 2, rng)
        assert layer.num_parameters() == 3 * 2 + 2


class TestAdamDetails:
    def test_weight_decay_shrinks(self):
        x = Tensor(np.array([10.0]))
        x.requires_grad = True
        opt = Adam([x], lr=0.1, weight_decay=1.0)
        for _ in range(50):
            opt.zero_grad()
            # Zero data-gradient: only decay drives the update.
            (x * 0.0).sum().backward()
            opt.step()
        assert abs(x.data[0]) < 10.0

    def test_step_without_grad_is_noop(self):
        x = Tensor(np.array([1.0]))
        x.requires_grad = True
        opt = Adam([x], lr=0.5)
        opt.step()  # no backward called: grad is None
        assert x.data[0] == 1.0
