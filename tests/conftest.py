"""Shared fixtures for the test suite."""

import pytest


@pytest.fixture(autouse=True)
def _isolated_artifact_store(tmp_path, monkeypatch):
    """Point the default artifact store at a per-test directory.

    Without this, tests that construct a Session (directly or through
    the CLI) without an explicit cache dir would read from and write to
    the developer's real ~/.cache/repro -- and stale cached artifacts
    could mask regressions in the code under test.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "artifact-store"))
