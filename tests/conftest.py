"""Shared fixtures and fuzz-tier wiring for the test suite."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--fuzz-rounds",
        type=int,
        default=0,
        help=(
            "Enable the opt-in fuzz_deep tier and scale its workload: "
            "each deep test multiplies its seed count by this value "
            "(0, the default, skips the tier entirely)."
        ),
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "fuzz_smoke: fast seeded differential fuzz; runs in tier-1",
    )
    config.addinivalue_line(
        "markers",
        "fuzz_deep: long differential fuzz; opt-in via --fuzz-rounds N",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--fuzz-rounds") > 0:
        return
    skip_deep = pytest.mark.skip(
        reason="deep fuzz tier is opt-in: run with --fuzz-rounds N"
    )
    for item in items:
        if "fuzz_deep" in item.keywords:
            item.add_marker(skip_deep)


@pytest.fixture
def fuzz_rounds(request):
    """The --fuzz-rounds multiplier (>= 1 inside fuzz_deep tests)."""
    return request.config.getoption("--fuzz-rounds")


@pytest.fixture(autouse=True)
def _isolated_artifact_store(tmp_path, monkeypatch):
    """Point the default artifact store at a per-test directory.

    Without this, tests that construct a Session (directly or through
    the CLI) without an explicit cache dir would read from and write to
    the developer's real ~/.cache/repro -- and stale cached artifacts
    could mask regressions in the code under test.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "artifact-store"))
